//! # ukraine-fbs
//!
//! A full reproduction of *"Tracking Internet Disruptions in Ukraine:
//! Insights from Three Years of Active Full Block Scans"* (Holzbauer,
//! Strobl & Ullrich, IMC 2025) as a Rust workspace: the ZMap-style
//! full-block ICMP scanner, the three outage signals (`BGP ★`, `FBS ■`,
//! `IPS ▲`), long-term-geolocation regional classification, the Trinocular
//! and IODA baselines, and a deterministic world simulator standing in for
//! the irreproducible wartime data sources.
//!
//! This crate is the umbrella: it re-exports every workspace crate under
//! one name and hosts the runnable examples and cross-crate integration
//! tests. Start with [`core::Campaign`]:
//!
//! ```no_run
//! use ukraine_fbs::prelude::*;
//!
//! # fn main() -> ukraine_fbs::types::Result<()> {
//! let world = scenarios::ukraine(WorldScale::Small, 42).into_world().unwrap();
//! let report = Campaign::new(world, CampaignConfig::default())?.run()?;
//! println!("{} outage events across {} ASes",
//!          report.total_as_outages(), report.ases_with_outages());
//! # Ok(())
//! # }
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core identifier, region and time types.
pub use fbs_types as types;

/// ZMap-style full-block ICMP scanner.
pub use fbs_prober as prober;

/// BGP substrate: prefix trie, RIB, RouteViews-style snapshots.
pub use fbs_bgp as bgp;

/// IPinfo-style monthly geolocation snapshots and churn analysis.
pub use fbs_geodb as geodb;

/// RIR delegation files and churn tracking.
pub use fbs_delegations as delegations;

/// Hardened feed ingest: lossy streaming parsers, retry/backoff, health
/// ledgers and quarantine reports for the BGP/geo/delegation feeds.
pub use fbs_feeds as feeds;

/// Outage signals, thresholds and the moving-average detector.
pub use fbs_signals as signals;

/// Write-ahead round journal and atomic snapshots for crash-safe campaigns.
pub use fbs_journal as journal;

/// Regionality classification of ASes and /24 blocks.
pub use fbs_regional as regional;

/// Trinocular baseline and IODA platform emulation.
pub use fbs_trinocular as trinocular;

/// Deterministic ground-truth world simulator.
pub use fbs_netsim as netsim;

/// The Ukraine 2022–2025 scenario.
pub use fbs_scenarios as scenarios;

/// Statistics, comparison harnesses, table/figure emitters.
pub use fbs_analysis as analysis;

/// Campaign orchestration: world → scan → signals → detection → report.
pub use fbs_core as core;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::core::{Campaign, CampaignConfig, CampaignReport};
    pub use crate::netsim::{World, WorldScale};
    pub use crate::scenarios;
    pub use crate::signals::{EntityId, OutageEvent, SignalKind, Thresholds};
    pub use crate::types::{Asn, BlockId, CivilDate, MonthId, Oblast, Round};
}
