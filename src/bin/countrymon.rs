//! `countrymon` — the country-monitoring CLI over the ukraine-fbs stack.
//!
//! ```text
//! countrymon scan     [--scale S] [--seed N] [--round R]     one wire-path scan round
//! countrymon campaign [--scale S] [--seed N] [--days D] [--export DIR]
//! countrymon classify [--scale S] [--seed N] [--days D] [--oblast NAME]
//! countrymon timeline [--scale S] [--seed N] [--grep TEXT]   the scripted war events
//! ```
//!
//! Scales: `tiny` (seconds), `small` (default, ~10 s), `paper` (minutes).

#![forbid(unsafe_code)]

use std::process::ExitCode;
use ukraine_fbs::netsim::WorldTransport;
use ukraine_fbs::prelude::*;
use ukraine_fbs::prober::{ScanConfig, Scanner, TargetSet};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Args {
    command: String,
    scale: WorldScale,
    seed: u64,
    days: u32,
    round: u32,
    export: Option<String>,
    oblast: Option<String>,
    grep: Option<String>,
    scenario: Option<String>,
    save_scenario: Option<String>,
}

const USAGE: &str = "\
countrymon — full-block-scan outage monitoring (ukraine-fbs)

USAGE:
    countrymon <COMMAND> [OPTIONS]

COMMANDS:
    scan        run one wire-path ICMP scan round and print statistics
    campaign    run the measurement campaign and summarize detections
    classify    run regional classification and print a per-oblast table
    timeline    list the scenario's scripted war events

OPTIONS:
    --scale tiny|small|paper   world size            [default: small]
    --seed <u64>               scenario seed         [default: 42]
    --days <u32>               campaign length       [default: full span]
    --round <u32>              round for `scan`      [default: 6]
    --export <dir>             write the dataset (campaign only)
    --oblast <name>            focus region (classify only)
    --grep <text>              event filter (timeline only)
    --scenario <file>          load a scenario JSON instead of generating
    --save-scenario <file>     write the generated scenario as JSON
    -h, --help                 this help
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        scale: WorldScale::Small,
        seed: 42,
        days: 0,
        round: 6,
        export: None,
        oblast: None,
        grep: None,
        scenario: None,
        save_scenario: None,
    };
    let mut it = argv.iter().peekable();
    match it.next() {
        Some(cmd) if !cmd.starts_with('-') => args.command = cmd.clone(),
        Some(h) if h == "-h" || h == "--help" => return Err(String::new()),
        _ => return Err("missing command".into()),
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--scale" => {
                args.scale = match value("--scale")?.as_str() {
                    "tiny" => WorldScale::Tiny,
                    "small" => WorldScale::Small,
                    "paper" => WorldScale::Paper,
                    other => return Err(format!("unknown scale {other:?}")),
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "seed must be an unsigned integer".to_string())?
            }
            "--days" => {
                args.days = value("--days")?
                    .parse()
                    .map_err(|_| "days must be an unsigned integer".to_string())?
            }
            "--round" => {
                args.round = value("--round")?
                    .parse()
                    .map_err(|_| "round must be an unsigned integer".to_string())?
            }
            "--export" => args.export = Some(value("--export")?),
            "--oblast" => args.oblast = Some(value("--oblast")?),
            "--grep" => args.grep = Some(value("--grep")?),
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--save-scenario" => args.save_scenario = Some(value("--save-scenario")?),
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(args)
}

fn build_scenario(args: &Args) -> scenarios::Scenario {
    if let Some(path) = &args.scenario {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read scenario {path}: {e}"));
        return scenarios::Scenario::from_json(&text)
            .unwrap_or_else(|e| panic!("cannot parse scenario {path}: {e}"));
    }
    let rounds = if args.days == 0 {
        Round::campaign_total()
    } else {
        (args.days * 12).min(Round::campaign_total())
    };
    let scenario = scenarios::ukraine_with_rounds(args.scale, args.seed, rounds);
    if let Some(path) = &args.save_scenario {
        std::fs::write(path, scenario.to_json())
            .unwrap_or_else(|e| panic!("cannot write scenario {path}: {e}"));
        eprintln!("scenario written to {path}");
    }
    scenario
}

fn build_world(args: &Args) -> ukraine_fbs::netsim::World {
    build_scenario(args)
        .into_world()
        .expect("scenario is valid")
}

fn cmd_scan(args: &Args) {
    let world = build_world(args);
    let targets = TargetSet::from_blocks(world.blocks().iter().map(|b| b.block).collect());
    let round = Round(args.round.min(world.rounds().saturating_sub(1)));
    eprintln!(
        "scanning {} addresses in {} blocks at {} ...",
        targets.num_addresses(),
        targets.num_blocks(),
        round.start()
    );
    let scanner = Scanner::new(ScanConfig {
        rate_pps: 2_000_000, // virtual time: fast-forward the pacing
        ..ScanConfig::default()
    });
    let mut transport = WorldTransport::new(&world, round);
    let started = std::time::Instant::now();
    let (obs, stats) = scanner.scan_round(round, &targets, &mut transport);
    println!(
        "sent {} probes, {} valid replies ({} invalid, {} parse errors)",
        stats.sent, stats.valid, stats.invalid, stats.parse_errors
    );
    println!(
        "{} responsive addresses in {} active blocks ({:.1}% of blocks)",
        obs.total_responsive(),
        obs.active_blocks(),
        obs.active_blocks() as f64 / targets.num_blocks().max(1) as f64 * 100.0
    );
    println!(
        "virtual round duration {:.1} min; wall clock {:.2?}",
        stats.duration_ns as f64 / 60e9,
        started.elapsed()
    );
}

fn cmd_campaign(args: &Args) {
    let world = build_world(args);
    eprintln!(
        "running campaign: {} blocks x {} rounds ...",
        world.blocks().len(),
        world.rounds()
    );
    let campaign = Campaign::new(world, CampaignConfig::default()).expect("valid config");
    let report = campaign.run().expect("campaign run");
    println!(
        "{} outage events across {} of {} ASes; {} rounds missing (vantage offline)",
        report.total_as_outages(),
        report.ases_with_outages(),
        report.as_events.len(),
        report.missing_rounds.len()
    );
    let mut hours: Vec<(Oblast, f64)> = ukraine_fbs::types::ALL_OBLASTS
        .iter()
        .map(|o| {
            (
                *o,
                ukraine_fbs::signals::outage_hours(report.region_events_of(*o)),
            )
        })
        .collect();
    hours.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite hours"));
    println!("\nhardest-hit oblasts (regional outage hours):");
    for (o, h) in hours.iter().take(8) {
        println!(
            "  {:16} {h:8.0} h {}",
            o.name(),
            if o.is_frontline() { "(frontline)" } else { "" }
        );
    }
    if let Some(dir) = &args.export {
        let dir = std::path::Path::new(dir);
        ukraine_fbs::core::export_all(&report, dir).expect("dataset export");
        println!("\ndataset written to {}", dir.display());
    }
}

fn cmd_classify(args: &Args) {
    let world = build_world(args);
    let campaign = Campaign::new(world, CampaignConfig::without_baseline()).expect("valid config");
    let outcome = campaign.classify_only();
    use ukraine_fbs::regional::Regionality;
    match &args.oblast {
        Some(name) => {
            let Some(oblast) = Oblast::parse_name(name) else {
                eprintln!("unknown oblast {name:?}");
                return;
            };
            let Some(rc) = outcome.regions.get(&oblast) else {
                println!("{oblast}: no presence recorded");
                return;
            };
            println!("{oblast}:");
            for class in [
                Regionality::Regional,
                Regionality::NonRegional,
                Regionality::Temporal,
            ] {
                let ases = rc.ases_with(class);
                println!("  {class:?}: {} ASes", ases.len());
                for asn in ases.iter().take(20) {
                    println!("    {asn}");
                }
            }
            println!("  regional blocks: {}", rc.regional_blocks().len());
        }
        None => {
            println!("oblast            regional  non-regional  temporal  reg. blocks");
            for o in ukraine_fbs::types::ALL_OBLASTS {
                let Some(rc) = outcome.regions.get(&o) else {
                    continue;
                };
                println!(
                    "{:16}  {:8}  {:12}  {:8}  {}",
                    o.name(),
                    rc.ases_with(Regionality::Regional).len(),
                    rc.ases_with(Regionality::NonRegional).len(),
                    rc.ases_with(Regionality::Temporal).len(),
                    rc.regional_blocks().len()
                );
            }
        }
    }
}

fn cmd_timeline(args: &Args) {
    let scenario = build_scenario(args);
    let mut shown = 0;
    for e in scenario.script.events() {
        if let Some(needle) = &args.grep {
            if !e.name.contains(needle.as_str()) {
                continue;
            }
        }
        // Background noise floods the list; show it only when grepped for.
        if args.grep.is_none()
            && (e.name.starts_with("frontline damage") || e.name.starts_with("local outage"))
        {
            continue;
        }
        let end = e
            .end
            .map(|t| t.to_string())
            .unwrap_or_else(|| "(open)".to_string());
        println!("{} .. {end}  {}", e.start, e.name);
        shown += 1;
    }
    println!(
        "\n{shown} events shown ({} total in the script)",
        scenario.script.events().len()
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    match args.command.as_str() {
        "scan" => cmd_scan(&args),
        "campaign" => cmd_campaign(&args),
        "classify" => cmd_classify(&args),
        "timeline" => cmd_timeline(&args),
        other => {
            eprintln!("error: unknown command {other:?}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let a = parse_args(&argv(
            "campaign --scale tiny --seed 7 --days 30 --export /tmp/out",
        ))
        .unwrap();
        assert_eq!(a.command, "campaign");
        assert_eq!(a.scale, WorldScale::Tiny);
        assert_eq!(a.seed, 7);
        assert_eq!(a.days, 30);
        assert_eq!(a.export.as_deref(), Some("/tmp/out"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse_args(&argv("scan")).unwrap();
        assert_eq!(a.scale, WorldScale::Small);
        assert_eq!(a.seed, 42);
        assert_eq!(a.round, 6);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("")).is_err());
        assert!(parse_args(&argv("scan --scale huge")).is_err());
        assert!(parse_args(&argv("scan --seed banana")).is_err());
        assert!(parse_args(&argv("scan --what")).is_err());
        assert!(parse_args(&argv("scan --seed")).is_err());
    }

    #[test]
    fn help_is_empty_error() {
        assert_eq!(parse_args(&argv("--help")), Err(String::new()));
        assert_eq!(parse_args(&argv("scan -h")), Err(String::new()));
    }
}
