#![forbid(unsafe_code)]

use fbs_analysis::signal_shares;
use std::time::Instant;
fn main() {
    let t0 = Instant::now();
    let scenario = fbs_scenarios::ukraine(fbs_netsim::WorldScale::Small, 42);
    let world = scenario.into_world().unwrap();
    println!(
        "world build: {:?} ({} blocks, {} ases)",
        t0.elapsed(),
        world.blocks().len(),
        world.config().ases.len()
    );
    let t1 = Instant::now();
    let campaign =
        fbs_core::Campaign::new(world, fbs_core::CampaignConfig::default()).expect("valid config");
    let report = campaign.run().expect("campaign run");
    println!("campaign run: {:?}", t1.elapsed());
    let all = report.all_as_events();
    println!(
        "AS outages: {} [bgp,fbs,ips]={:?}",
        all.len(),
        signal_shares(&all)
    );
    // histogram of event durations
    let mut short = 0;
    let mut med = 0;
    let mut long = 0;
    for e in &all {
        let h = e.hours();
        if h <= 4.0 {
            short += 1
        } else if h <= 48.0 {
            med += 1
        } else {
            long += 1
        }
    }
    println!("durations: <=4h {short}, <=48h {med}, >48h {long}");
    // top-5 ASes by events
    let mut v: Vec<(usize, fbs_types::Asn)> = report
        .as_events
        .iter()
        .map(|(a, e)| (e.len(), *a))
        .collect();
    v.sort();
    v.reverse();
    for (n, a) in v.iter().take(5) {
        println!("  {a}: {n} events");
    }
    // frontline vs non-frontline event counts
    let mut fl = 0.0;
    let mut nfl = 0.0;
    for (o, ev) in &report.region_events {
        let h = fbs_signals::outage_hours(ev);
        if o.is_frontline() {
            fl += h
        } else {
            nfl += h
        }
    }
    println!("region outage hours: frontline {fl:.0}, non-frontline {nfl:.0}");
}
