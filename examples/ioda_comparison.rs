//! The §5.4 comparison: what full-block scanning sees that a
//! Trinocular-based platform (IODA) cannot — coverage of small ASes and
//! partial outages.
//!
//! ```sh
//! cargo run --release --example ioda_comparison
//! ```

#![forbid(unsafe_code)]

use ukraine_fbs::analysis::compare::{coverage_cdf, coverage_summary, signal_shares};
use ukraine_fbs::prelude::*;

fn main() {
    let scenario = scenarios::ukraine_with_rounds(WorldScale::Tiny, 42, 300 * 12);
    let world = scenario.into_world().expect("scenario is valid");
    let report = Campaign::new(world, CampaignConfig::default())
        .expect("valid config")
        .run()
        .expect("campaign run");
    let ioda = report.ioda.as_ref().expect("baseline enabled by default");

    let points = coverage_cdf(&report.as_sizes, &report.as_events, &ioda.as_events);
    let summary = coverage_summary(&points);

    println!("== AS coverage ==");
    println!(
        "this work : {} outage events across {} ASes",
        summary.ours_outages, summary.ours_ases
    );
    println!(
        "IODA      : {} outage events across {} ASes ({} ASes below its 20-/24 floor)",
        summary.ioda_outages, summary.ioda_ases, ioda.suppressed_ases
    );

    // The small-provider blind spot, concretely.
    println!("\nsmall Kherson providers invisible to IODA but covered here:");
    for entry in scenarios::KHERSON_ROSTER.iter().filter(|a| a.regional) {
        let ours = report
            .as_events
            .get(&entry.asn())
            .map(|v| v.len())
            .unwrap_or(0);
        let theirs = ioda.as_events.get(&entry.asn()).map(|v| v.len());
        if theirs.is_none() && ours > 0 {
            println!(
                "  {} ({}): {} events here, none reportable by IODA ({} /24s < 20)",
                entry.name,
                entry.asn(),
                ours,
                entry.total_24s
            );
        }
    }

    // Signal composition on the common set.
    let common: Vec<Asn> = report
        .as_events
        .keys()
        .filter(|a| ioda.as_events.contains_key(a))
        .copied()
        .collect();
    let ours: Vec<OutageEvent> = common
        .iter()
        .flat_map(|a| report.as_events[a].iter().copied())
        .collect();
    let theirs: Vec<OutageEvent> = common
        .iter()
        .flat_map(|a| ioda.as_events[a].iter().copied())
        .collect();
    let our_shares = signal_shares(&ours);
    let ioda_shares = signal_shares(&theirs);
    println!("\n== signal composition on {} common ASes ==", common.len());
    println!(
        "this work : BGP {}, FBS {}, IPS {}  (IPS carries partial outages)",
        our_shares[0], our_shares[1], our_shares[2]
    );
    println!(
        "IODA      : BGP {}, TRIN {}        (no per-IP signal exists)",
        ioda_shares[0], ioda_shares[1]
    );
    println!(
        "\npaper shape: 1,674 vs 333 ASes covered; IODA's TRIN flags partial outages\n\
         as block-wide, while the IPS signal detects them as what they are."
    );
}
