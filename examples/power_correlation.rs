//! The paper's §5.1 headline: Internet outages in non-frontline regions
//! are power-driven. Runs a campaign over the winter 2022/23 strike
//! campaign and correlates daily Internet outage hours with the simulated
//! Ukrenergo blackout calendar.
//!
//! ```sh
//! cargo run --release --example power_correlation
//! ```

#![forbid(unsafe_code)]

use ukraine_fbs::analysis::{pearson, DailyHours};
use ukraine_fbs::prelude::*;
use ukraine_fbs::types::ALL_OBLASTS;

fn main() {
    // Through March 2023: covers the first winter of strikes.
    let scenario = scenarios::ukraine_with_rounds(WorldScale::Tiny, 42, 390 * 12);
    let world = scenario.into_world().expect("scenario is valid");
    let campaign = Campaign::new(world, CampaignConfig::without_baseline()).expect("valid config");
    let report = campaign.run().expect("campaign run");

    let from = CivilDate::new(2022, 10, 1);
    let to = CivilDate::new(2023, 3, 1);

    let internet = |frontline: bool| -> Vec<f64> {
        let mut all = DailyHours::default();
        for o in ALL_OBLASTS {
            if o.is_frontline() == frontline && !o.is_crimean_peninsula() {
                all.merge(&DailyHours::from_events(report.region_events_of(o)));
            }
        }
        all.dense_range(from, to)
    };
    let power = |frontline: bool| -> Vec<f64> {
        let mut out = Vec::new();
        let mut d = from;
        while d <= to {
            let row = campaign.world().power().day_row(d);
            out.push(
                ALL_OBLASTS
                    .iter()
                    .filter(|o| o.is_frontline() == frontline && !o.is_crimean_peninsula())
                    .map(|o| row[o.index()])
                    .sum(),
            );
            d = d.plus_days(1);
        }
        out
    };

    let net_rear = internet(false);
    let pow_rear = power(false);
    println!("winter 2022/23, non-frontline regions, daily totals:");
    println!("date         power_h  internet_h");
    let mut d = from;
    for i in 0..net_rear.len() {
        if (pow_rear[i] > 0.0 || net_rear[i] > 0.0) && i % 3 == 0 {
            println!("{d}   {:7.0}  {:9.0}", pow_rear[i], net_rear[i]);
        }
        d = d.plus_days(1);
    }

    let r_rear = pearson(&pow_rear, &net_rear).unwrap_or(f64::NAN);
    let r_front = pearson(&power(true), &internet(true)).unwrap_or(f64::NAN);
    println!("\nPearson r, power vs Internet outage hours:");
    println!("  non-frontline: {r_rear:.3}   (paper 2024: 0.725 — strong)");
    println!("  frontline:     {r_front:.3}   (paper 2024: 0.298 — weak: war damage dominates)");

    // The Crimean-peninsula control: on the Russian grid, no blackouts.
    let crimea_events = report.region_events_of(Oblast::Crimea);
    let crimea_hours = DailyHours::from_events(crimea_events)
        .dense_range(from, to)
        .iter()
        .sum::<f64>();
    println!(
        "\nCrimea (Russian grid since 2014): {crimea_hours:.0} winter outage hours — \n\
         the paper's control showing the winter outages are power-driven."
    );
}
