//! The wire path: run the actual ZMap-style scanner — real ICMP packets,
//! checksums, permuted targets, token-bucket pacing — against the world
//! simulator for a single probing round.
//!
//! ```sh
//! cargo run --release --example scan_once
//! ```

#![forbid(unsafe_code)]

use ukraine_fbs::netsim::WorldTransport;
use ukraine_fbs::prelude::*;
use ukraine_fbs::prober::{ScanConfig, Scanner, TargetSet};

fn main() {
    let world = scenarios::ukraine_with_rounds(WorldScale::Tiny, 7, 24)
        .into_world()
        .expect("scenario is valid");

    // The target set: every /24 the world announces, as the paper derives
    // its targets from RIPE delegations.
    let targets = TargetSet::from_blocks(world.blocks().iter().map(|b| b.block).collect());
    println!(
        "target universe: {} blocks = {} addresses",
        targets.num_blocks(),
        targets.num_addresses()
    );

    // The paper's configuration: 8,000 pps. Virtual time means this does
    // not take 500 wall-clock seconds — the clock *jumps* between sends.
    let scanner = Scanner::new(ScanConfig::default());
    let round = Round(6);
    let mut transport = WorldTransport::new(&world, round);
    let start = std::time::Instant::now();
    let (obs, stats) = scanner.scan_round(round, &targets, &mut transport);
    let elapsed = start.elapsed();

    println!("\nscan round {round}:");
    println!("  probes sent      : {}", stats.sent);
    println!("  valid replies    : {}", stats.valid);
    println!("  parse errors     : {}", stats.parse_errors);
    println!("  invalid/unsolicited: {}", stats.invalid);
    println!("  duplicates       : {}", stats.duplicates);
    println!(
        "  virtual duration : {:.1} min (wall clock: {:.2?})",
        stats.duration_ns as f64 / 60e9,
        elapsed
    );
    println!(
        "  responsive IPs   : {} in {} active blocks",
        obs.total_responsive(),
        obs.active_blocks()
    );

    // Per-block detail for the five most responsive blocks.
    let mut by_count: Vec<usize> = (0..obs.blocks.len()).collect();
    by_count.sort_by_key(|&i| std::cmp::Reverse(obs.blocks[i].responsive()));
    println!("\nbusiest blocks:");
    for &i in by_count.iter().take(5) {
        let b = &obs.blocks[i];
        println!(
            "  {}: {} responsive, mean RTT {:.1} ms",
            obs.block_ids[i],
            b.responsive(),
            b.rtt.mean_ms().unwrap_or(0.0)
        );
    }

    // Cross-check the wire path against the oracle path.
    let mut mismatches = 0;
    for (i, block_obs) in obs.blocks.iter().enumerate() {
        let bi = world.block_index(obs.block_ids[i]).expect("world block");
        if world.block_bitmap(round, bi) != block_obs.responders {
            mismatches += 1;
        }
    }
    println!("\nwire-path vs world-truth bitmap mismatches: {mismatches} (expect 0)");
}
