//! Replay the paper's §5.2/§5.3 narrative for Kherson: the Mykolaiv cable
//! cut, the Status office seizure, occupation rerouting, and the
//! liberation outage — each checked against the campaign's detections.
//!
//! ```sh
//! cargo run --release --example kherson_timeline
//! ```

#![forbid(unsafe_code)]

use ukraine_fbs::prelude::*;
use ukraine_fbs::signals::EntityId;

fn window_events(
    events: &[OutageEvent],
    from: CivilDate,
    to: CivilDate,
) -> impl Iterator<Item = &OutageEvent> {
    let ws = Round::containing(from.midnight()).expect("in campaign");
    let we = Round::containing(to.midnight()).expect("in campaign");
    events.iter().filter(move |e| e.start < we && e.end > ws)
}

fn main() {
    // Ten months cover all the 2022 Kherson events.
    let scenario = scenarios::ukraine_with_rounds(WorldScale::Tiny, 42, 300 * 12);
    let world = scenario.into_world().expect("scenario is valid");
    let report = Campaign::new(world, CampaignConfig::default())
        .expect("valid config")
        .run()
        .expect("campaign run");

    println!("== April 30, 2022: the Mykolaiv backbone cable cut ==");
    let mut affected = Vec::new();
    for entry in &scenarios::KHERSON_ROSTER {
        if let Some(events) = report.as_events.get(&entry.asn()) {
            let hit = window_events(
                events,
                CivilDate::new(2022, 4, 30),
                CivilDate::new(2022, 5, 4),
            )
            .any(|e| e.signal == SignalKind::Bgp);
            if hit {
                affected.push(entry.name);
            }
        }
    }
    println!(
        "BGP outages detected for {} Kherson ASes: {}",
        affected.len(),
        affected.join(", ")
    );
    println!("(paper: 24 ASes lost BGP visibility for three days)\n");

    println!("== May 13, 2022: Russian troops search the Status offices ==");
    let status = &report.as_events[&Asn(25482)];
    for e in window_events(
        status,
        CivilDate::new(2022, 5, 13),
        CivilDate::new(2022, 5, 14),
    ) {
        println!(
            "  {} outage {} .. {} (deepest ratio {:.2})",
            e.signal.glyph(),
            e.start.start(),
            Round(e.end.0).start(),
            e.min_ratio
        );
    }
    println!("(paper: an IPS-only dip — BGP and FBS stay up)\n");

    println!("== May–November 2022: rerouting via Russian upstream ==");
    for asn in [Asn(49465), Asn(25482)] {
        let spec = |m: u8| {
            report
                .rtt_monthly
                .get(&(asn, MonthId::new(2022, m)))
                .and_then(|r| r.mean_ms())
                .unwrap_or(f64::NAN)
        };
        println!(
            "  {asn}: RTT {:.0} ms (Apr) -> {:.0} ms (Aug) -> {:.0} ms (Dec)",
            spec(4),
            spec(8),
            spec(12)
        );
    }
    println!("(paper: ~60 ms extra while occupied; left-bank HQs stay high after liberation)\n");

    println!("== November 11, 2022: liberation and the Status block outage ==");
    for c in 0..4u8 {
        let block = BlockId::from_octets(193, 151, 240 + c);
        let series = report
            .series(EntityId::Block(block))
            .expect("Status blocks are tracked");
        let before = Round::containing(CivilDate::new(2022, 11, 9).at(12, 0)).unwrap();
        let during = Round::containing(CivilDate::new(2022, 11, 15).at(12, 0)).unwrap();
        let after = Round::containing(CivilDate::new(2022, 11, 25).at(12, 0)).unwrap();
        println!(
            "  {block}: {} -> {} -> {} responsive IPs (Nov 9 / Nov 15 / Nov 25)",
            series.ips.at(before).unwrap_or(f64::NAN),
            series.ips.at(during).unwrap_or(f64::NAN),
            series.ips.at(after).unwrap_or(f64::NAN),
        );
    }
    println!("(paper: the three Kherson blocks go dark for ten days; the Kyiv block stays up)");
}
