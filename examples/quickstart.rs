//! Quickstart: build the Ukraine scenario, run a campaign over the first
//! year of the war, and print what was detected.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use ukraine_fbs::prelude::*;

fn main() {
    // A small world and ten months keep this example under half a minute
    // in debug builds; swap in `scenarios::ukraine(WorldScale::Small, 42)`
    // for the full three-year campaign.
    let scenario = scenarios::ukraine_with_rounds(WorldScale::Tiny, 42, 300 * 12);
    let world = scenario.into_world().expect("scenario is valid");
    println!(
        "world: {} ASes, {} /24 blocks, {} two-hour rounds",
        world.config().ases.len(),
        world.blocks().len(),
        world.rounds()
    );

    let campaign = Campaign::new(world, CampaignConfig::default()).expect("valid config");
    let report = campaign.run().expect("campaign run");

    println!(
        "\ndetected {} AS-level outage events across {} ASes",
        report.total_as_outages(),
        report.ases_with_outages()
    );

    // The Kherson region: the paper's example oblast.
    let kherson_events = report.region_events_of(Oblast::Kherson);
    println!(
        "Kherson oblast: {} regional outage events, {:.0} hours total",
        kherson_events.len(),
        ukraine_fbs::signals::outage_hours(kherson_events)
    );

    // Status, the paper's example ISP: its first few events.
    let status = &report.as_events[&Asn(25482)];
    println!("\nStatus (AS25482) events:");
    for e in status.iter().take(8) {
        println!(
            "  {} | {} .. {} ({:.0} h, deepest ratio {:.2})",
            e.signal.glyph(),
            e.start.start(),
            Round(e.end.0).start(),
            e.hours(),
            e.min_ratio
        );
    }

    // Regional classification of Kherson.
    let kherson = &report.classification.regions[&Oblast::Kherson];
    println!(
        "\nKherson classification: {} regional ASes, {} regional blocks in the target set",
        kherson
            .ases_with(ukraine_fbs::regional::Regionality::Regional)
            .len(),
        kherson.regional_blocks().len()
    );
}
