//! Passive degradation: when every vantage goes dark at once, the darknet
//! keeps detection alive.
//!
//! A quiet one-AS world carries a scripted 3-day BGP outage — but all
//! three scanning vantages black out for a 20-day window around it, so no
//! active measurement exists while the outage happens. The passive
//! background-radiation signal (Chocolatine-style: a seasonal-median
//! predictor over per-AS darknet volume) still catches it, with zero
//! false positives, and the per-round passive ledger exports as
//! `ibr_signal.csv`.
//!
//! ```sh
//! cargo run --release --example passive_degradation
//! ```

#![forbid(unsafe_code)]

use ukraine_fbs::core::dataset::ibr_signal_csv;
use ukraine_fbs::netsim::{
    AsProfile, AsSpec, BlockSpec, EventKind, EventTarget, FaultIntensity, FaultPlan, FaultWindow,
    IbrConfig, Script, ScriptedEvent, VantageSpec, World, WorldConfig, WorldScale,
};
use ukraine_fbs::prelude::*;
use ukraine_fbs::types::{Oblast, Prefix};

const ROUNDS: u32 = 600; // 50 days at 12 rounds/day
const VANTAGE_DARK: std::ops::Range<u32> = 200..440;
const OUTAGE: std::ops::Range<u32> = 300..340;

fn main() {
    // A deliberately quiet world: one regional AS, eight well-populated
    // blocks, no diurnal swing — the only disruption is the scripted one.
    let asn = Asn(100);
    let blocks: Vec<BlockSpec> = (0..8u8)
        .map(|c| BlockSpec {
            block: BlockId::from_octets(10, 0, c),
            owner: asn,
            home: Oblast::Kherson,
            base_responders: 120,
            geo_population: 220,
            response_prob: 0.9,
            diurnal: false,
            power_backup: 1.0,
            annual_decay: 1.0,
        })
        .collect();
    let mut script = Script::new();
    script.push(ScriptedEvent {
        name: "cable-cut".into(),
        target: EventTarget::As(asn),
        kind: EventKind::BgpOutage,
        start: Round(OUTAGE.start).start(),
        end: Some(Round(OUTAGE.end).start()),
    });
    let world = World::new(
        WorldConfig {
            seed: 42,
            scale: WorldScale::Tiny,
            rounds: ROUNDS,
            ases: vec![AsSpec {
                asn,
                name: "passive-demo".into(),
                profile: AsProfile::Regional,
                hq: Some(Oblast::Kherson),
                prefixes: blocks.iter().map(|b| Prefix::from_block(b.block)).collect(),
                base_rtt_ns: 40_000_000,
                upstream: Asn(1),
            }],
            blocks,
        },
        script,
        vec![],
    )
    .expect("valid config");

    // Every vantage behind the same blackout: the active side is blind
    // over the whole window — including the scripted outage inside it.
    let blackout = FaultPlan {
        baseline: FaultIntensity::default(),
        windows: vec![FaultWindow::over_rounds(
            "all-vantages-dark",
            VANTAGE_DARK,
            FaultIntensity {
                reply_loss: 1.0,
                ..FaultIntensity::default()
            },
        )],
    };
    let mut cfg = CampaignConfig::with_vantages(
        ["kyiv", "warsaw", "frankfurt"]
            .into_iter()
            .map(|name| VantageSpec {
                fault_plan: Some(blackout.clone()),
                ..VantageSpec::new(name)
            })
            .collect(),
    );
    cfg.ibr = Some(IbrConfig::default());

    println!(
        "scripted outage: rounds {}..{}; all vantages dark: rounds {}..{}",
        OUTAGE.start, OUTAGE.end, VANTAGE_DARK.start, VANTAGE_DARK.end
    );
    let report = Campaign::new(world, cfg)
        .expect("valid config")
        .run()
        .expect("campaign run");

    println!(
        "\nactive side:  {} unusable rounds, {} AS-level outage events (blind through the blackout)",
        report.unusable_rounds(),
        report.total_as_outages(),
    );
    println!(
        "passive side: {} outage event(s) from the darknet alone:",
        report.total_ibr_outages()
    );
    for ledger in &report.ibr {
        for e in &ledger.events {
            println!(
                "  AS{}: rounds {}..{} ({} rounds, min volume/prediction ratio {:.3})",
                ledger.asn.0,
                e.start.0,
                e.end.0,
                e.rounds(),
                e.min_ratio
            );
        }
        let snr = ledger
            .snr()
            .map(|s| format!("{s:.1}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  AS{} ledger: {} observed rounds, {} dark, volume SNR {snr}",
            ledger.asn.0,
            ledger.observed_rounds(),
            ledger.dark_rounds()
        );
    }

    // The dataset the campaign exports alongside the active CSVs.
    let csv = ibr_signal_csv(&report);
    let path = std::path::Path::new("target/ibr_signal.csv");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, &csv) {
        Ok(()) => println!("\nwrote {}:", path.display()),
        Err(e) => println!("\ncould not write {}: {e}; contents:", path.display()),
    }
    for line in csv.lines() {
        println!("  {line}");
    }
}
