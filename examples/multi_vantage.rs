//! Multi-vantage scanning: the same campaign measured from three vantage
//! points with independent path conditions, fused by quorum before
//! detection.
//!
//! One vantage is clean, one sits behind a congested path (steady 50%
//! reply loss and extra latency), and one blacks out completely for a
//! third of the campaign. The quorum masks the dead vantage, outvotes the
//! lossy one where their views differ, and the per-vantage ledgers plus
//! the disagreement summary show exactly what each path saw.
//!
//! ```sh
//! cargo run --release --example multi_vantage
//! ```

#![forbid(unsafe_code)]

use ukraine_fbs::core::dataset::vantage_disagreement_csv;
use ukraine_fbs::netsim::{FaultIntensity, FaultPlan, FaultWindow, VantageSpec};
use ukraine_fbs::prelude::*;

fn main() {
    let rounds = 300 * 12 / 10; // one month at 12 rounds/day keeps it quick
    let scenario = scenarios::ukraine_with_rounds(WorldScale::Tiny, 42, rounds);
    let world = scenario.into_world().expect("scenario is valid");
    println!(
        "world: {} ASes, {} /24 blocks, {} two-hour rounds",
        world.config().ases.len(),
        world.blocks().len(),
        world.rounds()
    );

    // The roster. Names key each vantage's independent fault-RNG domain,
    // so adding or reordering other vantages never changes one's draws.
    let dark_window = rounds / 3..2 * rounds / 3;
    let blackout = FaultPlan {
        baseline: FaultIntensity::default(),
        windows: vec![FaultWindow::over_rounds(
            "frankfurt-dark",
            dark_window.clone(),
            FaultIntensity {
                reply_loss: 1.0,
                ..FaultIntensity::default()
            },
        )],
    };
    let congested = FaultPlan::constant(FaultIntensity {
        reply_loss: 0.50,
        ..FaultIntensity::default()
    });
    let cfg = CampaignConfig::with_vantages(vec![
        VantageSpec::new("kyiv"),
        VantageSpec {
            path_rtt_ns: 25_000_000,
            fault_plan: Some(congested),
            ..VantageSpec::new("warsaw")
        },
        VantageSpec {
            fault_plan: Some(blackout),
            ..VantageSpec::new("frankfurt")
        },
    ]);
    println!(
        "roster: kyiv (clean), warsaw (50% loss, +25 ms path), frankfurt (dark rounds {}..{})\n",
        dark_window.start, dark_window.end
    );

    let campaign = Campaign::new(world, cfg).expect("valid config");
    let report = campaign.run().expect("campaign run");

    println!(
        "detected {} AS-level outage events across {} ASes",
        report.total_as_outages(),
        report.ases_with_outages()
    );

    // Per-vantage quality ledgers: the blackout is visible here even
    // though fusion routed detection around it.
    println!("\nvantage ledgers:");
    for v in &report.vantages {
        let snr = v
            .snr()
            .map(|s| format!("{s:.1}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:<10} usable {:>4}  degraded {:>4}  unusable {:>4}  dissent block-rounds {:>6}  SNR {snr}",
            v.name,
            v.usable_rounds(),
            v.degraded_rounds(),
            v.unusable_rounds(),
            v.dissent_block_rounds,
        );
    }

    let d = &report.disagreement;
    println!(
        "\ndisagreement: {} rounds touched, {} block-rounds reachable-from-some-but-not-all, {} minority claims suppressed",
        d.rounds_with_disagreement, d.some_not_all_block_rounds, d.quorum_suppressed_block_rounds
    );

    // The CSV the campaign exports alongside the detection datasets.
    println!("\nvantage_disagreement.csv:");
    for line in vantage_disagreement_csv(&report).lines() {
        println!("  {line}");
    }
}
