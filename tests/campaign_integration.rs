//! Cross-crate integration: a shared tiny campaign run, checked against
//! the paper's §5 narrative (cable cut, seizure, rerouting, liberation)
//! and the structural invariants the crates promise each other.

use std::sync::OnceLock;
use ukraine_fbs::prelude::*;
use ukraine_fbs::signals::{outage_hours, EntityId};

fn report() -> &'static CampaignReport {
    static REPORT: OnceLock<CampaignReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let scenario = scenarios::ukraine_with_rounds(WorldScale::Tiny, 42, 300 * 12);
        let world = scenario.into_world().expect("valid scenario");
        Campaign::new(world, CampaignConfig::default())
            .expect("valid config")
            .run()
            .expect("campaign run")
    })
}

#[test]
fn cable_cut_detected_as_multi_signal_outage() {
    let status = &report().as_events[&Asn(25482)];
    let cut = Round::containing(CivilDate::new(2022, 5, 1).midnight()).unwrap();
    let signals: Vec<SignalKind> = status
        .iter()
        .filter(|e| e.contains(cut))
        .map(|e| e.signal)
        .collect();
    assert!(
        signals.contains(&SignalKind::Bgp),
        "BGP outage: {signals:?}"
    );
    assert!(
        signals.contains(&SignalKind::Ips),
        "IPS outage: {signals:?}"
    );
}

#[test]
fn seizure_is_ips_only() {
    let status = &report().as_events[&Asn(25482)];
    let seizure = Round::containing(CivilDate::new(2022, 5, 13).at(8, 0)).unwrap();
    let hit: Vec<SignalKind> = status
        .iter()
        .filter(|e| e.contains(seizure))
        .map(|e| e.signal)
        .collect();
    assert_eq!(hit, vec![SignalKind::Ips], "seizure must be IPS-only");
}

#[test]
fn rerouting_raises_and_releases_rtt() {
    let r = report();
    let rtt = |asn: u32, m: u8| {
        r.rtt_monthly
            .get(&(Asn(asn), MonthId::new(2022, m)))
            .and_then(|x| x.mean_ms())
            .expect("tracked AS has RTT")
    };
    // Right-bank Status: up during occupation, back down after.
    assert!(rtt(25482, 8) > rtt(25482, 4) + 40.0);
    assert!(rtt(25482, 12) < rtt(25482, 8) - 40.0);
    // Left-bank RubinTV: stays up.
    assert!(rtt(49465, 12) > rtt(49465, 4) + 40.0);
}

#[test]
fn liberation_outage_visible_per_block() {
    let r = report();
    let dark = Round::containing(CivilDate::new(2022, 11, 15).at(12, 0)).unwrap();
    for c in 0..3u8 {
        let s = r
            .series(EntityId::Block(BlockId::from_octets(193, 151, 240 + c)))
            .expect("tracked block");
        assert_eq!(s.ips.at(dark), Some(0.0), "Kherson block {c} dark");
    }
    let kyiv = r
        .series(EntityId::Block(BlockId::from_octets(193, 151, 243)))
        .expect("tracked block");
    assert!(kyiv.ips.at(dark).unwrap() > 10.0, "Kyiv block stays up");
}

#[test]
fn frontline_oblasts_hit_harder_per_region() {
    let r = report();
    let mean = |frontline: bool| {
        let os: Vec<Oblast> = ukraine_fbs::types::ALL_OBLASTS
            .iter()
            .copied()
            .filter(|o| o.is_frontline() == frontline && !o.is_crimean_peninsula())
            .collect();
        os.iter()
            .map(|o| outage_hours(r.region_events_of(*o)))
            .sum::<f64>()
            / os.len() as f64
    };
    let front = mean(true);
    let rear = mean(false);
    assert!(
        front > 1.5 * rear,
        "frontline {front:.0}h should dwarf non-frontline {rear:.0}h"
    );
}

#[test]
fn ioda_baseline_misses_small_providers() {
    let r = report();
    let ioda = r.ioda.as_ref().expect("baseline enabled");
    // Every regional Kherson AS is too small for IODA.
    for entry in scenarios::KHERSON_ROSTER.iter().filter(|a| a.regional) {
        assert!(
            !ioda.as_events.contains_key(&entry.asn()),
            "{} should be below IODA's floor",
            entry.name
        );
    }
    // But we report events for most of them.
    let covered = scenarios::KHERSON_ROSTER
        .iter()
        .filter(|a| a.regional)
        .filter(|a| {
            r.as_events
                .get(&a.asn())
                .map(|v| !v.is_empty())
                .unwrap_or(false)
        })
        .count();
    assert!(covered >= 8, "only {covered} regional ASes have events");
}

#[test]
fn missing_rounds_cover_documented_vantage_windows() {
    let r = report();
    for (start, end) in scenarios::timeline::vantage_outages() {
        let Some(s) = Round::containing(start) else {
            continue;
        };
        if s.0 >= r.rounds {
            continue;
        }
        let e = Round::containing(end)
            .map(|x| x.0.min(r.rounds))
            .unwrap_or(r.rounds);
        for probe in [s.0, (s.0 + e) / 2] {
            assert!(
                r.missing_rounds.contains(&Round(probe)),
                "round {probe} should be missing"
            );
        }
    }
    // No outage event may *start* during a missing round.
    for events in r.as_events.values() {
        for ev in events {
            assert!(
                !r.missing_rounds.contains(&ev.start),
                "event starts in a missing round: {ev:?}"
            );
        }
    }
}

#[test]
fn classification_matches_roster_for_clear_cases() {
    let r = report();
    let kherson = &r.classification.regions[&Oblast::Kherson];
    use ukraine_fbs::regional::Regionality;
    // Clear regional providers.
    for asn in [49465u32, 56404, 56359, 25482] {
        assert_eq!(
            kherson.ases.get(&Asn(asn)),
            Some(&Regionality::Regional),
            "AS{asn}"
        );
    }
    // Clear nationals.
    for asn in [25229u32, 15895, 6877, 6849] {
        assert_eq!(
            kherson.ases.get(&Asn(asn)),
            Some(&Regionality::NonRegional),
            "AS{asn}"
        );
    }
}

#[test]
fn report_accessors_are_consistent() {
    let r = report();
    assert_eq!(
        r.total_as_outages(),
        r.all_as_events().len(),
        "event accessors disagree"
    );
    assert!(r.ases_with_outages() <= r.as_events.len());
    // 300 days from 2022-03-02 run into late December: ten months.
    assert_eq!(r.months.len(), 10);
    let last_round = Round(r.rounds - 1);
    assert_eq!(*r.months.last().unwrap(), last_round.month());
}

/// Paper-scale smoke test: the full 2.6K-AS / 28K-block world builds and a
/// 60-day campaign runs. Ignored by default (~20 s in release); run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale smoke test, run explicitly with --ignored"]
fn paper_scale_campaign_smokes() {
    let scenario = scenarios::ukraine_with_rounds(WorldScale::Paper, 42, 60 * 12);
    let world = scenario.into_world().expect("paper-scale scenario builds");
    assert!(
        world.blocks().len() > 20_000,
        "blocks {}",
        world.blocks().len()
    );
    assert!(world.config().ases.len() > 2_000);
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    let report = Campaign::new(world, cfg)
        .expect("valid config")
        .run()
        .expect("campaign run");
    assert!(report.total_as_outages() > 0);
    // The April 30 cable cut lands inside the 60-day window.
    assert!(!report.as_events[&Asn(25482)].is_empty());
}
