//! The chaos matrix: end-to-end resilience of the scan → signal →
//! detection chain under injected measurement faults.
//!
//! The contract under test, from the robustness work: reply loss at or
//! below 20% — plus duplication and reordering — must produce **zero false
//! outage events** on a healthy world, while a genuine scripted outage
//! inside the same fault window is **still detected**. Degraded rounds damp
//! detection; they must not blind it.

use ukraine_fbs::netsim::{
    AsProfile, AsSpec, BlockSpec, EventKind, EventTarget, FaultIntensity, FaultPlan, FaultWindow,
    FaultyTransport, Script, ScriptedEvent, World, WorldConfig, WorldScale, WorldTransport,
};
use ukraine_fbs::prelude::*;
use ukraine_fbs::prober::{ScanConfig, Scanner, TargetSet};
use ukraine_fbs::types::{Oblast, Prefix, RoundQuality};

const ROUNDS: u32 = 600; // 50 days at 12 rounds/day
const FAULT_WINDOW: std::ops::Range<u32> = 100..500;

/// A deliberately quiet world: one regional AS, eight well-populated
/// blocks, no diurnal swing, no decay — so the only thing that can create
/// an outage event is a scripted event or an injected fault.
fn world(seed: u64, events: Vec<ScriptedEvent>) -> World {
    let asn = Asn(100);
    let blocks: Vec<BlockSpec> = (0..8u8)
        .map(|c| BlockSpec {
            block: BlockId::from_octets(10, 0, c),
            owner: asn,
            home: Oblast::Kherson,
            base_responders: 120,
            geo_population: 220,
            response_prob: 0.9,
            diurnal: false,
            power_backup: 1.0,
            annual_decay: 1.0,
        })
        .collect();
    let config = WorldConfig {
        seed,
        scale: WorldScale::Tiny,
        rounds: ROUNDS,
        ases: vec![AsSpec {
            asn,
            name: "chaos-test".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: blocks.iter().map(|b| Prefix::from_block(b.block)).collect(),
            base_rtt_ns: 40_000_000,
            upstream: Asn(1),
        }],
        blocks,
    };
    let mut script = Script::new();
    for e in events {
        script.push(e);
    }
    World::new(config, script, vec![]).expect("valid config")
}

/// The acceptance-level fault mix: 20% reply loss plus duplication and
/// reordering, active over rounds 100..500.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        baseline: FaultIntensity::default(),
        windows: vec![FaultWindow::over_rounds(
            "chaos-matrix",
            FAULT_WINDOW,
            FaultIntensity {
                reply_loss: 0.20,
                duplicate: 0.15,
                reorder: 0.20,
                reorder_jitter_ns: 5_000_000,
                ..FaultIntensity::default()
            },
        )],
    }
}

fn campaign_config(plan: Option<FaultPlan>) -> CampaignConfig {
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.fault_plan = plan;
    cfg
}

fn run(world: World, plan: Option<FaultPlan>) -> CampaignReport {
    Campaign::new(world, campaign_config(plan))
        .expect("valid config")
        .run()
        .expect("campaign run")
}

/// A BGP outage for the test AS, expressed in rounds.
fn scripted_outage(rounds: std::ops::Range<u32>) -> ScriptedEvent {
    ScriptedEvent {
        name: "scripted-outage".into(),
        target: EventTarget::As(Asn(100)),
        kind: EventKind::BgpOutage,
        start: Round(rounds.start).start(),
        end: Some(Round(rounds.end).start()),
    }
}

#[test]
fn injected_loss_causes_no_false_outages() {
    // Fault-free control: the quiet world must be genuinely quiet.
    let clean = run(world(11, vec![]), None);
    assert_eq!(
        clean.total_as_outages(),
        0,
        "control run must be event-free: {:?}",
        clean.as_events
    );
    assert_eq!(clean.degraded_rounds(), 0);

    // Same world, same seed, chaos applied: still no events.
    let noisy = run(world(11, vec![]), Some(chaos_plan()));
    assert_eq!(
        noisy.total_as_outages(),
        0,
        "injected loss fabricated outages: {:?}",
        noisy.as_events
    );
    // Regional detection is unchanged by the chaos. (Oblasts with no
    // blocks at all — everything but Kherson in this one-AS world — flag
    // BGP-zero in both runs; what matters is that the faults add nothing.)
    assert_eq!(
        noisy.region_events.keys().collect::<Vec<_>>(),
        clean.region_events.keys().collect::<Vec<_>>()
    );
    for (oblast, events) in &noisy.region_events {
        let control = &clean.region_events[oblast];
        assert_eq!(events.len(), control.len(), "{oblast:?}");
        for (x, y) in events.iter().zip(control) {
            assert_eq!(
                (x.start, x.end, x.signal),
                (y.start, y.end, y.signal),
                "{oblast:?}"
            );
        }
    }
    assert!(
        noisy.region_events_of(Oblast::Kherson).is_empty(),
        "the populated region must not false-fire"
    );

    // The fault window is visible in the quality ledger — degraded, never
    // unusable, and exactly where the plan put it.
    assert_eq!(
        noisy.degraded_rounds(),
        (FAULT_WINDOW.end - FAULT_WINDOW.start) as usize
    );
    for (r, q) in noisy.round_quality.iter().enumerate() {
        let expect = if FAULT_WINDOW.contains(&(r as u32)) {
            RoundQuality::Degraded
        } else {
            RoundQuality::Ok
        };
        assert_eq!(*q, expect, "round {r}");
    }
    assert_eq!(noisy.unusable_rounds(), 0);
    assert_eq!(noisy.quality_of(Round(0)), RoundQuality::Ok);
    assert_eq!(
        noisy.quality_of(Round(FAULT_WINDOW.start)),
        RoundQuality::Degraded
    );
}

#[test]
fn scripted_outage_survives_the_chaos() {
    // A real 3-day BGP outage in the middle of the fault window.
    let outage_rounds = 360u32..396;
    let report = run(
        world(11, vec![scripted_outage(outage_rounds.clone())]),
        Some(chaos_plan()),
    );
    let events = report
        .as_events
        .get(&Asn(100))
        .expect("the outage must still be detected under 20% loss");
    assert!(!events.is_empty());
    let hit = events
        .iter()
        .any(|e| e.start.0 < outage_rounds.end + 12 && e.end.0 + 12 > outage_rounds.start);
    assert!(
        hit,
        "no detected event overlaps the scripted outage: {events:?}"
    );
    // And nothing fires outside the outage's neighbourhood: detection under
    // damping is still precise, not just recall-preserving.
    for e in events {
        assert!(
            e.end.0 >= outage_rounds.start.saturating_sub(12)
                && e.start.0 <= outage_rounds.end + 12,
            "event far from the scripted outage: {e:?}"
        );
    }
}

#[test]
fn chaos_campaign_is_deterministic() {
    let go = || {
        run(
            world(23, vec![scripted_outage(360..396)]),
            Some(chaos_plan()),
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a.round_quality, b.round_quality);
    assert_eq!(a.total_as_outages(), b.total_as_outages());
    for (asn, events) in &a.as_events {
        let other = &b.as_events[asn];
        assert_eq!(events.len(), other.len());
        for (x, y) in events.iter().zip(other) {
            assert_eq!((x.start, x.end, x.signal), (y.start, y.end, y.signal));
        }
    }
}

#[test]
fn wire_path_faults_only_remove_responders() {
    // The same contract at the packet level: scanning the world through a
    // FaultyTransport yields a subset of the clean scan's responders, with
    // conserved accounting, and identical seeds reproduce it bit-for-bit.
    let w = world(7, vec![]);
    let targets = TargetSet::from_blocks(w.blocks().iter().map(|b| b.block).collect());
    let scanner = Scanner::new(ScanConfig {
        rate_pps: 1_000_000,
        ..ScanConfig::default()
    });
    let round = Round(200);
    let plan = chaos_plan();

    let (clean_obs, _) = scanner.scan_round(round, &targets, &mut WorldTransport::new(&w, round));

    let scan_faulty = || {
        let mut t = FaultyTransport::for_round(
            WorldTransport::new(&w, round),
            w.rng(),
            &plan,
            round,
            ROUNDS,
        );
        let (obs, stats) = scanner.scan_round(round, &targets, &mut t);
        (obs, stats, t.stats)
    };
    let (obs_a, stats_a, fstats_a) = scan_faulty();
    assert!(stats_a.is_conserved(), "{stats_a:?}");
    assert!(fstats_a.replies_dropped > 0, "the window must be active");
    for (i, block) in obs_a.blocks.iter().enumerate() {
        let kept = block
            .responders
            .intersection(&clean_obs.blocks[i].responders);
        assert_eq!(kept.count(), block.responders.count(), "phantom responders");
    }
    assert!(obs_a.total_responsive() < clean_obs.total_responsive());

    let (obs_b, stats_b, fstats_b) = scan_faulty();
    assert_eq!(obs_a, obs_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(fstats_a, fstats_b);
}
