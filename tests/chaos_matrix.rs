//! The chaos matrix: end-to-end resilience of the scan → signal →
//! detection chain under injected measurement faults.
//!
//! The contract under test, from the robustness work: reply loss at or
//! below 20% — plus duplication and reordering — must produce **zero false
//! outage events** on a healthy world, while a genuine scripted outage
//! inside the same fault window is **still detected**. Degraded rounds damp
//! detection; they must not blind it.

use ukraine_fbs::core::{CheckpointPolicy, DisagreementSummary, ShardRoundSummary};
use ukraine_fbs::netsim::{
    AsProfile, AsSpec, BlockSpec, EventKind, EventTarget, FaultIntensity, FaultPlan, FaultWindow,
    FaultyTransport, FeedFaultIntensity, FeedFaultPlan, FeedFaultWindow, IbrConfig, IbrDarkWindow,
    Script, ScriptedEvent, ShardFaultKind, ShardFaultPlan, ShardFaultWindow, VantageSpec, World,
    WorldConfig, WorldScale, WorldTransport,
};
use ukraine_fbs::prelude::*;
use ukraine_fbs::prober::{ScanConfig, Scanner, TargetSet};
use ukraine_fbs::signals::{IbrRoundStatus, SeasonalPredictor};
use ukraine_fbs::types::{FeedKind, FeedStatus, Oblast, Prefix, RoundQuality};

const ROUNDS: u32 = 600; // 50 days at 12 rounds/day
const FAULT_WINDOW: std::ops::Range<u32> = 100..500;

/// A deliberately quiet world: one regional AS, eight well-populated
/// blocks, no diurnal swing, no decay — so the only thing that can create
/// an outage event is a scripted event or an injected fault.
fn world(seed: u64, events: Vec<ScriptedEvent>) -> World {
    let asn = Asn(100);
    let blocks: Vec<BlockSpec> = (0..8u8)
        .map(|c| BlockSpec {
            block: BlockId::from_octets(10, 0, c),
            owner: asn,
            home: Oblast::Kherson,
            base_responders: 120,
            geo_population: 220,
            response_prob: 0.9,
            diurnal: false,
            power_backup: 1.0,
            annual_decay: 1.0,
        })
        .collect();
    let config = WorldConfig {
        seed,
        scale: WorldScale::Tiny,
        rounds: ROUNDS,
        ases: vec![AsSpec {
            asn,
            name: "chaos-test".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: blocks.iter().map(|b| Prefix::from_block(b.block)).collect(),
            base_rtt_ns: 40_000_000,
            upstream: Asn(1),
        }],
        blocks,
    };
    let mut script = Script::new();
    for e in events {
        script.push(e);
    }
    World::new(config, script, vec![]).expect("valid config")
}

/// The acceptance-level fault mix: 20% reply loss plus duplication and
/// reordering, active over rounds 100..500.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        baseline: FaultIntensity::default(),
        windows: vec![FaultWindow::over_rounds(
            "chaos-matrix",
            FAULT_WINDOW,
            FaultIntensity {
                reply_loss: 0.20,
                duplicate: 0.15,
                reorder: 0.20,
                reorder_jitter_ns: 5_000_000,
                ..FaultIntensity::default()
            },
        )],
    }
}

fn campaign_config(plan: Option<FaultPlan>) -> CampaignConfig {
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.fault_plan = plan;
    cfg
}

fn run(world: World, plan: Option<FaultPlan>) -> CampaignReport {
    Campaign::new(world, campaign_config(plan))
        .expect("valid config")
        .run()
        .expect("campaign run")
}

/// A BGP outage for the test AS, expressed in rounds.
fn scripted_outage(rounds: std::ops::Range<u32>) -> ScriptedEvent {
    ScriptedEvent {
        name: "scripted-outage".into(),
        target: EventTarget::As(Asn(100)),
        kind: EventKind::BgpOutage,
        start: Round(rounds.start).start(),
        end: Some(Round(rounds.end).start()),
    }
}

#[test]
fn injected_loss_causes_no_false_outages() {
    // Fault-free control: the quiet world must be genuinely quiet.
    let clean = run(world(11, vec![]), None);
    assert_eq!(
        clean.total_as_outages(),
        0,
        "control run must be event-free: {:?}",
        clean.as_events
    );
    assert_eq!(clean.degraded_rounds(), 0);

    // Same world, same seed, chaos applied: still no events.
    let noisy = run(world(11, vec![]), Some(chaos_plan()));
    assert_eq!(
        noisy.total_as_outages(),
        0,
        "injected loss fabricated outages: {:?}",
        noisy.as_events
    );
    // Regional detection is unchanged by the chaos. (Oblasts with no
    // blocks at all — everything but Kherson in this one-AS world — flag
    // BGP-zero in both runs; what matters is that the faults add nothing.)
    assert_eq!(
        noisy.region_events.keys().collect::<Vec<_>>(),
        clean.region_events.keys().collect::<Vec<_>>()
    );
    for (oblast, events) in &noisy.region_events {
        let control = &clean.region_events[oblast];
        assert_eq!(events.len(), control.len(), "{oblast:?}");
        for (x, y) in events.iter().zip(control) {
            assert_eq!(
                (x.start, x.end, x.signal),
                (y.start, y.end, y.signal),
                "{oblast:?}"
            );
        }
    }
    assert!(
        noisy.region_events_of(Oblast::Kherson).is_empty(),
        "the populated region must not false-fire"
    );

    // The fault window is visible in the quality ledger — degraded, never
    // unusable, and exactly where the plan put it.
    assert_eq!(
        noisy.degraded_rounds(),
        (FAULT_WINDOW.end - FAULT_WINDOW.start) as usize
    );
    for (r, q) in noisy.round_quality.iter().enumerate() {
        let expect = if FAULT_WINDOW.contains(&(r as u32)) {
            RoundQuality::Degraded
        } else {
            RoundQuality::Ok
        };
        assert_eq!(*q, expect, "round {r}");
    }
    assert_eq!(noisy.unusable_rounds(), 0);
    assert_eq!(noisy.quality_of(Round(0)), RoundQuality::Ok);
    assert_eq!(
        noisy.quality_of(Round(FAULT_WINDOW.start)),
        RoundQuality::Degraded
    );
}

#[test]
fn scripted_outage_survives_the_chaos() {
    // A real 3-day BGP outage in the middle of the fault window.
    let outage_rounds = 360u32..396;
    let report = run(
        world(11, vec![scripted_outage(outage_rounds.clone())]),
        Some(chaos_plan()),
    );
    let events = report
        .as_events
        .get(&Asn(100))
        .expect("the outage must still be detected under 20% loss");
    assert!(!events.is_empty());
    let hit = events
        .iter()
        .any(|e| e.start.0 < outage_rounds.end + 12 && e.end.0 + 12 > outage_rounds.start);
    assert!(
        hit,
        "no detected event overlaps the scripted outage: {events:?}"
    );
    // And nothing fires outside the outage's neighbourhood: detection under
    // damping is still precise, not just recall-preserving.
    for e in events {
        assert!(
            e.end.0 >= outage_rounds.start.saturating_sub(12)
                && e.start.0 <= outage_rounds.end + 12,
            "event far from the scripted outage: {e:?}"
        );
    }
}

#[test]
fn chaos_campaign_is_deterministic() {
    let go = || {
        run(
            world(23, vec![scripted_outage(360..396)]),
            Some(chaos_plan()),
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a.round_quality, b.round_quality);
    assert_eq!(a.total_as_outages(), b.total_as_outages());
    for (asn, events) in &a.as_events {
        let other = &b.as_events[asn];
        assert_eq!(events.len(), other.len());
        for (x, y) in events.iter().zip(other) {
            assert_eq!((x.start, x.end, x.signal), (y.start, y.end, y.signal));
        }
    }
}

#[test]
fn wire_path_faults_only_remove_responders() {
    // The same contract at the packet level: scanning the world through a
    // FaultyTransport yields a subset of the clean scan's responders, with
    // conserved accounting, and identical seeds reproduce it bit-for-bit.
    let w = world(7, vec![]);
    let targets = TargetSet::from_blocks(w.blocks().iter().map(|b| b.block).collect());
    let scanner = Scanner::new(ScanConfig {
        rate_pps: 1_000_000,
        ..ScanConfig::default()
    });
    let round = Round(200);
    let plan = chaos_plan();

    let (clean_obs, _) = scanner.scan_round(round, &targets, &mut WorldTransport::new(&w, round));

    let scan_faulty = || {
        let mut t = FaultyTransport::for_round(
            WorldTransport::new(&w, round),
            w.rng(),
            &plan,
            round,
            ROUNDS,
        );
        let (obs, stats) = scanner.scan_round(round, &targets, &mut t);
        (obs, stats, t.stats)
    };
    let (obs_a, stats_a, fstats_a) = scan_faulty();
    assert!(stats_a.is_conserved(), "{stats_a:?}");
    assert!(fstats_a.replies_dropped > 0, "the window must be active");
    for (i, block) in obs_a.blocks.iter().enumerate() {
        let kept = block
            .responders
            .intersection(&clean_obs.blocks[i].responders);
        assert_eq!(kept.count(), block.responders.count(), "phantom responders");
    }
    assert!(obs_a.total_responsive() < clean_obs.total_responsive());

    let (obs_b, stats_b, fstats_b) = scan_faulty();
    assert_eq!(obs_a, obs_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(fstats_a, fstats_b);
}

// ---------------------------------------------------------------------------
// Feed-fault rows: the BGP/geo/delegation feeds going dark or lossy must
// degrade per-signal detection, never fabricate outages.
// ---------------------------------------------------------------------------

/// Rounds during which the BGP mirror serves nothing at all.
const BGP_GAP: std::ops::Range<u32> = 200..260;

fn feed_config(feed_plan: FeedFaultPlan) -> CampaignConfig {
    let mut cfg = campaign_config(None);
    cfg.feed_plan = Some(feed_plan);
    cfg
}

fn bgp_dark_plan(rounds: std::ops::Range<u32>) -> FeedFaultPlan {
    FeedFaultPlan {
        windows: vec![FeedFaultWindow::over_rounds(
            "bgp-mirror-dark",
            FeedKind::Bgp,
            rounds,
            FeedFaultIntensity {
                drop: 1.0,
                ..FeedFaultIntensity::default()
            },
        )],
    }
}

#[test]
fn missing_bgp_dump_opens_no_bgp_outages_and_is_ledgered() {
    // A real BGP outage sits entirely inside the dump gap: with no dump to
    // read, the collector must not open a BGP outage event — it carries
    // the last known routing state forward — while the scan-derived
    // signals (FBS, IPS) still catch the disruption.
    let outage = 212u32..248;
    let go = || {
        run_cfg(
            world(11, vec![scripted_outage(outage.clone())]),
            feed_config(bgp_dark_plan(BGP_GAP)),
        )
    };
    let report = go();

    let events = report
        .as_events
        .get(&Asn(100))
        .expect("FBS/IPS must still detect the outage");
    assert!(
        !events.iter().any(|e| e.signal == SignalKind::Bgp
            && e.start.0 >= BGP_GAP.start
            && e.start.0 < BGP_GAP.end),
        "a BGP outage event opened during the dump gap: {events:?}"
    );
    assert!(
        events.iter().any(|e| e.signal != SignalKind::Bgp
            && e.start.0 < outage.end + 12
            && e.end.0 + 12 > outage.start),
        "scan-derived signals must still catch the outage: {events:?}"
    );

    // The ledger records exactly the gap: Fresh before, Stale(age) with
    // ages counting up during, Fresh again after.
    let ledger = &report.feed_ledger;
    for r in 0..ROUNDS {
        let status = ledger.status_of(FeedKind::Bgp, Round(r)).expect("ledgered");
        if BGP_GAP.contains(&r) {
            assert_eq!(
                status,
                FeedStatus::Stale(r - BGP_GAP.start + 1),
                "round {r}"
            );
        } else {
            assert_eq!(status, FeedStatus::Fresh, "round {r}");
        }
    }
    let health = report.feed_health_of(FeedKind::Bgp).expect("health ledger");
    assert_eq!(health.stale_rounds, BGP_GAP.end - BGP_GAP.start);
    assert_eq!(health.longest_gap, BGP_GAP.end - BGP_GAP.start);
    assert_eq!(
        health.missing_rounds, 0,
        "the feed was delivered before the gap"
    );

    // Byte-identical determinism across two full runs.
    let again = go();
    assert_eq!(format!("{report:?}"), format!("{again:?}"));
}

#[test]
fn detection_resumes_exactly_after_the_feed_returns() {
    // An outage after the gap must be detected identically to a run whose
    // feeds never faltered: staleness suppresses, it does not linger.
    let outage = 360u32..396;
    let faulty = run_cfg(
        world(11, vec![scripted_outage(outage.clone())]),
        feed_config(bgp_dark_plan(BGP_GAP)),
    );
    let clean = run_cfg(
        world(11, vec![scripted_outage(outage.clone())]),
        feed_config(FeedFaultPlan::none()),
    );
    assert_eq!(
        format!("{:?}", faulty.as_events),
        format!("{:?}", clean.as_events),
        "post-gap detection must match the clean-feed run"
    );
    assert_eq!(
        format!("{:?}", faulty.region_events),
        format!("{:?}", clean.region_events)
    );
    // Sanity: the BGP leg of the outage is genuinely detected post-gap.
    let events = &faulty.as_events[&Asn(100)];
    assert!(
        events.iter().any(|e| e.signal == SignalKind::Bgp
            && e.start.0 < outage.end
            && e.end.0 > outage.start),
        "{events:?}"
    );
}

#[test]
fn feed_faulted_resume_is_byte_identical() {
    // Crash-resume lands in the middle of the dump gap: the restored
    // snapshot + journal replay must reconstruct feed ages, ledger and
    // carry-forward state exactly.
    let dir = std::env::temp_dir().join(format!("fbs-feed-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::new(
        world(11, vec![scripted_outage(212..248)]),
        feed_config(bgp_dark_plan(BGP_GAP)),
    )
    .expect("valid config");
    let plain = campaign.run().expect("plain run");
    {
        let mut runner = campaign
            .runner_checkpointed(
                &dir,
                CheckpointPolicy {
                    snapshot_every: 96,
                    fsync: false,
                },
            )
            .expect("runner");
        for _ in 0..230 {
            runner.step_round().expect("step");
        }
        // Dropped mid-gap, mid-snapshot-interval: the crash point.
    }
    let resumed = campaign.resume(&dir).expect("resume");
    assert_eq!(format!("{plain:?}"), format!("{resumed:?}"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_records_cause_no_spurious_outages() {
    // 5% of BGP dump records corrupted over the whole fault window. Small
    // dumps mean a single mangled line can push a delivery over the lossy
    // tolerance — rejected deliveries and quarantined records must both
    // resolve to carry-forward, never to an outage.
    let plan = FeedFaultPlan {
        windows: vec![FeedFaultWindow::over_rounds(
            "bgp-rot",
            FeedKind::Bgp,
            FAULT_WINDOW,
            FeedFaultIntensity {
                corrupt_records: 0.05,
                ..FeedFaultIntensity::default()
            },
        )],
    };
    let go = || run_cfg(world(11, vec![]), feed_config(plan.clone()));
    let report = go();
    assert_eq!(
        report.total_as_outages(),
        0,
        "corrupted feed records fabricated outages: {:?}",
        report.as_events
    );
    assert!(
        report.region_events_of(Oblast::Kherson).is_empty(),
        "the populated region must not false-fire"
    );
    // The rot is visible in the quarantine ledger and the health summary.
    assert!(
        !report.feed_quarantines.is_empty(),
        "5% corruption over 400 rounds must quarantine something"
    );
    let health = report.feed_health_of(FeedKind::Bgp).expect("health");
    assert!(health.rejected_deliveries > 0 || health.fresh_rounds == ROUNDS);
    let rendered = report.feed_quarantine_report();
    assert!(
        rendered.contains("bgp"),
        "report names the feed: {rendered}"
    );
    // Determinism.
    let again = go();
    assert_eq!(format!("{report:?}"), format!("{again:?}"));
}

#[test]
fn stale_geo_month_freezes_classification() {
    // The geolocation mirror is dark for the second month's delivery. The
    // classifier must freeze on the previous snapshot — in this static
    // world that is indistinguishable from the pristine feed, so the whole
    // detection output matches the clean-feed run while the ledger shows
    // the stale month.
    let w = world(11, vec![]);
    let months = ukraine_fbs::core::classify::campaign_months(&w);
    assert!(
        months.len() >= 2,
        "600 rounds must span at least two months"
    );
    let due = w.month_rounds(months[1]).start;
    let plan = FeedFaultPlan {
        windows: vec![FeedFaultWindow::over_rounds(
            "geo-mirror-dark",
            FeedKind::Geo,
            due..due + 1,
            FeedFaultIntensity {
                drop: 1.0,
                ..FeedFaultIntensity::default()
            },
        )],
    };
    let faulty = run_cfg(world(11, vec![]), feed_config(plan));
    let clean = run_cfg(world(11, vec![]), feed_config(FeedFaultPlan::none()));
    assert_eq!(
        format!("{:?}", faulty.as_events),
        format!("{:?}", clean.as_events)
    );
    assert_eq!(
        format!("{:?}", faulty.region_events),
        format!("{:?}", clean.region_events)
    );
    assert_eq!(faulty.total_as_outages(), 0);

    // The ledger marks the whole stale month, and recovery at the next
    // delivery (if the campaign reaches one).
    let ledger = &faulty.feed_ledger;
    for r in w.month_rounds(months[1]) {
        assert_eq!(
            ledger.status_of(FeedKind::Geo, Round(r)),
            Some(FeedStatus::Stale(1)),
            "round {r}"
        );
    }
    for r in w.month_rounds(months[0]) {
        assert_eq!(
            ledger.status_of(FeedKind::Geo, Round(r)),
            Some(FeedStatus::Fresh),
            "round {r}"
        );
    }
    let health = faulty.feed_health_of(FeedKind::Geo).expect("health");
    assert_eq!(health.fresh_rounds + health.stale_rounds, ROUNDS);
    assert!(health.stale_rounds > 0);
}

/// Runs a campaign with an explicit full config (feed rows need more than
/// a fault plan).
fn run_cfg(world: World, cfg: CampaignConfig) -> CampaignReport {
    Campaign::new(world, cfg)
        .expect("valid config")
        .run()
        .expect("campaign run")
}

// ---------------------------------------------------------------------------
// Vantage rows: quorum fusion must route around a vantage that goes
// completely dark mid-campaign, surface genuine per-path disagreement in
// the ledgers, and never let either fabricate an outage.
// ---------------------------------------------------------------------------

/// Rounds during which one vantage's path drops every reply.
const VANTAGE_DARK: std::ops::Range<u32> = 200..440;

/// 100% reply loss over [`VANTAGE_DARK`]: the vantage is `Unusable` for
/// the whole window and must be masked out of the quorum.
fn vantage_blackout_plan() -> FaultPlan {
    FaultPlan {
        baseline: FaultIntensity::default(),
        windows: vec![FaultWindow::over_rounds(
            "vantage-dark",
            VANTAGE_DARK,
            FaultIntensity {
                reply_loss: 1.0,
                ..FaultIntensity::default()
            },
        )],
    }
}

/// Two clean vantages plus one that blacks out mid-campaign.
fn roster_with_dark_vantage() -> Vec<VantageSpec> {
    vec![
        VantageSpec::new("kyiv"),
        VantageSpec::new("warsaw"),
        VantageSpec {
            fault_plan: Some(vantage_blackout_plan()),
            ..VantageSpec::new("frankfurt")
        },
    ]
}

fn vantage_config(vantages: Vec<VantageSpec>) -> CampaignConfig {
    let mut cfg = campaign_config(None);
    cfg.vantages = vantages;
    cfg
}

/// The quiet world plus one sparsely-populated block: a handful of true
/// responders that a lossy path can thin to zero while clean paths still
/// see them — the reachable-from-some-but-not-all signature.
fn world_with_thin_block(seed: u64) -> World {
    let asn = Asn(100);
    let mut blocks: Vec<BlockSpec> = (0..8u8)
        .map(|c| BlockSpec {
            block: BlockId::from_octets(10, 0, c),
            owner: asn,
            home: Oblast::Kherson,
            base_responders: 120,
            geo_population: 220,
            response_prob: 0.9,
            diurnal: false,
            power_backup: 1.0,
            annual_decay: 1.0,
        })
        .collect();
    blocks.push(BlockSpec {
        block: BlockId::from_octets(10, 0, 8),
        owner: asn,
        home: Oblast::Kherson,
        base_responders: 2,
        geo_population: 4,
        response_prob: 0.6,
        diurnal: false,
        power_backup: 1.0,
        annual_decay: 1.0,
    });
    let config = WorldConfig {
        seed,
        scale: WorldScale::Tiny,
        rounds: ROUNDS,
        ases: vec![AsSpec {
            asn,
            name: "chaos-test".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: blocks.iter().map(|b| Prefix::from_block(b.block)).collect(),
            base_rtt_ns: 40_000_000,
            upstream: Asn(1),
        }],
        blocks,
    };
    World::new(config, Script::new(), vec![]).expect("valid config")
}

#[test]
fn dark_vantage_causes_no_false_outages_and_is_ledgered() {
    let go = || {
        run_cfg(
            world(11, vec![]),
            vantage_config(roster_with_dark_vantage()),
        )
    };
    let report = go();

    // The quorum routes around the dead path: no fabricated events.
    assert_eq!(
        report.total_as_outages(),
        0,
        "a dark vantage fabricated outages: {:?}",
        report.as_events
    );
    assert!(
        report.region_events_of(Oblast::Kherson).is_empty(),
        "the populated region must not false-fire"
    );

    // Graceful degradation: the headline round quality rides the two
    // surviving clean vantages, so the campaign never even degrades.
    assert_eq!(report.degraded_rounds(), 0);
    assert_eq!(report.unusable_rounds(), 0);

    // The ledger records the blackout exactly: Unusable precisely over the
    // dark window, zero responders collected while masked.
    let dark = report.vantage_ledger("frankfurt").expect("ledgered");
    assert_eq!(
        dark.unusable_rounds(),
        (VANTAGE_DARK.end - VANTAGE_DARK.start) as usize
    );
    for (r, q) in dark.quality.iter().enumerate() {
        let expect = if VANTAGE_DARK.contains(&(r as u32)) {
            RoundQuality::Unusable
        } else {
            RoundQuality::Ok
        };
        assert_eq!(*q, expect, "round {r}");
    }
    for (r, total) in dark.responsive_total.iter().enumerate() {
        assert_eq!(
            *total == 0,
            VANTAGE_DARK.contains(&(r as u32)),
            "round {r}: masked rounds collect nothing, live rounds something"
        );
    }
    assert!(
        dark.missing_rounds.is_empty(),
        "the campaign scanner itself never went offline"
    );

    // The surviving vantages sail through, and — the dark vantage being
    // masked rather than outvoted — nobody ever dissents.
    for name in ["kyiv", "warsaw"] {
        let ledger = report.vantage_ledger(name).expect("ledgered");
        assert_eq!(ledger.usable_rounds(), ROUNDS as usize, "{name}");
        assert_eq!(ledger.dissent_block_rounds, 0, "{name}");
    }
    assert_eq!(report.disagreement, DisagreementSummary::default());

    // Byte-identical determinism across two full runs.
    let again = go();
    assert_eq!(format!("{report:?}"), format!("{again:?}"));
}

#[test]
fn scripted_outage_survives_a_dark_vantage() {
    // A real 3-day BGP outage entirely inside the vantage blackout: the
    // two surviving vantages must still catch it.
    let outage_rounds = 360u32..396;
    let report = run_cfg(
        world(11, vec![scripted_outage(outage_rounds.clone())]),
        vantage_config(roster_with_dark_vantage()),
    );
    let events = report
        .as_events
        .get(&Asn(100))
        .expect("the outage must still be detected with one vantage dark");
    assert!(!events.is_empty());
    assert!(
        events
            .iter()
            .any(|e| e.start.0 < outage_rounds.end + 12 && e.end.0 + 12 > outage_rounds.start),
        "no detected event overlaps the scripted outage: {events:?}"
    );
    for e in events {
        assert!(
            e.end.0 >= outage_rounds.start.saturating_sub(12)
                && e.start.0 <= outage_rounds.end + 12,
            "event far from the scripted outage: {e:?}"
        );
    }
}

#[test]
fn two_of_three_quorum_surfaces_path_disagreement() {
    // One vantage behind steady 20% loss: on the thin block its path
    // sometimes delivers nothing while both clean paths still hear the
    // responders — a 2-of-3 reachable quorum with one dissenting vote.
    let roster = vec![
        VantageSpec::new("kyiv"),
        VantageSpec::new("warsaw"),
        VantageSpec {
            fault_plan: Some(FaultPlan::constant(FaultIntensity {
                reply_loss: 0.20,
                ..FaultIntensity::default()
            })),
            ..VantageSpec::new("lossy-path")
        },
    ];
    let go = || run_cfg(world_with_thin_block(11), vantage_config(roster.clone()));
    let report = go();

    // The quorum resolves every dispute toward the clean majority.
    assert_eq!(
        report.total_as_outages(),
        0,
        "path disagreement fabricated outages: {:?}",
        report.as_events
    );

    // The disagreement is real and it is counted: block-rounds reachable
    // from some vantages but not all, over a routed block.
    let d = report.disagreement;
    assert!(
        d.some_not_all_block_rounds > 0,
        "20% loss over 2 true responders must dissent sometimes: {d:?}"
    );
    assert!(d.rounds_with_disagreement > 0);
    assert!(u64::from(d.rounds_with_disagreement) <= d.some_not_all_block_rounds);
    // With two clean vantages in the majority the minority dark vote is
    // outvoted — reachability is never suppressed the other way round.
    assert_eq!(d.quorum_suppressed_block_rounds, 0);

    // Every dissent is the lossy path's: the per-vantage ledgers name the
    // culprit exactly.
    let lossy = report.vantage_ledger("lossy-path").expect("ledgered");
    assert_eq!(
        lossy.dissent_block_rounds, d.some_not_all_block_rounds,
        "each disputed block-round has exactly one dissenter"
    );
    assert_eq!(
        report.vantage_ledger("kyiv").unwrap().dissent_block_rounds,
        0
    );
    assert_eq!(
        report
            .vantage_ledger("warsaw")
            .unwrap()
            .dissent_block_rounds,
        0
    );

    // Best-of quality: two clean vantages keep the headline at Ok even
    // though the lossy path is degraded every round.
    assert_eq!(report.degraded_rounds(), 0);
    assert_eq!(lossy.degraded_rounds(), ROUNDS as usize);

    // Byte-identical determinism across two full runs.
    let again = go();
    assert_eq!(format!("{report:?}"), format!("{again:?}"));
}

// ---------------------------------------------------------------------------
// Passive-signal rows: when *every* vantage goes dark at once the active
// side is completely blind, and the darknet's background radiation is the
// only listener left. It alone must carry a scripted outage — with zero
// false events, onset within one predictor window of ground truth, and an
// exact per-round ledger.
// ---------------------------------------------------------------------------

/// Three vantages that all black out over [`VANTAGE_DARK`]: no usable
/// active measurement exists for the whole window.
fn roster_all_dark() -> Vec<VantageSpec> {
    ["kyiv", "warsaw", "frankfurt"]
        .into_iter()
        .map(|name| VantageSpec {
            fault_plan: Some(vantage_blackout_plan()),
            ..VantageSpec::new(name)
        })
        .collect()
}

/// A vantage config with the passive background-radiation signal enabled.
fn ibr_config(vantages: Vec<VantageSpec>) -> CampaignConfig {
    let mut cfg = vantage_config(vantages);
    cfg.ibr = Some(IbrConfig::default());
    cfg
}

#[test]
fn all_vantages_dark_passive_signal_alone_carries_the_outage() {
    // A 3-day BGP outage entirely inside the blackout of *all three*
    // vantages: no active signal can see it.
    let outage_rounds = 300u32..340;
    let go = || {
        run_cfg(
            world(11, vec![scripted_outage(outage_rounds.clone())]),
            ibr_config(roster_all_dark()),
        )
    };
    let report = go();

    // The active side really was blind: every blackout round is Unusable,
    // detectors frozen, and no active outage event exists anywhere.
    assert_eq!(
        report.unusable_rounds(),
        (VANTAGE_DARK.end - VANTAGE_DARK.start) as usize
    );
    assert_eq!(
        report.total_as_outages(),
        0,
        "active detection fired while every vantage was dark: {:?}",
        report.as_events
    );

    // The passive signal alone carries the outage: exactly one IBR event,
    // and it is the scripted one — zero false positives.
    assert_eq!(report.total_ibr_outages(), 1);
    let ledger = report.ibr_ledger(Asn(100)).expect("per-AS ibr ledger");
    let event = ledger.events[0];
    assert!(
        event.start.0 >= outage_rounds.start,
        "passive event opened before the outage: {event:?}"
    );
    assert!(
        event.start.0 - outage_rounds.start <= SeasonalPredictor::DEFAULT_WARMUP,
        "onset more than one predictor window late: {event:?}"
    );
    // With radiation dropping to zero instantly, onset and recovery are in
    // fact exact in this deterministic world.
    assert_eq!(event.start, Round(outage_rounds.start));
    assert_eq!(event.end, Round(outage_rounds.end));
    assert_eq!(event.min_ratio, 0.0);
    for r in 0..ROUNDS {
        assert_eq!(
            ledger.in_outage(Round(r)),
            outage_rounds.contains(&r),
            "round {r}"
        );
    }

    // Ledgered exactly: one volume and one status per campaign round, all
    // observed (the *vantages* were dark, the darknet was not), and the
    // radiation is silent precisely over the scripted outage.
    assert_eq!(ledger.volume.len(), ROUNDS as usize);
    assert_eq!(ledger.status.len(), ROUNDS as usize);
    assert_eq!(ledger.observed_rounds(), ROUNDS as usize);
    assert_eq!(ledger.dark_rounds(), 0);
    for (r, v) in ledger.volume.iter().enumerate() {
        assert_eq!(
            *v == 0,
            outage_rounds.contains(&(r as u32)),
            "round {r}: radiation must vanish exactly over the outage"
        );
    }

    // Byte-identical determinism across two full runs.
    let again = go();
    assert_eq!(format!("{report:?}"), format!("{again:?}"));
}

#[test]
fn dark_darknet_freezes_instead_of_fabricating() {
    // The passive path's own outage mode: the collector fails for five
    // days over a healthy world. The predictor must freeze — collector
    // silence is never read as a country-wide outage — and the ledger
    // records the gap as Dark, not as zero-volume Observed.
    const DARKNET_DARK: std::ops::Range<u32> = 250..310;
    let mut cfg = campaign_config(None);
    cfg.ibr = Some(IbrConfig::with_dark_windows(vec![IbrDarkWindow {
        start: DARKNET_DARK.start,
        end: DARKNET_DARK.end,
    }]));
    let go = || run_cfg(world(11, vec![]), cfg.clone());
    let report = go();

    assert_eq!(
        report.total_ibr_outages(),
        0,
        "collector silence was read as an outage: {:?}",
        report.ibr
    );
    assert_eq!(report.total_as_outages(), 0);
    let ledger = report.ibr_ledger(Asn(100)).expect("per-AS ibr ledger");
    assert_eq!(
        ledger.dark_rounds(),
        (DARKNET_DARK.end - DARKNET_DARK.start) as usize
    );
    assert_eq!(
        ledger.observed_rounds(),
        (ROUNDS - (DARKNET_DARK.end - DARKNET_DARK.start)) as usize
    );
    for r in 0..ROUNDS {
        let expect = if DARKNET_DARK.contains(&r) {
            IbrRoundStatus::Dark
        } else {
            IbrRoundStatus::Observed
        };
        assert_eq!(ledger.status[r as usize], expect, "round {r}");
        if DARKNET_DARK.contains(&r) {
            assert_eq!(ledger.volume[r as usize], 0, "round {r}");
        } else {
            assert!(ledger.volume[r as usize] > 0, "round {r}");
        }
    }

    let again = go();
    assert_eq!(format!("{report:?}"), format!("{again:?}"));
}

// ---------------------------------------------------------------------------
// Shard-supervision rows: a shard that panics or blows its deadline
// mid-campaign must cost exactly its own blocks for exactly the faulted
// rounds — the round is downgraded, never the campaign; detection on the
// surviving shards continues; and the ledger pins every attempt.
// ---------------------------------------------------------------------------

/// Rounds during which the small shard's task panics on every attempt.
const SHARD_PANIC: std::ops::Range<u32> = 200..230;
/// Rounds during which the small shard stalls past its deadline.
const SHARD_STALL: std::ops::Range<u32> = 400..430;
/// Rounds during which the first attempt panics but a retry succeeds.
const SHARD_RETRY: std::ops::Range<u32> = 100..110;

/// A quiet two-shard world: the AS-aligned partitioner cuts at 64 blocks,
/// so 64 blocks of AS 100 followed by 8 blocks of AS 200 yield exactly two
/// shards — faults scripted against slot 1 cost only AS 200's blocks.
fn world_two_shards(seed: u64, events: Vec<ScriptedEvent>) -> World {
    let mut blocks: Vec<BlockSpec> = (0..64u8)
        .map(|c| BlockSpec {
            block: BlockId::from_octets(10, 0, c),
            owner: Asn(100),
            home: Oblast::Kherson,
            base_responders: 120,
            geo_population: 220,
            response_prob: 0.9,
            diurnal: false,
            power_backup: 1.0,
            annual_decay: 1.0,
        })
        .collect();
    blocks.extend((0..8u8).map(|c| BlockSpec {
        block: BlockId::from_octets(10, 2, c),
        owner: Asn(200),
        home: Oblast::Kherson,
        base_responders: 120,
        geo_population: 220,
        response_prob: 0.9,
        diurnal: false,
        power_backup: 1.0,
        annual_decay: 1.0,
    }));
    let ases = vec![
        AsSpec {
            asn: Asn(100),
            name: "shard-main".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: blocks[..64]
                .iter()
                .map(|b| Prefix::from_block(b.block))
                .collect(),
            base_rtt_ns: 40_000_000,
            upstream: Asn(1),
        },
        AsSpec {
            asn: Asn(200),
            name: "shard-tail".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: blocks[64..]
                .iter()
                .map(|b| Prefix::from_block(b.block))
                .collect(),
            base_rtt_ns: 40_000_000,
            upstream: Asn(1),
        },
    ];
    let config = WorldConfig {
        seed,
        scale: WorldScale::Tiny,
        rounds: ROUNDS,
        ases,
        blocks,
    };
    let mut script = Script::new();
    for e in events {
        script.push(e);
    }
    World::new(config, script, vec![]).expect("valid config")
}

/// The shard chaos mix against slot 1: a retried panic, a retry-exhausting
/// panic, and a deadline overrun (the stall dwarfs the 1 s virtual budget).
fn shard_chaos_plan() -> ShardFaultPlan {
    ShardFaultPlan {
        windows: vec![
            ShardFaultWindow::scripted(
                "shard-retry",
                SHARD_RETRY,
                vec![1],
                1,
                ShardFaultKind::Panic,
            ),
            ShardFaultWindow::scripted(
                "shard-panic",
                SHARD_PANIC,
                vec![1],
                3,
                ShardFaultKind::Panic,
            ),
            ShardFaultWindow::scripted(
                "shard-stall",
                SHARD_STALL,
                vec![1],
                3,
                ShardFaultKind::Stall {
                    extra_ns: 2_000_000_000,
                },
            ),
        ],
    }
}

fn shard_config(plan: ShardFaultPlan) -> CampaignConfig {
    let mut cfg = campaign_config(None);
    cfg.shard_plan = Some(plan);
    cfg
}

#[test]
fn lost_shards_degrade_rounds_without_false_outages() {
    let go = || {
        run_cfg(
            world_two_shards(11, vec![]),
            shard_config(shard_chaos_plan()),
        )
    };
    let report = go();

    // Shard loss fabricates nothing: the lost blocks are *missing*, never
    // zero, so the quiet world stays event-free on both ASes.
    assert_eq!(
        report.total_as_outages(),
        0,
        "shard loss fabricated outages: {:?}",
        report.as_events
    );
    assert!(
        report.region_events_of(Oblast::Kherson).is_empty(),
        "the populated region must not false-fire"
    );

    // Graceful degradation, surgically scoped: exactly the rounds whose
    // shard was lost are Degraded — one live shard of two keeps the round
    // usable — and a retried-but-completed shard costs nothing at all.
    for (r, q) in report.round_quality.iter().enumerate() {
        let r = r as u32;
        let expect = if SHARD_PANIC.contains(&r) || SHARD_STALL.contains(&r) {
            RoundQuality::Degraded
        } else {
            RoundQuality::Ok
        };
        assert_eq!(*q, expect, "round {r}");
    }
    assert_eq!(report.unusable_rounds(), 0);

    // The supervision ledger pins every attempt exactly.
    let ledger = report.shard.as_ref().expect("supervised campaigns ledger");
    assert_eq!(ledger.shards, 2);
    assert_eq!(ledger.rounds.len(), ROUNDS as usize);
    assert_eq!(ledger.total_lost(), 60, "30 panic-lost + 30 stall-lost");
    assert_eq!(ledger.total_retried(), 10, "the retry window completes");
    assert_eq!(
        ledger.total_panicked(),
        100,
        "30 rounds x 3 + 10 rounds x 1"
    );
    assert_eq!(
        ledger.total_timed_out(),
        90,
        "30 rounds x 3 abandoned tries"
    );
    assert_eq!(ledger.rounds_with_loss(), 60);
    assert_eq!(ledger.wall_ns.len(), 2);
    for (r, s) in ledger.rounds.iter().enumerate() {
        let r = r as u32;
        let expect = if SHARD_RETRY.contains(&r) {
            // Slot 0 clean, slot 1 panicked once then completed on retry.
            ShardRoundSummary {
                round: Round(r),
                completed: 1,
                retried: 1,
                panicked: 1,
                timed_out: 0,
                lost: 0,
            }
        } else if SHARD_PANIC.contains(&r) {
            // Slot 1 panicked on all three attempts: lost.
            ShardRoundSummary {
                round: Round(r),
                completed: 1,
                retried: 0,
                panicked: 3,
                timed_out: 0,
                lost: 1,
            }
        } else if SHARD_STALL.contains(&r) {
            // Slot 1 billed past the deadline on all three attempts: lost.
            ShardRoundSummary {
                round: Round(r),
                completed: 1,
                retried: 0,
                panicked: 0,
                timed_out: 3,
                lost: 1,
            }
        } else {
            ShardRoundSummary {
                round: Round(r),
                completed: 2,
                retried: 0,
                panicked: 0,
                timed_out: 0,
                lost: 0,
            }
        };
        assert_eq!(*s, expect, "round {r}");
    }

    // Byte-identical determinism across two full runs.
    let again = go();
    assert_eq!(format!("{report:?}"), format!("{again:?}"));
}

#[test]
fn scripted_outage_survives_shard_loss() {
    // A real BGP outage on the *surviving* shard's AS, spanning the whole
    // panic-loss window: losing shard 1 must not blind detection on
    // shard 0's blocks.
    let outage_rounds = 190u32..250;
    let report = run_cfg(
        world_two_shards(11, vec![scripted_outage(outage_rounds.clone())]),
        shard_config(shard_chaos_plan()),
    );
    let events = report
        .as_events
        .get(&Asn(100))
        .expect("the outage must still be detected while shard 1 is lost");
    assert!(!events.is_empty());
    assert!(
        events
            .iter()
            .any(|e| e.start.0 < outage_rounds.end + 12 && e.end.0 + 12 > outage_rounds.start),
        "no detected event overlaps the scripted outage: {events:?}"
    );
    for e in events {
        assert!(
            e.end.0 >= outage_rounds.start.saturating_sub(12)
                && e.start.0 <= outage_rounds.end + 12,
            "event far from the scripted outage: {e:?}"
        );
    }
    // The lost shard's AS stays quiet: its blocks were missing, not dark.
    assert!(
        report
            .as_events
            .get(&Asn(200))
            .is_none_or(|events| events.is_empty()),
        "shard loss fabricated an outage on the lost shard's AS"
    );
}

#[test]
fn shard_faulted_resume_is_byte_identical() {
    // Crash-resume lands mid-panic-window, mid-snapshot-interval: replay
    // must consume the journaled shard outcomes — never re-run the pool —
    // and reconstruct the ledger, the lost-block masks and the downgraded
    // quality exactly.
    let dir = std::env::temp_dir().join(format!("fbs-shard-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::new(
        world_two_shards(11, vec![scripted_outage(190..250)]),
        shard_config(shard_chaos_plan()),
    )
    .expect("valid config");
    let plain = campaign.run().expect("plain run");
    {
        let mut runner = campaign
            .runner_checkpointed(
                &dir,
                CheckpointPolicy {
                    snapshot_every: 96,
                    fsync: false,
                },
            )
            .expect("runner");
        for _ in 0..215 {
            runner.step_round().expect("step");
        }
        // Dropped mid-degraded-round territory: the crash point.
    }
    let resumed = campaign.resume(&dir).expect("resume");
    assert_eq!(format!("{plain:?}"), format!("{resumed:?}"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_faults_never_touch_the_passive_signal() {
    // The IBR RNG domain is disjoint from the fault domains, and the
    // darknet does not ride the scan path: the chaos-matrix fault mix must
    // leave the passive ledgers bit-identical to a fault-free run.
    let mut with_faults = campaign_config(Some(chaos_plan()));
    with_faults.ibr = Some(IbrConfig::default());
    let mut quiet = campaign_config(None);
    quiet.ibr = Some(IbrConfig::default());
    let a = run_cfg(world(11, vec![]), with_faults);
    let b = run_cfg(world(11, vec![]), quiet);
    assert_eq!(format!("{:?}", a.ibr), format!("{:?}", b.ibr));
    assert_eq!(a.total_ibr_outages(), 0);
}
