//! Byte-identity of everything the pipeline persists.
//!
//! The `unordered-persist` lint rule exists because hash-ordered
//! iteration can leak process-random ordering into serialized state.
//! These tests pin the property the rule protects, end to end: two
//! independent runs of the same campaign must produce **byte-identical**
//! checkpoint files (snapshot + journal) and byte-identical dataset
//! exports — not merely equal in-memory reports.

use std::sync::atomic::{AtomicU64, Ordering};
use ukraine_fbs::core::checkpoint::{JOURNAL_FILE, SNAPSHOT_FILE};
use ukraine_fbs::core::dataset::{availability_csv, availability_rows, outage_csv, outage_rows};
use ukraine_fbs::core::CheckpointPolicy;
use ukraine_fbs::netsim::{
    AsProfile, AsSpec, BlockSpec, IbrConfig, Script, ShardFaultPlan, VantageSpec, World,
    WorldConfig, WorldScale,
};
use ukraine_fbs::prelude::*;
use ukraine_fbs::types::{Oblast, Prefix};

const ROUNDS: u32 = 240; // 20 days at 12 rounds/day

fn world(seed: u64) -> World {
    let asn = Asn(200);
    let blocks: Vec<BlockSpec> = (0..6u8)
        .map(|c| BlockSpec {
            block: BlockId::from_octets(10, 1, c),
            owner: asn,
            home: Oblast::Kharkiv,
            base_responders: 100,
            geo_population: 200,
            response_prob: 0.9,
            diurnal: true,
            power_backup: 1.0,
            annual_decay: 1.0,
        })
        .collect();
    let config = WorldConfig {
        seed,
        scale: WorldScale::Tiny,
        rounds: ROUNDS,
        ases: vec![AsSpec {
            asn,
            name: "byte-identity".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kharkiv),
            prefixes: blocks.iter().map(|b| Prefix::from_block(b.block)).collect(),
            base_rtt_ns: 40_000_000,
            upstream: Asn(1),
        }],
        blocks,
    };
    World::new(config, Script::new(), vec![]).expect("valid config")
}

fn campaign() -> Campaign {
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    Campaign::new(world(23), cfg).expect("valid config")
}

fn campaign_with_threads(threads: usize) -> Campaign {
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.threads = threads;
    Campaign::new(world(23), cfg).expect("valid config")
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fbs-bytes-{tag}-{}-{n}", std::process::id()))
}

fn policy() -> CheckpointPolicy {
    CheckpointPolicy {
        snapshot_every: 84,
        fsync: false,
    }
}

#[test]
fn two_runs_write_identical_checkpoint_bytes() {
    let campaign = campaign();
    let (dir_a, dir_b) = (fresh_dir("a"), fresh_dir("b"));
    let report_a = campaign.run_checkpointed(&dir_a, policy()).expect("run a");
    let report_b = campaign.run_checkpointed(&dir_b, policy()).expect("run b");
    assert_eq!(format!("{report_a:?}"), format!("{report_b:?}"));

    for file in [SNAPSHOT_FILE, JOURNAL_FILE] {
        let a = std::fs::read(dir_a.join(file)).expect(file);
        let b = std::fs::read(dir_b.join(file)).expect(file);
        assert_eq!(a, b, "{file} differs between two identical runs");
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn thread_count_never_reaches_output_bytes() {
    // The sharded executor's worker count is pure mechanism: every block's
    // observation is derived from coordinate-addressed RNG, and the merge
    // is a roster-ordered reduce, so the same campaign at 1, 2 and 8
    // threads must write byte-identical checkpoints and datasets. One
    // thread runs the shards inline on the calling thread — the pre-shard
    // serial pipeline — so this also pins parallel == serial.
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let dir = fresh_dir(&format!("t{threads}"));
        let report = campaign_with_threads(threads)
            .run_checkpointed(&dir, policy())
            .expect("checkpointed run");
        let snapshot = std::fs::read(dir.join(SNAPSHOT_FILE)).expect(SNAPSHOT_FILE);
        let journal = std::fs::read(dir.join(JOURNAL_FILE)).expect(JOURNAL_FILE);
        let _ = std::fs::remove_dir_all(&dir);
        let avail = availability_csv(&availability_rows(&report)).into_bytes();
        let out = outage_csv(&outage_rows(&report)).into_bytes();
        runs.push((
            threads,
            format!("{report:?}"),
            snapshot,
            journal,
            avail,
            out,
        ));
    }
    let (_, base_report, base_snap, base_journal, base_avail, base_out) = &runs[0];
    for (threads, report, snap, journal, avail, out) in &runs[1..] {
        assert_eq!(report, base_report, "report differs at threads={threads}");
        assert_eq!(snap, base_snap, "snapshot differs at threads={threads}");
        assert_eq!(
            journal, base_journal,
            "journal differs at threads={threads}"
        );
        assert_eq!(
            avail, base_avail,
            "availability csv differs at threads={threads}"
        );
        assert_eq!(out, base_out, "outage csv differs at threads={threads}");
    }
}

#[test]
fn thread_count_never_reaches_fanned_out_surfaces() {
    // Same property with every measurement surface live at once: a vantage
    // roster (per-vantage fan-out shards) and the passive IBR signal both
    // ride the shard executor, and none of their bytes may depend on how
    // many workers carried the round.
    let run = |threads: usize| {
        let mut cfg = CampaignConfig::without_baseline();
        cfg.tracked.clear();
        cfg.rtt_tracked.clear();
        cfg.vantages = vec![VantageSpec::new("solo")];
        cfg.ibr = Some(IbrConfig::default());
        cfg.threads = threads;
        let dir = fresh_dir(&format!("ft{threads}"));
        let report = Campaign::new(world(23), cfg)
            .expect("valid config")
            .run_checkpointed(&dir, policy())
            .expect("checkpointed run");
        let snapshot = std::fs::read(dir.join(SNAPSHOT_FILE)).expect(SNAPSHOT_FILE);
        let journal = std::fs::read(dir.join(JOURNAL_FILE)).expect(JOURNAL_FILE);
        let _ = std::fs::remove_dir_all(&dir);
        (format!("{report:?}"), snapshot, journal)
    };
    let serial = run(1);
    for threads in [2usize, 8] {
        assert_eq!(run(threads), serial, "bytes differ at threads={threads}");
    }
}

#[test]
fn two_reports_render_identical_dataset_bytes() {
    let campaign = campaign();
    let report_a = campaign.run().expect("run a");
    let report_b = campaign.run().expect("run b");

    // CSV rendering is pure string assembly: any divergence here means
    // iteration order leaked into an emission boundary.
    let avail_a = availability_csv(&availability_rows(&report_a));
    let avail_b = availability_csv(&availability_rows(&report_b));
    assert_eq!(avail_a.into_bytes(), avail_b.into_bytes());
    let out_a = outage_csv(&outage_rows(&report_a));
    let out_b = outage_csv(&outage_rows(&report_b));
    assert_eq!(out_a.into_bytes(), out_b.into_bytes());
}

#[test]
fn single_vantage_roster_matches_the_legacy_pipeline() {
    // N=1 identity, end to end: a roster of one clean vantage with zero
    // path latency must reproduce the empty-roster (legacy) pipeline's
    // detection output and dataset bytes exactly — the quorum over one
    // vote degenerates to the single-vantage rule. Only the new ledger
    // sections may differ.
    let legacy = campaign().run().expect("legacy run");
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.vantages = vec![VantageSpec::new("solo")];
    let rostered = Campaign::new(world(23), cfg)
        .expect("valid config")
        .run()
        .expect("rostered run");

    assert_eq!(
        format!("{:?}", rostered.as_events),
        format!("{:?}", legacy.as_events)
    );
    assert_eq!(
        format!("{:?}", rostered.region_events),
        format!("{:?}", legacy.region_events)
    );
    assert_eq!(rostered.round_quality, legacy.round_quality);
    assert_eq!(
        availability_csv(&availability_rows(&rostered)).into_bytes(),
        availability_csv(&availability_rows(&legacy)).into_bytes()
    );
    assert_eq!(
        outage_csv(&outage_rows(&rostered)).into_bytes(),
        outage_csv(&outage_rows(&legacy)).into_bytes()
    );

    // The ledger is the only addition.
    assert!(legacy.vantages.is_empty());
    assert_eq!(rostered.vantages.len(), 1);
    assert_eq!(rostered.vantages[0].name, "solo");
    assert_eq!(rostered.vantages[0].usable_rounds(), ROUNDS as usize);
    assert_eq!(rostered.vantages[0].dissent_block_rounds, 0);

    // The disagreement CSV is emitted only for rostered reports, and its
    // bytes are stable across exports.
    let (dir_a, dir_b) = (fresh_dir("va"), fresh_dir("vb"));
    let exported = ukraine_fbs::core::dataset::export_all(&rostered, &dir_a).is_ok()
        && ukraine_fbs::core::dataset::export_all(&rostered, &dir_b).is_ok();
    if exported {
        let file = "vantage_disagreement.csv";
        let a = std::fs::read(dir_a.join(file)).expect(file);
        let b = std::fs::read(dir_b.join(file)).expect(file);
        assert_eq!(a, b, "{file} differs between two exports");
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn checkpoint_schema_version_tracks_the_roster() {
    // Empty roster → the legacy version-2 snapshot layout, bit-for-bit
    // compatible with pre-vantage checkpoints; any roster → version 3.
    let dir = fresh_dir("ver");
    campaign()
        .run_checkpointed(&dir, policy())
        .expect("legacy run");
    let (version, _) = ukraine_fbs::journal::read_snapshot(dir.join(SNAPSHOT_FILE))
        .expect("readable snapshot")
        .expect("snapshot written");
    assert_eq!(version, 2, "legacy campaigns must stay on version 2");
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.vantages = vec![VantageSpec::new("solo")];
    let dir = fresh_dir("ver3");
    Campaign::new(world(23), cfg)
        .expect("valid config")
        .run_checkpointed(&dir, policy())
        .expect("rostered run");
    let (version, _) = ukraine_fbs::journal::read_snapshot(dir.join(SNAPSHOT_FILE))
        .expect("readable snapshot")
        .expect("snapshot written");
    assert_eq!(version, 3, "rostered campaigns checkpoint as version 3");
    let _ = std::fs::remove_dir_all(&dir);

    // The passive signal — with or without a roster — lifts the layout to
    // version 4.
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.ibr = Some(IbrConfig::default());
    let dir = fresh_dir("ver4");
    Campaign::new(world(23), cfg)
        .expect("valid config")
        .run_checkpointed(&dir, policy())
        .expect("passive run");
    let (version, _) = ukraine_fbs::journal::read_snapshot(dir.join(SNAPSHOT_FILE))
        .expect("readable snapshot")
        .expect("snapshot written");
    assert_eq!(
        version, 4,
        "passive-signal campaigns checkpoint as version 4"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Supervised shard execution — any shard fault plan, even an empty
    // one — journals per-shard outcomes and lifts the layout to version 5.
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.shard_plan = Some(ShardFaultPlan::none());
    let dir = fresh_dir("ver5");
    Campaign::new(world(23), cfg)
        .expect("valid config")
        .run_checkpointed(&dir, policy())
        .expect("supervised run");
    let (version, _) = ukraine_fbs::journal::read_snapshot(dir.join(SNAPSHOT_FILE))
        .expect("readable snapshot")
        .expect("snapshot written");
    assert_eq!(version, 5, "supervised campaigns checkpoint as version 5");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn passive_signal_rides_along_without_touching_active_bytes() {
    // Enabling IBR must be purely additive: the active detection output,
    // the quality ledger and the existing dataset bytes are identical to
    // an IBR-disabled run — the passive ledger is the only new section.
    // (The IBR RNG domain is disjoint from every active consumer; this is
    // the campaign-level pin of that property.)
    let legacy = campaign().run().expect("legacy run");
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.ibr = Some(IbrConfig::default());
    let passive = Campaign::new(world(23), cfg)
        .expect("valid config")
        .run()
        .expect("passive run");

    assert_eq!(
        format!("{:?}", passive.as_events),
        format!("{:?}", legacy.as_events)
    );
    assert_eq!(
        format!("{:?}", passive.region_events),
        format!("{:?}", legacy.region_events)
    );
    assert_eq!(passive.round_quality, legacy.round_quality);
    assert_eq!(
        availability_csv(&availability_rows(&passive)).into_bytes(),
        availability_csv(&availability_rows(&legacy)).into_bytes()
    );
    assert_eq!(
        outage_csv(&outage_rows(&passive)).into_bytes(),
        outage_csv(&outage_rows(&legacy)).into_bytes()
    );

    // The passive ledger is the only addition, and the quiet diurnal world
    // produces no passive events.
    assert!(legacy.ibr.is_empty());
    assert_eq!(passive.ibr.len(), 1);
    assert_eq!(passive.ibr[0].asn, Asn(200));
    assert_eq!(passive.ibr[0].volume.len(), ROUNDS as usize);
    assert_eq!(passive.total_ibr_outages(), 0);

    // The ibr_signal.csv export exists exactly when the signal is on, and
    // its bytes are stable across exports.
    let (dir_a, dir_b) = (fresh_dir("ia"), fresh_dir("ib"));
    let exported = ukraine_fbs::core::dataset::export_all(&passive, &dir_a).is_ok()
        && ukraine_fbs::core::dataset::export_all(&passive, &dir_b).is_ok();
    if exported {
        let file = "ibr_signal.csv";
        let a = std::fs::read(dir_a.join(file)).expect(file);
        let b = std::fs::read(dir_b.join(file)).expect(file);
        assert_eq!(a, b, "{file} differs between two exports");
    }
    let dir_l = fresh_dir("il");
    if ukraine_fbs::core::dataset::export_all(&legacy, &dir_l).is_ok() {
        assert!(
            !dir_l.join("ibr_signal.csv").exists(),
            "an IBR-disabled run must not emit the passive dataset"
        );
    }
    for d in [dir_a, dir_b, dir_l] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn two_exports_write_identical_files() {
    let campaign = campaign();
    let report = campaign.run().expect("run");
    let (dir_a, dir_b) = (fresh_dir("xa"), fresh_dir("xb"));
    // Offline stub builds cannot serialize the JSON halves; when export
    // succeeds (any real build), every emitted file must be byte-stable.
    let exported = ukraine_fbs::core::dataset::export_all(&report, &dir_a).is_ok()
        && ukraine_fbs::core::dataset::export_all(&report, &dir_b).is_ok();
    if exported {
        for file in [
            "block_availability.csv",
            "block_availability.json",
            "outages.csv",
            "outages.json",
        ] {
            let a = std::fs::read(dir_a.join(file)).expect(file);
            let b = std::fs::read(dir_b.join(file)).expect(file);
            assert_eq!(a, b, "{file} differs between two exports");
        }
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
