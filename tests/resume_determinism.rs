//! Crash/resume determinism of checkpointed campaigns.
//!
//! The contract under test, from the crash-safety work: a campaign killed
//! at *any* round boundary and resumed from its checkpoint directory must
//! produce a report **bit-identical** to an uninterrupted run — including
//! under the chaos-matrix fault plan, whose injected loss exercises the
//! fault-RNG recomputation path during journal replay. Damage to the
//! checkpoint files must degrade recovery, never correctness: a corrupt
//! journal tail is truncated and the lost rounds rescanned, a corrupt
//! snapshot is quarantined and the journal replayed from round zero.

use std::sync::atomic::{AtomicU64, Ordering};
use ukraine_fbs::core::checkpoint::{JOURNAL_FILE, SNAPSHOT_FILE};
use ukraine_fbs::core::{CheckpointPolicy, DisagreementSummary};
use ukraine_fbs::netsim::{
    AsProfile, AsSpec, BlockSpec, EventKind, EventTarget, FaultIntensity, FaultPlan, FaultWindow,
    IbrConfig, IbrDarkWindow, Script, ScriptedEvent, VantageSpec, World, WorldConfig, WorldScale,
};
use ukraine_fbs::prelude::*;
use ukraine_fbs::types::{Oblast, Prefix};

const ROUNDS: u32 = 600; // 50 days at 12 rounds/day

/// The quiet one-AS world of the chaos matrix: the only sources of events
/// are scripted outages and injected faults.
fn world(seed: u64, events: Vec<ScriptedEvent>) -> World {
    let asn = Asn(100);
    let blocks: Vec<BlockSpec> = (0..8u8)
        .map(|c| BlockSpec {
            block: BlockId::from_octets(10, 0, c),
            owner: asn,
            home: Oblast::Kherson,
            base_responders: 120,
            geo_population: 220,
            response_prob: 0.9,
            diurnal: false,
            power_backup: 1.0,
            annual_decay: 1.0,
        })
        .collect();
    let config = WorldConfig {
        seed,
        scale: WorldScale::Tiny,
        rounds: ROUNDS,
        ases: vec![AsSpec {
            asn,
            name: "resume-test".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: blocks.iter().map(|b| Prefix::from_block(b.block)).collect(),
            base_rtt_ns: 40_000_000,
            upstream: Asn(1),
        }],
        blocks,
    };
    let mut script = Script::new();
    for e in events {
        script.push(e);
    }
    World::new(config, script, vec![]).expect("valid config")
}

/// The chaos-matrix fault mix: 20% reply loss plus duplication and
/// reordering over rounds 100..500.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        baseline: FaultIntensity::default(),
        windows: vec![FaultWindow::over_rounds(
            "chaos-matrix",
            100..500,
            FaultIntensity {
                reply_loss: 0.20,
                duplicate: 0.15,
                reorder: 0.20,
                reorder_jitter_ns: 5_000_000,
                ..FaultIntensity::default()
            },
        )],
    }
}

fn chaos_campaign() -> Campaign {
    let outage = ScriptedEvent {
        name: "scripted-outage".into(),
        target: EventTarget::As(Asn(100)),
        kind: EventKind::BgpOutage,
        start: Round(360).start(),
        end: Some(Round(396).start()),
    };
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.fault_plan = Some(chaos_plan());
    Campaign::new(world(11, vec![outage]), cfg).expect("valid config")
}

/// The chaos campaign scanned from three vantage points: one clean, one
/// behind the chaos-matrix fault mix with extra path latency, one blacked
/// out entirely mid-campaign. Exercises the version-3 checkpoint layout,
/// per-vantage fault-RNG recomputation on replay, and the quorum-fusion
/// recompute in `apply_round`.
fn multi_vantage_campaign() -> Campaign {
    let outage = ScriptedEvent {
        name: "scripted-outage".into(),
        target: EventTarget::As(Asn(100)),
        kind: EventKind::BgpOutage,
        start: Round(360).start(),
        end: Some(Round(396).start()),
    };
    let blackout = FaultPlan {
        baseline: FaultIntensity::default(),
        windows: vec![FaultWindow::over_rounds(
            "vantage-dark",
            200..440,
            FaultIntensity {
                reply_loss: 1.0,
                ..FaultIntensity::default()
            },
        )],
    };
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.vantages = vec![
        VantageSpec::new("kyiv"),
        VantageSpec {
            path_rtt_ns: 12_000_000,
            fault_plan: Some(chaos_plan()),
            ..VantageSpec::new("warsaw")
        },
        VantageSpec {
            fault_plan: Some(blackout),
            ..VantageSpec::new("frankfurt")
        },
    ];
    Campaign::new(world(11, vec![outage]), cfg).expect("valid config")
}

/// The multi-vantage campaign with the passive background-radiation
/// signal riding along — the version-4 checkpoint layout. A darknet-dark
/// window sits well before the scripted outage so journal replay covers
/// dark records, frozen-predictor state and an open passive outage.
fn ibr_campaign() -> Campaign {
    let outage = ScriptedEvent {
        name: "scripted-outage".into(),
        target: EventTarget::As(Asn(100)),
        kind: EventKind::BgpOutage,
        start: Round(360).start(),
        end: Some(Round(396).start()),
    };
    let mut cfg = CampaignConfig::without_baseline();
    cfg.tracked.clear();
    cfg.rtt_tracked.clear();
    cfg.vantages = vec![
        VantageSpec::new("kyiv"),
        VantageSpec {
            path_rtt_ns: 12_000_000,
            fault_plan: Some(chaos_plan()),
            ..VantageSpec::new("warsaw")
        },
    ];
    cfg.ibr = Some(IbrConfig::with_dark_windows(vec![IbrDarkWindow {
        start: 150,
        end: 186,
    }]));
    Campaign::new(world(11, vec![outage]), cfg).expect("valid config")
}

/// A unique scratch checkpoint directory per call (tests run in parallel).
fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fbs-resume-{tag}-{}-{n}", std::process::id()))
}

/// Snapshot weekly, skip per-round fsync: the tests simulate the kill by
/// abandoning the runner, so durability-vs-throughput is not under test.
fn policy() -> CheckpointPolicy {
    CheckpointPolicy {
        snapshot_every: 84,
        fsync: false,
    }
}

/// Runs a checkpointed campaign for exactly `kill_at` rounds, then drops
/// the runner without finishing — the crash.
fn run_and_kill(campaign: &Campaign, dir: &std::path::Path, kill_at: u32) {
    let mut runner = campaign
        .runner_checkpointed(dir, policy())
        .expect("checkpoint dir");
    for _ in 0..kill_at {
        assert!(runner.step_round().expect("step"), "killed past the end");
    }
    assert_eq!(runner.completed_rounds(), kill_at);
}

/// Flips one bit at `offset` bytes from the end of `path`.
fn flip_bit_near_end(path: &std::path::Path, offset_from_end: u64) {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .expect("open for corruption");
    let len = f.metadata().unwrap().len();
    let pos = len.checked_sub(offset_from_end).expect("file long enough");
    f.seek(SeekFrom::Start(pos)).unwrap();
    let mut byte = [0u8];
    f.read_exact(&mut byte).unwrap();
    byte[0] ^= 0x40;
    f.seek(SeekFrom::Start(pos)).unwrap();
    f.write_all(&byte).unwrap();
}

#[test]
fn resume_determinism() {
    let campaign = chaos_campaign();
    let baseline = format!("{:?}", campaign.run().expect("uninterrupted run"));

    // Kill before the first snapshot (journal-only resume), mid-campaign
    // (snapshot at 168 + 82 rounds of replay), and one round short of the
    // end (everything replayed or restored, a single live round left).
    for kill_at in [47u32, 250, 599] {
        let dir = fresh_dir("kill");
        run_and_kill(&campaign, &dir, kill_at);

        let (resumed, diag) = campaign
            .resume_with(&dir, policy())
            .expect("resume after kill");
        assert_eq!(
            format!("{resumed:?}"),
            baseline,
            "resumed report diverges after kill at round {kill_at}"
        );

        // The journal was intact, so recovery was clean and replay covered
        // exactly the rounds past the last snapshot.
        assert!(diag.journal.was_clean(), "kill at {kill_at}: {diag:?}");
        assert_eq!(diag.journal.records, kill_at as u64);
        let snapshot_rounds = kill_at - kill_at % 84;
        assert_eq!(diag.snapshot_loaded, snapshot_rounds > 0);
        assert_eq!(diag.replayed_rounds, kill_at - snapshot_rounds);
        assert_eq!(diag.healed_rounds, 0);
        assert!(diag.snapshot_quarantined.is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_of_a_finished_campaign_just_reassembles_the_report() {
    let campaign = chaos_campaign();
    let dir = fresh_dir("finished");
    let direct = campaign
        .run_checkpointed(&dir, policy())
        .expect("checkpointed run");
    let (resumed, diag) = campaign.resume_with(&dir, policy()).expect("resume");
    assert_eq!(format!("{resumed:?}"), format!("{direct:?}"));
    assert_eq!(diag.journal.records, ROUNDS as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_tail_is_truncated_and_rescanned() {
    let campaign = chaos_campaign();
    let baseline = format!("{:?}", campaign.run().expect("uninterrupted run"));

    let dir = fresh_dir("tail");
    run_and_kill(&campaign, &dir, 300);
    // Damage the last journal record (a torn or bit-rotted tail). The last
    // snapshot is at round 252, so the valid prefix still covers it.
    flip_bit_near_end(&dir.join(JOURNAL_FILE), 3);

    let (resumed, diag) = campaign
        .resume_with(&dir, policy())
        .expect("resume over corrupt tail");
    assert_eq!(
        format!("{resumed:?}"),
        baseline,
        "corrupt journal tail changed the report"
    );
    assert!(!diag.journal.was_clean(), "{diag:?}");
    assert!(diag.journal.dropped_bytes > 0);
    assert_eq!(diag.journal.records, 299, "exactly the damaged record lost");
    assert!(diag.snapshot_loaded);
    assert_eq!(diag.replayed_rounds, 299 - 252);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_quarantined_and_journal_replays_from_zero() {
    let campaign = chaos_campaign();
    let baseline = format!("{:?}", campaign.run().expect("uninterrupted run"));

    let dir = fresh_dir("snap");
    run_and_kill(&campaign, &dir, 300);
    // Damage the snapshot payload: its CRC check must fail on open.
    flip_bit_near_end(&dir.join(SNAPSHOT_FILE), 5);

    let (resumed, diag) = campaign
        .resume_with(&dir, policy())
        .expect("resume over corrupt snapshot");
    assert_eq!(
        format!("{resumed:?}"),
        baseline,
        "corrupt snapshot changed the report"
    );
    // The snapshot was moved aside, not deleted, and the full journal
    // rebuilt the state from round zero.
    let quarantined = diag
        .snapshot_quarantined
        .as_ref()
        .expect("snapshot quarantined");
    assert!(quarantined.exists(), "quarantine file kept for inspection");
    assert!(!diag.snapshot_loaded);
    assert!(diag.journal.was_clean());
    assert_eq!(diag.replayed_rounds, 300, "journal replayed from round 0");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_vantage_resume_is_byte_identical() {
    let campaign = multi_vantage_campaign();
    let baseline = campaign.run().expect("uninterrupted run");
    assert_eq!(baseline.vantages.len(), 3, "the roster must be ledgered");
    let baseline = format!("{baseline:?}");

    // Kill points chosen as in `resume_determinism`: journal-only resume,
    // snapshot + replay (inside the frankfurt blackout, so masked vantage
    // records replay too), and one round short of the end.
    for kill_at in [47u32, 250, 599] {
        let dir = fresh_dir("vantage");
        run_and_kill(&campaign, &dir, kill_at);

        let (resumed, diag) = campaign
            .resume_with(&dir, policy())
            .expect("resume after kill");
        assert_eq!(
            format!("{resumed:?}"),
            baseline,
            "multi-vantage resumed report diverges after kill at round {kill_at}"
        );
        assert!(diag.journal.was_clean(), "kill at {kill_at}: {diag:?}");
        assert_eq!(diag.journal.records, kill_at as u64);
        assert_eq!(diag.healed_rounds, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn multi_vantage_checkpoints_are_version_3_and_byte_stable() {
    // Two independent checkpointed runs of the 3-vantage campaign write
    // byte-identical snapshot + journal files, and the snapshot header
    // carries the multi-vantage schema version.
    let campaign = multi_vantage_campaign();
    let (dir_a, dir_b) = (fresh_dir("v3a"), fresh_dir("v3b"));
    let report_a = campaign.run_checkpointed(&dir_a, policy()).expect("run a");
    let report_b = campaign.run_checkpointed(&dir_b, policy()).expect("run b");
    assert_eq!(format!("{report_a:?}"), format!("{report_b:?}"));

    for file in [SNAPSHOT_FILE, JOURNAL_FILE] {
        let a = std::fs::read(dir_a.join(file)).expect(file);
        let b = std::fs::read(dir_b.join(file)).expect(file);
        assert_eq!(a, b, "{file} differs between two identical runs");
    }
    let (version, _) = ukraine_fbs::journal::read_snapshot(dir_a.join(SNAPSHOT_FILE))
        .expect("readable snapshot")
        .expect("snapshot written");
    assert_eq!(version, 3, "a rostered campaign checkpoints as version 3");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn multi_vantage_corrupt_journal_tail_is_truncated_and_rescanned() {
    // The crash-recovery ladder holds for version-3 records too: a damaged
    // tail record is dropped and the round re-measured per vantage.
    let campaign = multi_vantage_campaign();
    let baseline = format!("{:?}", campaign.run().expect("uninterrupted run"));

    let dir = fresh_dir("vtail");
    run_and_kill(&campaign, &dir, 300);
    flip_bit_near_end(&dir.join(JOURNAL_FILE), 3);

    let (resumed, diag) = campaign
        .resume_with(&dir, policy())
        .expect("resume over corrupt tail");
    assert_eq!(
        format!("{resumed:?}"),
        baseline,
        "corrupt v3 journal tail changed the report"
    );
    assert!(!diag.journal.was_clean(), "{diag:?}");
    assert_eq!(diag.journal.records, 299, "exactly the damaged record lost");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_v2_checkpoint_resumes_without_a_roster() {
    // An empty-roster campaign still writes and resumes the legacy
    // version-2 layout: old checkpoint directories keep working, and the
    // resumed report carries no vantage ledgers and no disagreement.
    let campaign = chaos_campaign();
    let baseline = format!("{:?}", campaign.run().expect("uninterrupted run"));

    let dir = fresh_dir("v2");
    run_and_kill(&campaign, &dir, 250);
    let (version, _) = ukraine_fbs::journal::read_snapshot(dir.join(SNAPSHOT_FILE))
        .expect("readable snapshot")
        .expect("snapshot written");
    assert_eq!(version, 2, "no roster, legacy schema version");

    let (resumed, diag) = campaign.resume_with(&dir, policy()).expect("v2 resume");
    assert_eq!(format!("{resumed:?}"), baseline);
    assert!(diag.journal.was_clean());
    assert!(resumed.vantages.is_empty(), "no roster, no ledgers");
    assert_eq!(resumed.disagreement, DisagreementSummary::default());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_behind_snapshot_is_healed_by_rescanning() {
    let campaign = chaos_campaign();
    let baseline = format!("{:?}", campaign.run().expect("uninterrupted run"));

    let dir = fresh_dir("heal");
    run_and_kill(&campaign, &dir, 252); // snapshot exactly at the kill point
                                        // Truncate the journal well behind the snapshot — as if the journal's
                                        // tail sectors were lost while the snapshot survived.
    let wal = dir.join(JOURNAL_FILE);
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len * 2 / 3).unwrap();
    drop(f);

    let (resumed, diag) = campaign
        .resume_with(&dir, policy())
        .expect("resume with lagging journal");
    assert_eq!(
        format!("{resumed:?}"),
        baseline,
        "healed journal changed the report"
    );
    assert!(diag.snapshot_loaded);
    assert_eq!(diag.replayed_rounds, 0, "the snapshot was ahead");
    assert!(diag.healed_rounds > 0, "missing records re-measured");
    assert_eq!(
        diag.journal.records + diag.healed_rounds as u64,
        252,
        "journal healed exactly up to the snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ibr_resume_is_byte_identical() {
    // The version-4 layout through the whole crash ladder: kill before the
    // first snapshot, mid-campaign (replay crosses the darknet-dark window,
    // so frozen predictors restore bit-for-bit), mid-outage (an *open*
    // passive event lives in the snapshot), and one round short of the end.
    let campaign = ibr_campaign();
    let baseline = campaign.run().expect("uninterrupted run");
    assert_eq!(baseline.ibr.len(), 1, "the passive ledger must be present");
    assert!(
        baseline.total_ibr_outages() >= 1,
        "the scripted outage must register passively"
    );
    let baseline = format!("{baseline:?}");

    for kill_at in [47u32, 250, 380, 599] {
        let dir = fresh_dir("ibr");
        run_and_kill(&campaign, &dir, kill_at);

        let (resumed, diag) = campaign
            .resume_with(&dir, policy())
            .expect("resume after kill");
        assert_eq!(
            format!("{resumed:?}"),
            baseline,
            "ibr resumed report diverges after kill at round {kill_at}"
        );
        assert!(diag.journal.was_clean(), "kill at {kill_at}: {diag:?}");
        assert_eq!(diag.journal.records, kill_at as u64);
        assert_eq!(diag.healed_rounds, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn ibr_checkpoints_are_version_4_and_byte_stable() {
    // Two independent checkpointed runs of the passive-signal campaign
    // write byte-identical snapshot + journal files, and the snapshot
    // header carries the IBR schema version.
    let campaign = ibr_campaign();
    let (dir_a, dir_b) = (fresh_dir("v4a"), fresh_dir("v4b"));
    let report_a = campaign.run_checkpointed(&dir_a, policy()).expect("run a");
    let report_b = campaign.run_checkpointed(&dir_b, policy()).expect("run b");
    assert_eq!(format!("{report_a:?}"), format!("{report_b:?}"));

    for file in [SNAPSHOT_FILE, JOURNAL_FILE] {
        let a = std::fs::read(dir_a.join(file)).expect(file);
        let b = std::fs::read(dir_b.join(file)).expect(file);
        assert_eq!(a, b, "{file} differs between two identical runs");
    }
    let (version, _) = ukraine_fbs::journal::read_snapshot(dir_a.join(SNAPSHOT_FILE))
        .expect("readable snapshot")
        .expect("snapshot written");
    assert_eq!(
        version, 4,
        "a passive-signal campaign checkpoints as version 4"
    );

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn ibr_corrupt_journal_tail_is_truncated_and_rescanned() {
    // The crash-recovery ladder holds for version-4 records too: a damaged
    // tail record is dropped and the round re-measured, darknet included.
    let campaign = ibr_campaign();
    let baseline = format!("{:?}", campaign.run().expect("uninterrupted run"));

    let dir = fresh_dir("ibrtail");
    run_and_kill(&campaign, &dir, 300);
    flip_bit_near_end(&dir.join(JOURNAL_FILE), 3);

    let (resumed, diag) = campaign
        .resume_with(&dir, policy())
        .expect("resume over corrupt tail");
    assert_eq!(
        format!("{resumed:?}"),
        baseline,
        "corrupt v4 journal tail changed the report"
    );
    assert!(!diag.journal.was_clean(), "{diag:?}");
    assert_eq!(diag.journal.records, 299, "exactly the damaged record lost");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v3_checkpoint_resumes_as_an_ibr_disabled_campaign() {
    // A checkpoint directory written *without* the passive signal stays on
    // the version-3 layout and resumes exactly as an IBR-disabled
    // campaign: no passive ledgers appear, and the report matches the
    // uninterrupted run bit-for-bit. Old directories keep working.
    let campaign = multi_vantage_campaign();
    let baseline = format!("{:?}", campaign.run().expect("uninterrupted run"));

    let dir = fresh_dir("v3compat");
    run_and_kill(&campaign, &dir, 250);
    let (version, _) = ukraine_fbs::journal::read_snapshot(dir.join(SNAPSHOT_FILE))
        .expect("readable snapshot")
        .expect("snapshot written");
    assert_eq!(version, 3, "no passive signal, vantage schema version");

    let (resumed, diag) = campaign.resume_with(&dir, policy()).expect("v3 resume");
    assert_eq!(format!("{resumed:?}"), baseline);
    assert!(diag.journal.was_clean());
    assert!(resumed.ibr.is_empty(), "no passive config, no ledgers");
    assert_eq!(resumed.total_ibr_outages(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
