//! Cross-crate consistency: the wire path (real packets through the
//! scanner) agrees with the oracle path; the BGP log agrees with the
//! block-level truth; the delegation snapshot covers the world; and the
//! whole pipeline is deterministic end to end.

use ukraine_fbs::netsim::WorldTransport;
use ukraine_fbs::prelude::*;
use ukraine_fbs::prober::{ScanConfig, Scanner, TargetSet};

fn tiny_world(seed: u64) -> ukraine_fbs::netsim::World {
    scenarios::ukraine_with_rounds(WorldScale::Tiny, seed, 120)
        .into_world()
        .expect("valid scenario")
}

#[test]
fn wire_path_reproduces_oracle_bitmaps() {
    let world = tiny_world(3);
    let targets = TargetSet::from_blocks(world.blocks().iter().map(|b| b.block).collect());
    let scanner = Scanner::new(ScanConfig {
        rate_pps: 1_000_000,
        ..ScanConfig::default()
    });
    // Round 50 falls in the documented March 6–7 vantage outage: the wire
    // path must then observe pure silence regardless of the truth.
    {
        let round = Round(50);
        assert!(!world.vantage_online(round));
        let mut transport = WorldTransport::new(&world, round);
        let (obs, _) = scanner.scan_round(round, &targets, &mut transport);
        assert_eq!(obs.total_responsive(), 0, "offline vantage hears nothing");
    }
    for round in [Round(0), Round(80), Round(119)] {
        assert!(world.vantage_online(round), "pick online rounds");
        let mut transport = WorldTransport::new(&world, round);
        let (obs, stats) = scanner.scan_round(round, &targets, &mut transport);
        assert_eq!(stats.sent, targets.num_addresses());
        assert_eq!(stats.parse_errors, 0);
        for (i, block_obs) in obs.blocks.iter().enumerate() {
            let bi = world.block_index(obs.block_ids[i]).expect("block exists");
            assert_eq!(
                block_obs.responders,
                world.block_bitmap(round, bi),
                "round {round}, block {}",
                obs.block_ids[i]
            );
        }
    }
}

#[test]
fn bgp_log_visibility_matches_block_truth() {
    let world = tiny_world(4);
    let mut replayer = world.bgp_log().replayer();
    let by_as = world.blocks_by_as();
    for r in (0..world.rounds()).step_by(13) {
        let rib = replayer.advance_to(Round(r));
        for (asn, blocks) in &by_as {
            let any_up = blocks.iter().any(|&bi| !world.block_down(Round(r), bi));
            let visible = rib.is_visible(*asn);
            // Block-level-only events (e.g. the Status liberation blocks)
            // can silence blocks while the prefix stays announced, but an
            // AS with *no* reachable blocks must never be visible because
            // of them (AS-level events drive both paths identically here).
            if !visible {
                assert!(
                    !any_up,
                    "{asn} invisible in BGP but has reachable blocks at round {r}"
                );
            }
        }
    }
}

#[test]
fn delegation_snapshot_covers_world_blocks() {
    let scenario = scenarios::ukraine_with_rounds(WorldScale::Tiny, 5, 120);
    let file = scenarios::delegations::snapshot_2021(&scenario.config);
    let targets = TargetSet::from_prefixes(&file.delegated_prefixes("UA"));
    let mut covered = 0;
    let world = scenario.into_world().expect("valid scenario");
    for spec in world.blocks() {
        if targets.index_of_block(spec.block).is_some() {
            covered += 1;
        }
    }
    let share = covered as f64 / world.blocks().len() as f64;
    assert!(
        share > 0.75,
        "delegations should cover most of the world, got {share:.2}"
    );
}

#[test]
fn identical_seeds_identical_reports() {
    let run = || {
        let world = tiny_world(9);
        Campaign::new(world, CampaignConfig::without_baseline())
            .expect("valid config")
            .run()
            .expect("campaign run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_as_outages(), b.total_as_outages());
    assert_eq!(a.missing_rounds, b.missing_rounds);
    for (asn, events) in &a.as_events {
        let other = &b.as_events[asn];
        assert_eq!(events.len(), other.len(), "{asn}");
        for (x, y) in events.iter().zip(other) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.end, y.end);
            assert_eq!(x.signal, y.signal);
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = Campaign::new(tiny_world(1), CampaignConfig::without_baseline())
        .expect("valid config")
        .run()
        .expect("campaign run");
    let b = Campaign::new(tiny_world(2), CampaignConfig::without_baseline())
        .expect("valid config")
        .run()
        .expect("campaign run");
    assert_ne!(
        a.total_as_outages(),
        b.total_as_outages(),
        "different seeds should yield different noise (counts colliding is astronomically unlikely)"
    );
}

#[test]
fn geo_snapshots_serialize_roundtrip() {
    let world = tiny_world(6);
    let snap = ukraine_fbs::netsim::geo::geo_snapshot(&world, MonthId::new(2022, 4));
    let json = serde_json::to_string(&snap).expect("serializes");
    let back: ukraine_fbs::geodb::GeoSnapshot = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.num_blocks(), snap.num_blocks());
    for rec in snap.iter() {
        assert_eq!(back.get(rec.block), Some(rec));
    }
}

#[test]
fn bgp_dump_roundtrip_of_world_rib() {
    let world = tiny_world(7);
    let mut replayer = world.bgp_log().replayer();
    let rib = replayer.advance_to(Round(60));
    let text = ukraine_fbs::bgp::dump::to_string(rib);
    let parsed = ukraine_fbs::bgp::dump::from_str(&text).expect("parses");
    assert_eq!(parsed.num_routes(), rib.num_routes());
    assert_eq!(ukraine_fbs::bgp::dump::to_string(&parsed), text);
}
