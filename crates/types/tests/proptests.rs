//! Property-based tests for the foundational types.

use fbs_types::{BlockId, CivilDate, MonthId, Prefix, Round, Timestamp};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// Civil date <-> epoch-day conversion is a bijection on a wide range.
    #[test]
    fn civil_date_roundtrip(days in -200_000i64..200_000i64) {
        let d = CivilDate::from_epoch_days(days);
        prop_assert_eq!(d.to_epoch_days(), days);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!(d.day >= 1 && d.day <= d.days_in_month());
    }

    /// Epoch days are strictly monotone in the calendar order.
    #[test]
    fn civil_date_monotone(days in -100_000i64..100_000i64) {
        let d0 = CivilDate::from_epoch_days(days);
        let d1 = CivilDate::from_epoch_days(days + 1);
        prop_assert!(d0 < d1);
        prop_assert_eq!(d0.plus_days(1), d1);
    }

    /// Every address belongs to exactly the block reported by `containing`.
    #[test]
    fn block_contains_its_addresses(raw in any::<u32>()) {
        let addr = Ipv4Addr::from(raw);
        let b = BlockId::containing(addr);
        prop_assert!(b.contains(addr));
        prop_assert_eq!(b.addr(BlockId::host_of(addr)), addr);
    }

    /// Prefix parsing and display round-trip for canonical prefixes.
    #[test]
    fn prefix_display_roundtrip(raw in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(Ipv4Addr::from(raw), len);
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    /// A prefix contains exactly the addresses of its covered blocks.
    #[test]
    fn prefix_blocks_are_contained(raw in any::<u32>(), len in 16u8..=24) {
        let p = Prefix::new(Ipv4Addr::from(raw), len);
        prop_assert_eq!(p.blocks().count() as u32, p.num_blocks());
        for b in p.blocks().take(8) {
            prop_assert!(p.contains_addr(b.network()));
            prop_assert!(p.contains_addr(b.addr(255)));
            prop_assert!(p.covers(Prefix::from_block(b)));
        }
    }

    /// Round <-> timestamp mapping is consistent.
    #[test]
    fn round_containing_start(r in 0u32..20_000) {
        let round = Round(r);
        prop_assert_eq!(Round::containing(round.start()), Some(round));
        // Any instant strictly inside the window maps back to the same round.
        let mid = round.start().plus_seconds(3599);
        prop_assert_eq!(Round::containing(mid), Some(round));
    }

    /// Month rounds partition the campaign: consecutive months abut.
    #[test]
    fn month_rounds_abut(m in 0u32..40) {
        let first = MonthId::campaign_first();
        let month = MonthId(first.0 + m);
        let this = month.campaign_rounds();
        let next = month.next().campaign_rounds();
        prop_assert_eq!(this.end, next.start);
    }

    /// Timestamp hour extraction agrees with date-based reconstruction.
    #[test]
    fn timestamp_hour_consistent(secs in 0i64..2_000_000_000) {
        let ts = Timestamp(secs);
        let rebuilt = ts.date().at(ts.hour(), 0);
        let delta = ts.seconds_since(rebuilt);
        prop_assert!((0..3600).contains(&delta));
    }
}
