//! Measurement-round quality verdicts.
//!
//! The campaign ran through wartime network conditions: packet loss on the
//! paths to the vantage point, ICMP rate limiting, spoofed traffic, and
//! partial vantage failures that are *not* clean on/off outages. An outage
//! detector that cannot tell "the targets went dark" from "our measurement
//! went bad" will hallucinate country-scale events. [`RoundQuality`] is the
//! verdict the prober attaches to every round so downstream signal
//! consumers can damp or discard tainted measurements.

use serde::{Deserialize, Serialize};

/// How trustworthy one measurement round is.
///
/// Ordered by severity: `Ok < Degraded < Unusable`, so [`Ord::max`] (or
/// [`RoundQuality::worst`]) combines verdicts from independent checks.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum RoundQuality {
    /// The round is trustworthy; feed signals at full strength.
    #[default]
    Ok,
    /// Measurably impaired (elevated loss, parse errors, or a probe
    /// shortfall) but still informative: detection thresholds should be
    /// damped and baselines frozen, yet a *total* blackout must still fire.
    Degraded,
    /// Too impaired to interpret; treat exactly like a missing round
    /// (vantage offline): no values, frozen detector state.
    Unusable,
}

impl RoundQuality {
    /// The more severe of two verdicts.
    #[inline]
    pub fn worst(self, other: RoundQuality) -> RoundQuality {
        self.max(other)
    }

    /// Whether the round carries any usable measurement at all.
    #[inline]
    pub fn is_usable(self) -> bool {
        self != RoundQuality::Unusable
    }

    /// Whether the round is fully trustworthy.
    #[inline]
    pub fn is_ok(self) -> bool {
        self == RoundQuality::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_order() {
        assert!(RoundQuality::Ok < RoundQuality::Degraded);
        assert!(RoundQuality::Degraded < RoundQuality::Unusable);
        assert_eq!(
            RoundQuality::Ok.worst(RoundQuality::Degraded),
            RoundQuality::Degraded
        );
        assert_eq!(
            RoundQuality::Unusable.worst(RoundQuality::Degraded),
            RoundQuality::Unusable
        );
    }

    #[test]
    fn usability_predicates() {
        assert!(RoundQuality::Ok.is_ok());
        assert!(RoundQuality::Ok.is_usable());
        assert!(RoundQuality::Degraded.is_usable());
        assert!(!RoundQuality::Degraded.is_ok());
        assert!(!RoundQuality::Unusable.is_usable());
    }

    #[test]
    fn default_is_ok() {
        assert_eq!(RoundQuality::default(), RoundQuality::Ok);
    }
}
