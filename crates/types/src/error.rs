//! Workspace-wide error type.
//!
//! Most crates in the workspace operate on in-memory data and use panics for
//! programmer errors; [`FbsError`] covers the recoverable cases: malformed
//! external data (delegation files, dumps), out-of-range times, and invalid
//! configuration.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, FbsError>;

/// Errors surfaced by the `ukraine-fbs` crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FbsError {
    /// A line or record of an external file could not be parsed.
    ///
    /// Carries the offending input (truncated) and a human-readable reason.
    Parse {
        /// Description of what failed to parse and why.
        reason: String,
        /// The offending input, truncated to a reasonable length.
        input: String,
    },
    /// A timestamp, round or month index fell outside the supported range.
    TimeOutOfRange {
        /// Description of the violated bound.
        reason: String,
    },
    /// A configuration value was invalid (e.g. threshold outside `0..=1`).
    InvalidConfig {
        /// Description of the invalid parameter.
        reason: String,
    },
    /// A lookup referenced an entity that does not exist.
    NotFound {
        /// Description of the missing entity.
        what: String,
    },
    /// An I/O-style failure while reading or writing serialized data.
    Io {
        /// Description of the failure.
        reason: String,
    },
    /// A round journal was damaged beyond its recoverable prefix.
    ///
    /// Tail corruption (a torn append, a truncated file) is handled
    /// silently by truncating to the last CRC-valid record; this variant
    /// covers damage that recovery cannot paper over, such as a record
    /// stream inconsistent with the snapshot it should extend. Carries how
    /// many records were recovered before the failure so callers can report
    /// exactly where the durable history ends.
    CorruptJournal {
        /// Description of the damage.
        reason: String,
        /// Number of records successfully recovered before the failure.
        recovered_records: u64,
    },
    /// A snapshot file failed its header or checksum validation.
    ///
    /// Snapshots are written atomically, so a corrupt one indicates storage
    /// damage rather than a crash mid-write; callers quarantine the file and
    /// fall back to replaying the journal from the start.
    CorruptSnapshot {
        /// Description of the damage.
        reason: String,
    },
}

impl FbsError {
    /// Builds a [`FbsError::Parse`], truncating `input` to 80 characters.
    pub fn parse(reason: impl Into<String>, input: &str) -> Self {
        let mut input = input.to_string();
        if input.len() > 80 {
            // Back off to a char boundary: byte 80 may fall inside a
            // multibyte sequence (e.g. U+FFFD from lossy feed decoding).
            let mut cut = 80;
            while !input.is_char_boundary(cut) {
                cut -= 1;
            }
            input.truncate(cut);
            input.push_str("...");
        }
        FbsError::Parse {
            reason: reason.into(),
            input,
        }
    }

    /// Builds a [`FbsError::InvalidConfig`].
    pub fn config(reason: impl Into<String>) -> Self {
        FbsError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Builds a [`FbsError::NotFound`].
    pub fn not_found(what: impl Into<String>) -> Self {
        FbsError::NotFound { what: what.into() }
    }

    /// Builds a [`FbsError::CorruptJournal`].
    pub fn corrupt_journal(reason: impl Into<String>, recovered_records: u64) -> Self {
        FbsError::CorruptJournal {
            reason: reason.into(),
            recovered_records,
        }
    }

    /// Builds a [`FbsError::CorruptSnapshot`].
    pub fn corrupt_snapshot(reason: impl Into<String>) -> Self {
        FbsError::CorruptSnapshot {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for FbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FbsError::Parse { reason, input } => {
                write!(f, "parse error: {reason} (input: {input:?})")
            }
            FbsError::TimeOutOfRange { reason } => write!(f, "time out of range: {reason}"),
            FbsError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            FbsError::NotFound { what } => write!(f, "not found: {what}"),
            FbsError::Io { reason } => write!(f, "i/o error: {reason}"),
            FbsError::CorruptJournal {
                reason,
                recovered_records,
            } => write!(
                f,
                "corrupt journal: {reason} ({recovered_records} records recovered)"
            ),
            FbsError::CorruptSnapshot { reason } => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl std::error::Error for FbsError {}

impl From<std::io::Error> for FbsError {
    fn from(e: std::io::Error) -> Self {
        FbsError::Io {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_truncates_long_input() {
        let long = "x".repeat(200);
        let err = FbsError::parse("bad", &long);
        match err {
            FbsError::Parse { input, .. } => {
                assert!(input.len() <= 84);
                assert!(input.ends_with("..."));
            }
            _ => panic!("expected parse error"),
        }
    }

    #[test]
    fn parse_error_truncates_at_char_boundary() {
        // Lossy feed decoding yields U+FFFD (3 bytes); the 80-byte cut must
        // not land mid-sequence.
        let long = "\u{fffd}".repeat(80);
        let err = FbsError::parse("bad", &long);
        match err {
            FbsError::Parse { input, .. } => {
                assert!(input.ends_with("..."));
                assert!(input.len() <= 84);
            }
            _ => panic!("expected parse error"),
        }
    }

    #[test]
    fn display_is_informative() {
        let err = FbsError::config("threshold must be in 0..=1");
        assert!(err.to_string().contains("threshold"));
        let err = FbsError::not_found("AS25482");
        assert!(err.to_string().contains("AS25482"));
    }

    #[test]
    fn corruption_errors_carry_recovery_context() {
        let err = FbsError::corrupt_journal("crc mismatch at offset 4096", 17);
        assert!(err.to_string().contains("17 records recovered"));
        assert!(err.to_string().contains("crc mismatch"));
        let err = FbsError::corrupt_snapshot("bad magic");
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk on fire");
        let err: FbsError = io.into();
        assert!(err.to_string().contains("disk on fire"));
    }
}
