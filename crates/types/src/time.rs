//! The campaign clock: civil dates, two-hour probing rounds, and month ids.
//!
//! The paper's campaign probes every two hours from 2022-03-02 22:00 UTC
//! until 2025-02-24; RouteViews dumps share the two-hour cadence and the
//! geolocation database is snapshotted monthly. This module provides exact
//! calendar math for those three granularities without external crates
//! (civil-date conversion uses Howard Hinnant's `days_from_civil`
//! algorithm).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds per probing round (two hours).
pub const ROUND_SECONDS: i64 = 7200;

/// Probing rounds per day.
pub const ROUNDS_PER_DAY: u32 = 12;

/// Campaign start: 2022-03-02 22:00 UTC, the 7th day of the invasion.
pub const CAMPAIGN_START: Timestamp = Timestamp(1_646_258_400);

/// Campaign end analyzed in the paper: 2025-02-24 00:00 UTC.
pub const CAMPAIGN_END: Timestamp = Timestamp(1_740_355_200);

/// A calendar date (proleptic Gregorian, UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    /// Full year, e.g. 2022.
    pub year: i32,
    /// Month `1..=12`.
    pub month: u8,
    /// Day of month `1..=31`.
    pub day: u8,
}

impl CivilDate {
    /// Creates a date; panics if the month/day are out of range.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        let d = CivilDate { year, month, day };
        assert!(
            day >= 1 && day <= d.days_in_month(),
            "day {day} out of range for {year}-{month:02}"
        );
        d
    }

    /// Whether `year` is a leap year.
    pub fn is_leap_year(year: i32) -> bool {
        year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
    }

    /// Days in this date's month.
    pub fn days_in_month(self) -> u8 {
        match self.month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if Self::is_leap_year(self.year) {
                    29
                } else {
                    28
                }
            }
            _ => unreachable!("month validated on construction"),
        }
    }

    /// Days since 1970-01-01 (Hinnant's `days_from_civil`).
    pub fn to_epoch_days(self) -> i64 {
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Self::to_epoch_days`] (Hinnant's `civil_from_days`).
    pub fn from_epoch_days(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        CivilDate {
            year: (y + if m <= 2 { 1 } else { 0 }) as i32,
            month: m as u8,
            day: d as u8,
        }
    }

    /// Weekday with Monday = 0 .. Sunday = 6.
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (weekday 3).
        ((self.to_epoch_days() + 3).rem_euclid(7)) as u8
    }

    /// Midnight UTC of this date.
    pub fn midnight(self) -> Timestamp {
        Timestamp(self.to_epoch_days() * 86_400)
    }

    /// Timestamp at the given hour/minute of this date.
    pub fn at(self, hour: u8, minute: u8) -> Timestamp {
        assert!(hour < 24 && minute < 60, "invalid time {hour}:{minute}");
        Timestamp(self.to_epoch_days() * 86_400 + hour as i64 * 3600 + minute as i64 * 60)
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn plus_days(self, n: i64) -> Self {
        Self::from_epoch_days(self.to_epoch_days() + n)
    }

    /// Month id of this date.
    pub fn month_id(self) -> MonthId {
        MonthId::new(self.year, self.month)
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Seconds since the Unix epoch, UTC.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The calendar date containing this instant.
    pub fn date(self) -> CivilDate {
        CivilDate::from_epoch_days(self.0.div_euclid(86_400))
    }

    /// Hour of day, `0..24`.
    pub fn hour(self) -> u8 {
        (self.0.rem_euclid(86_400) / 3600) as u8
    }

    /// Seconds elapsed since `earlier` (negative if `self` is earlier).
    pub fn seconds_since(self, earlier: Timestamp) -> i64 {
        self.0 - earlier.0
    }

    /// This instant plus `secs` seconds.
    pub fn plus_seconds(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let rem = self.0.rem_euclid(86_400);
        write!(f, "{} {:02}:{:02}Z", d, rem / 3600, (rem % 3600) / 60)
    }
}

/// Index of a two-hour probing round since [`CAMPAIGN_START`].
///
/// Round 0 spans 2022-03-02 22:00–23:59 UTC. Rounds align with RouteViews'
/// two-hour BGP snapshot cadence.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Round(pub u32);

impl Round {
    /// The instant this round's probing window opens.
    pub fn start(self) -> Timestamp {
        Timestamp(CAMPAIGN_START.0 + self.0 as i64 * ROUND_SECONDS)
    }

    /// The round containing `ts`; `None` before the campaign start.
    pub fn containing(ts: Timestamp) -> Option<Round> {
        let delta = ts.0 - CAMPAIGN_START.0;
        if delta < 0 {
            None
        } else {
            Some(Round((delta / ROUND_SECONDS) as u32))
        }
    }

    /// First round whose window opens at or after `ts`.
    pub fn first_at_or_after(ts: Timestamp) -> Round {
        let delta = ts.0 - CAMPAIGN_START.0;
        if delta <= 0 {
            Round(0)
        } else {
            Round(((delta + ROUND_SECONDS - 1) / ROUND_SECONDS) as u32)
        }
    }

    /// Calendar date of the round's start.
    pub fn date(self) -> CivilDate {
        self.start().date()
    }

    /// Month id of the round's start.
    pub fn month(self) -> MonthId {
        self.date().month_id()
    }

    /// Hour of day at which the round starts (`0..24`).
    pub fn hour(self) -> u8 {
        self.start().hour()
    }

    /// The next round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Total rounds in the analyzed campaign window.
    pub fn campaign_total() -> u32 {
        ((CAMPAIGN_END.0 - CAMPAIGN_START.0) / ROUND_SECONDS) as u32
    }

    /// Iterator over all campaign rounds `[0, campaign_total)`.
    pub fn campaign_rounds() -> impl Iterator<Item = Round> {
        (0..Self::campaign_total()).map(Round)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {} ({})", self.0, self.start())
    }
}

/// A calendar month, encoded as `year * 12 + month - 1`.
///
/// Monthly granularity drives geolocation snapshots, FBS eligibility
/// (ever-active addresses per month) and regional classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MonthId(pub u32);

impl MonthId {
    /// Creates a month id from a year and 1-based month.
    pub fn new(year: i32, month: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(year >= 0, "negative years unsupported");
        MonthId(year as u32 * 12 + (month as u32 - 1))
    }

    /// Full year.
    pub fn year(self) -> i32 {
        (self.0 / 12) as i32
    }

    /// 1-based month.
    pub fn month(self) -> u8 {
        (self.0 % 12 + 1) as u8
    }

    /// First day of the month.
    pub fn first_date(self) -> CivilDate {
        CivilDate::new(self.year(), self.month(), 1)
    }

    /// Number of days in the month.
    pub fn num_days(self) -> u8 {
        self.first_date().days_in_month()
    }

    /// The next month.
    pub fn next(self) -> MonthId {
        MonthId(self.0 + 1)
    }

    /// The previous month; panics at the epoch of year 0.
    pub fn prev(self) -> MonthId {
        MonthId(self.0 - 1)
    }

    /// Months from `self` (inclusive) to `end` (inclusive).
    pub fn range_inclusive(self, end: MonthId) -> impl Iterator<Item = MonthId> {
        (self.0..=end.0).map(MonthId)
    }

    /// Month of the campaign start (March 2022).
    pub fn campaign_first() -> MonthId {
        CAMPAIGN_START.date().month_id()
    }

    /// Month of the campaign end (February 2025).
    pub fn campaign_last() -> MonthId {
        CAMPAIGN_END.date().month_id()
    }

    /// Rounds whose start falls inside this month, clamped to the campaign.
    pub fn campaign_rounds(self) -> std::ops::Range<u32> {
        let start_ts = self.first_date().midnight();
        let end_ts = self.next().first_date().midnight();
        let total = Round::campaign_total();
        let lo = Round::first_at_or_after(start_ts).0.min(total);
        let hi = Round::first_at_or_after(end_ts).0.min(total);
        lo..hi
    }
}

impl fmt::Display for MonthId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year(), self.month())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_start_constant_matches_date_math() {
        assert_eq!(CivilDate::new(2022, 3, 2).at(22, 0), CAMPAIGN_START);
        assert_eq!(CivilDate::new(2025, 2, 24).midnight(), CAMPAIGN_END);
    }

    #[test]
    fn civil_roundtrip_across_leap_years() {
        let dates = [
            CivilDate::new(1970, 1, 1),
            CivilDate::new(2000, 2, 29),
            CivilDate::new(2022, 2, 24),
            CivilDate::new(2024, 2, 29),
            CivilDate::new(2024, 12, 31),
            CivilDate::new(2100, 3, 1),
        ];
        for d in dates {
            assert_eq!(CivilDate::from_epoch_days(d.to_epoch_days()), d);
        }
        assert_eq!(CivilDate::new(1970, 1, 1).to_epoch_days(), 0);
    }

    #[test]
    fn leap_year_rules() {
        assert!(CivilDate::is_leap_year(2024));
        assert!(!CivilDate::is_leap_year(2023));
        assert!(!CivilDate::is_leap_year(2100));
        assert!(CivilDate::is_leap_year(2000));
        assert_eq!(CivilDate::new(2024, 2, 1).days_in_month(), 29);
        assert_eq!(CivilDate::new(2023, 2, 1).days_in_month(), 28);
    }

    #[test]
    fn weekday_known_values() {
        // 2022-02-24 (invasion start) was a Thursday.
        assert_eq!(CivilDate::new(2022, 2, 24).weekday(), 3);
        // 2022-11-11 (Kherson liberation) was a Friday.
        assert_eq!(CivilDate::new(2022, 11, 11).weekday(), 4);
        // 1970-01-01 was a Thursday.
        assert_eq!(CivilDate::new(1970, 1, 1).weekday(), 3);
    }

    #[test]
    fn round_zero_is_campaign_start() {
        assert_eq!(Round(0).start(), CAMPAIGN_START);
        assert_eq!(Round(0).hour(), 22);
        assert_eq!(Round(1).start().0 - Round(0).start().0, ROUND_SECONDS);
        assert_eq!(Round::containing(CAMPAIGN_START), Some(Round(0)));
        assert_eq!(
            Round::containing(CAMPAIGN_START.plus_seconds(7199)),
            Some(Round(0))
        );
        assert_eq!(
            Round::containing(CAMPAIGN_START.plus_seconds(7200)),
            Some(Round(1))
        );
        assert_eq!(Round::containing(Timestamp(CAMPAIGN_START.0 - 1)), None);
    }

    #[test]
    fn campaign_total_is_about_three_years() {
        let total = Round::campaign_total();
        // 2022-03-02 22:00 to 2025-02-24 00:00 is 1089 days + 2 hours.
        assert_eq!(total, 1089 * 12 + 1);
    }

    #[test]
    fn month_id_roundtrip() {
        let m = MonthId::new(2022, 3);
        assert_eq!(m.year(), 2022);
        assert_eq!(m.month(), 3);
        assert_eq!(m.next(), MonthId::new(2022, 4));
        assert_eq!(MonthId::new(2023, 1).prev(), MonthId::new(2022, 12));
        assert_eq!(m.to_string(), "2022-03");
    }

    #[test]
    fn campaign_month_bounds() {
        assert_eq!(MonthId::campaign_first(), MonthId::new(2022, 3));
        assert_eq!(MonthId::campaign_last(), MonthId::new(2025, 2));
    }

    #[test]
    fn first_month_rounds_start_at_zero() {
        let r = MonthId::new(2022, 3).campaign_rounds();
        assert_eq!(r.start, 0);
        // March 2022: rounds from 2022-03-02 22:00 through 2022-03-31 23:59.
        let last_round = Round(r.end - 1);
        assert_eq!(last_round.date(), CivilDate::new(2022, 3, 31));
        let first_april = Round(r.end);
        assert_eq!(first_april.date(), CivilDate::new(2022, 4, 1));
    }

    #[test]
    fn month_before_campaign_has_no_rounds() {
        let r = MonthId::new(2022, 1).campaign_rounds();
        assert!(r.is_empty());
        // Months after the campaign end are also empty.
        let r = MonthId::new(2025, 3).campaign_rounds();
        assert!(r.is_empty());
    }

    #[test]
    fn last_month_rounds_clamped_to_campaign_end() {
        let r = MonthId::new(2025, 2).campaign_rounds();
        assert_eq!(r.end, Round::campaign_total());
        let last = Round(r.end - 1);
        assert_eq!(last.date(), CivilDate::new(2025, 2, 23));
    }

    #[test]
    fn full_month_has_expected_round_count() {
        // April 2022 is fully inside the campaign: 30 days * 12 rounds.
        let r = MonthId::new(2022, 4).campaign_rounds();
        assert_eq!(r.end - r.start, 30 * 12);
    }

    #[test]
    fn timestamp_display() {
        assert_eq!(CAMPAIGN_START.to_string(), "2022-03-02 22:00Z");
    }

    #[test]
    fn plus_days_crosses_month_boundary() {
        let d = CivilDate::new(2022, 4, 30).plus_days(1);
        assert_eq!(d, CivilDate::new(2022, 5, 1));
        let d = CivilDate::new(2024, 3, 1).plus_days(-1);
        assert_eq!(d, CivilDate::new(2024, 2, 29));
    }
}
