//! Core identifier, region, and time types shared across the `ukraine-fbs`
//! workspace.
//!
//! This crate is dependency-light by design: every other crate in the
//! workspace builds on the vocabulary defined here — autonomous system
//! numbers ([`Asn`]), /24 address blocks ([`BlockId`]), CIDR prefixes
//! ([`Prefix`]), Ukrainian administrative regions ([`Oblast`]), and the
//! campaign clock ([`Round`], [`MonthId`], [`CivilDate`]).
//!
//! # Time model
//!
//! The measurement campaign of the reproduced paper probes the Ukrainian
//! address space every two hours from 2022-03-02 22:00 UTC (the seventh day
//! of the full-scale invasion) until 2025-02-24 (its third anniversary).
//! [`Round`] indexes those two-hour probing windows; [`MonthId`] indexes
//! calendar months for monthly aggregates such as geolocation snapshots and
//! full-block-scan eligibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod codec;
pub mod error;
pub mod feed;
pub mod ids;
pub mod quality;
pub mod region;
pub mod time;

pub use block::{BlockId, Prefix};
pub use codec::{ByteReader, ByteWriter, Persist};
pub use error::{FbsError, Result};
pub use feed::{FeedKind, FeedStatus, QuarantinedRecord};
pub use ids::{Asn, VantageId};
pub use quality::RoundQuality;
pub use region::{Oblast, RegionClass, ALL_OBLASTS, FRONTLINE_OBLASTS};
pub use time::{
    CivilDate, MonthId, Round, Timestamp, CAMPAIGN_END, CAMPAIGN_START, ROUNDS_PER_DAY,
    ROUND_SECONDS,
};
