//! Autonomous system numbers and vantage-point identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A vantage point's position in a campaign's vantage roster.
///
/// Newtype over `u16` so a vantage index cannot be confused with a block
/// index or a round number in fan-out code. `VantageId(0)` is the first
/// roster entry; the legacy single-vantage pipeline has no roster and
/// therefore no ids at all.
///
/// ```
/// use fbs_types::VantageId;
/// assert_eq!(VantageId(2).to_string(), "vp2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct VantageId(pub u16);

impl VantageId {
    /// Returns the raw roster index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VantageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vp{}", self.0)
    }
}

impl From<u16> for VantageId {
    fn from(v: u16) -> Self {
        VantageId(v)
    }
}

/// An autonomous system number (32-bit, per RFC 6793).
///
/// Newtype over `u32` so that AS numbers cannot be confused with counts or
/// block identifiers in function signatures.
///
/// ```
/// use fbs_types::Asn;
/// let status = Asn(25482);
/// assert_eq!(status.to_string(), "AS25482");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// Returns the raw numeric value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// Whether this ASN falls in a private-use range (RFC 6996).
    pub fn is_private(self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl std::str::FromStr for Asn {
    type Err = crate::FbsError;

    /// Parses `"AS25482"` or plain `"25482"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| crate::FbsError::parse("invalid ASN", s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_forms() {
        assert_eq!("AS25482".parse::<Asn>().unwrap(), Asn(25482));
        assert_eq!("25482".parse::<Asn>().unwrap(), Asn(25482));
        assert!("ASxyz".parse::<Asn>().is_err());
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(25482).is_private());
        assert!(Asn(4_200_000_000).is_private());
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Asn(1) < Asn(2));
    }
}
