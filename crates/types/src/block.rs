//! IPv4 /24 address blocks and CIDR prefixes.
//!
//! The paper's unit of measurement is the /24 address block: full-block
//! scanning probes all 256 addresses of every block, and both the FBS and
//! Trinocular eligibility criteria are defined per /24. [`BlockId`] encodes a
//! /24 as the upper 24 bits of its network address, making block arithmetic
//! (iteration, containment, indexing) cheap integer operations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Identifier of an IPv4 /24 address block.
///
/// Stores the 24 network bits, i.e. `BlockId(a<<16 | b<<8 | c)` identifies
/// `a.b.c.0/24`. The full u32 network address is `id.0 << 8`.
///
/// ```
/// use fbs_types::BlockId;
/// use std::net::Ipv4Addr;
/// let b = BlockId::containing(Ipv4Addr::new(176, 8, 28, 77));
/// assert_eq!(b.to_string(), "176.8.28.0/24");
/// assert_eq!(b.addr(77), Ipv4Addr::new(176, 8, 28, 77));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Number of addresses in a /24 block.
    pub const SIZE: u32 = 256;

    /// Block containing the given address.
    #[inline]
    pub fn containing(addr: Ipv4Addr) -> Self {
        BlockId(u32::from(addr) >> 8)
    }

    /// Constructs from the first three octets.
    #[inline]
    pub fn from_octets(a: u8, b: u8, c: u8) -> Self {
        BlockId(((a as u32) << 16) | ((b as u32) << 8) | (c as u32))
    }

    /// The network address (`.0`) of this block.
    #[inline]
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.0 << 8)
    }

    /// The address with the given host octet.
    #[inline]
    pub fn addr(self, host: u8) -> Ipv4Addr {
        Ipv4Addr::from((self.0 << 8) | host as u32)
    }

    /// Whether `addr` belongs to this block.
    #[inline]
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        u32::from(addr) >> 8 == self.0
    }

    /// Host octet of `addr` (meaningful only if [`Self::contains`]).
    #[inline]
    pub fn host_of(addr: Ipv4Addr) -> u8 {
        (u32::from(addr) & 0xff) as u8
    }

    /// First three octets as a tuple.
    pub fn octets(self) -> (u8, u8, u8) {
        ((self.0 >> 16) as u8, (self.0 >> 8) as u8, self.0 as u8)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b, c) = self.octets();
        write!(f, "{a}.{b}.{c}.0/24")
    }
}

/// An IPv4 CIDR prefix (network address + mask length).
///
/// Used for delegation ranges and BGP announcements. The network address is
/// canonicalized on construction (host bits cleared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address with host bits cleared.
    net: u32,
    /// Mask length, `0..=32`.
    len: u8,
}

impl Prefix {
    /// Creates a prefix, clearing any host bits in `addr`.
    ///
    /// Panics if `len > 32` (a programmer error, not a data error).
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let raw = u32::from(addr);
        let net = if len == 0 {
            0
        } else {
            raw & (u32::MAX << (32 - len))
        };
        Prefix { net, len }
    }

    /// The /24 block `b` as a prefix.
    pub fn from_block(b: BlockId) -> Self {
        Prefix {
            net: b.0 << 8,
            len: 24,
        }
    }

    /// Network address.
    #[inline]
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.net)
    }

    /// Mask length.
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this prefix is `/0` (matches everything). Provided to satisfy
    /// the `len`/`is_empty` convention; a `/0` prefix is never "empty".
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Number of addresses covered.
    #[inline]
    pub fn num_addresses(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Number of /24 blocks covered (0 if longer than /24).
    #[inline]
    pub fn num_blocks(self) -> u32 {
        if self.len > 24 {
            0
        } else {
            1u32 << (24 - self.len)
        }
    }

    /// Whether `addr` is inside this prefix.
    #[inline]
    pub fn contains_addr(self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        (u32::from(addr) ^ self.net) >> (32 - self.len) == 0
    }

    /// Whether `other` is fully contained in (or equal to) `self`.
    #[inline]
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && {
            if self.len == 0 {
                true
            } else {
                (other.net ^ self.net) >> (32 - self.len) == 0
            }
        }
    }

    /// Iterates the /24 blocks covered by this prefix.
    ///
    /// For prefixes longer than /24 yields nothing; for a /24 or shorter,
    /// yields `2^(24-len)` consecutive blocks.
    pub fn blocks(self) -> impl Iterator<Item = BlockId> {
        let first = self.net >> 8;
        (0..self.num_blocks()).map(move |i| BlockId(first + i))
    }

    /// Raw `u32` network value (for indexing).
    #[inline]
    pub fn raw(self) -> u32 {
        self.net
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl std::str::FromStr for Prefix {
    type Err = crate::FbsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| crate::FbsError::parse("missing '/' in prefix", s))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| crate::FbsError::parse("invalid network address", s))?;
        let len: u8 = len
            .parse()
            .map_err(|_| crate::FbsError::parse("invalid mask length", s))?;
        if len > 32 {
            return Err(crate::FbsError::parse("mask length > 32", s));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip() {
        let b = BlockId::from_octets(176, 8, 28);
        assert_eq!(b.network(), Ipv4Addr::new(176, 8, 28, 0));
        assert_eq!(b.addr(255), Ipv4Addr::new(176, 8, 28, 255));
        assert!(b.contains(Ipv4Addr::new(176, 8, 28, 1)));
        assert!(!b.contains(Ipv4Addr::new(176, 8, 29, 1)));
        assert_eq!(BlockId::host_of(Ipv4Addr::new(176, 8, 28, 42)), 42);
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(p.num_addresses(), 65536);
        assert_eq!(p.num_blocks(), 256);
    }

    #[test]
    fn prefix_contains_and_covers() {
        let p: Prefix = "91.237.0.0/16".parse().unwrap();
        assert!(p.contains_addr(Ipv4Addr::new(91, 237, 5, 200)));
        assert!(!p.contains_addr(Ipv4Addr::new(91, 238, 0, 1)));
        let q: Prefix = "91.237.5.0/24".parse().unwrap();
        assert!(p.covers(q));
        assert!(!q.covers(p));
        assert!(p.covers(p));
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let p = Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(p.contains_addr(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(p.covers("10.0.0.0/8".parse().unwrap()));
        assert_eq!(p.num_addresses(), 1 << 32);
    }

    #[test]
    fn prefix_block_iteration() {
        let p: Prefix = "193.151.240.0/22".parse().unwrap();
        let blocks: Vec<_> = p.blocks().collect();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0], BlockId::from_octets(193, 151, 240));
        assert_eq!(blocks[3], BlockId::from_octets(193, 151, 243));
    }

    #[test]
    fn long_prefix_has_no_blocks() {
        let p: Prefix = "10.0.0.0/28".parse().unwrap();
        assert_eq!(p.num_blocks(), 0);
        assert_eq!(p.blocks().count(), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("nope/24".parse::<Prefix>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "176.8.28.0/24", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }
}
