//! Ukrainian administrative regions (oblasts).
//!
//! Following the paper (§2.1), Ukraine's 24 oblasts, the two cities with
//! special status and the autonomous republic are flattened into **26
//! regions**: Kyiv city and Kyiv oblast are merged, while Sevastopol and
//! Crimea are kept separate (both appear in the paper's regional figures).
//!
//! The seven *frontline* regions — oblasts on the line of contact with
//! continuous war activity since 2022 — are Chernihiv, Donetsk, Kharkiv,
//! Kherson, Luhansk, Sumy and Zaporizhzhia.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the 26 regions used throughout the analysis.
///
/// The discriminant values are stable and dense (`0..26`), so `Oblast` can be
/// used directly as an array index via [`Oblast::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Oblast {
    Cherkasy = 0,
    Chernihiv = 1,
    Chernivtsi = 2,
    Crimea = 3,
    Dnipropetrovsk = 4,
    Donetsk = 5,
    IvanoFrankivsk = 6,
    Kharkiv = 7,
    Kherson = 8,
    Khmelnytskyi = 9,
    Kirovohrad = 10,
    Kyiv = 11,
    Luhansk = 12,
    Lviv = 13,
    Mykolaiv = 14,
    Odessa = 15,
    Poltava = 16,
    Rivne = 17,
    Sevastopol = 18,
    Sumy = 19,
    Ternopil = 20,
    Transcarpathia = 21,
    Vinnytsia = 22,
    Volyn = 23,
    Zaporizhzhia = 24,
    Zhytomyr = 25,
}

/// All 26 regions in index order.
pub const ALL_OBLASTS: [Oblast; 26] = [
    Oblast::Cherkasy,
    Oblast::Chernihiv,
    Oblast::Chernivtsi,
    Oblast::Crimea,
    Oblast::Dnipropetrovsk,
    Oblast::Donetsk,
    Oblast::IvanoFrankivsk,
    Oblast::Kharkiv,
    Oblast::Kherson,
    Oblast::Khmelnytskyi,
    Oblast::Kirovohrad,
    Oblast::Kyiv,
    Oblast::Luhansk,
    Oblast::Lviv,
    Oblast::Mykolaiv,
    Oblast::Odessa,
    Oblast::Poltava,
    Oblast::Rivne,
    Oblast::Sevastopol,
    Oblast::Sumy,
    Oblast::Ternopil,
    Oblast::Transcarpathia,
    Oblast::Vinnytsia,
    Oblast::Volyn,
    Oblast::Zaporizhzhia,
    Oblast::Zhytomyr,
];

/// The seven frontline regions (paper §2.1).
pub const FRONTLINE_OBLASTS: [Oblast; 7] = [
    Oblast::Chernihiv,
    Oblast::Donetsk,
    Oblast::Kharkiv,
    Oblast::Kherson,
    Oblast::Luhansk,
    Oblast::Sumy,
    Oblast::Zaporizhzhia,
];

impl Oblast {
    /// Number of regions.
    pub const COUNT: usize = 26;

    /// Dense index in `0..26`, suitable for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Oblast::index`]; `None` if out of range.
    pub fn from_index(i: usize) -> Option<Self> {
        ALL_OBLASTS.get(i).copied()
    }

    /// Whether this region is on the frontline (paper §2.1).
    ///
    /// Kyiv and Mykolaiv saw combat only during the initial advance and are
    /// counted as non-frontline, matching the paper.
    pub fn is_frontline(self) -> bool {
        matches!(
            self,
            Oblast::Chernihiv
                | Oblast::Donetsk
                | Oblast::Kharkiv
                | Oblast::Kherson
                | Oblast::Luhansk
                | Oblast::Sumy
                | Oblast::Zaporizhzhia
        )
    }

    /// Whether the region is on the Crimean peninsula and connected to the
    /// Russian power grid since 2014 (paper §5.1: these regions did not see
    /// the winter power-driven outages).
    pub fn is_crimean_peninsula(self) -> bool {
        matches!(self, Oblast::Crimea | Oblast::Sevastopol)
    }

    /// Canonical English name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Oblast::Cherkasy => "Cherkasy",
            Oblast::Chernihiv => "Chernihiv",
            Oblast::Chernivtsi => "Chernivtsi",
            Oblast::Crimea => "Crimea",
            Oblast::Dnipropetrovsk => "Dnipropetrovsk",
            Oblast::Donetsk => "Donetsk",
            Oblast::IvanoFrankivsk => "Ivano-Frankivsk",
            Oblast::Kharkiv => "Kharkiv",
            Oblast::Kherson => "Kherson",
            Oblast::Khmelnytskyi => "Khmelnytskyi",
            Oblast::Kirovohrad => "Kirovohrad",
            Oblast::Kyiv => "Kyiv",
            Oblast::Luhansk => "Luhansk",
            Oblast::Lviv => "Lviv",
            Oblast::Mykolaiv => "Mykolaiv",
            Oblast::Odessa => "Odessa",
            Oblast::Poltava => "Poltava",
            Oblast::Rivne => "Rivne",
            Oblast::Sevastopol => "Sevastopol",
            Oblast::Sumy => "Sumy",
            Oblast::Ternopil => "Ternopil",
            Oblast::Transcarpathia => "Transcarpathia",
            Oblast::Vinnytsia => "Vinnytsia",
            Oblast::Volyn => "Volyn",
            Oblast::Zaporizhzhia => "Zaporizhzhia",
            Oblast::Zhytomyr => "Zhytomyr",
        }
    }

    /// Parses a region name (case-insensitive, hyphen/space tolerant).
    pub fn parse_name(s: &str) -> Option<Self> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        ALL_OBLASTS.iter().copied().find(|o| {
            let canon: String = o
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .map(|c| c.to_ascii_lowercase())
                .collect();
            canon == norm
        })
    }
}

impl fmt::Display for Oblast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Frontline/non-frontline partition of a region, used for aggregate plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionClass {
    /// One of the seven frontline oblasts.
    Frontline,
    /// All other regions.
    NonFrontline,
}

impl From<Oblast> for RegionClass {
    fn from(o: Oblast) -> Self {
        if o.is_frontline() {
            RegionClass::Frontline
        } else {
            RegionClass::NonFrontline
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_dense_and_roundtrip() {
        for (i, o) in ALL_OBLASTS.iter().enumerate() {
            assert_eq!(o.index(), i);
            assert_eq!(Oblast::from_index(i), Some(*o));
        }
        assert_eq!(Oblast::from_index(26), None);
    }

    #[test]
    fn frontline_set_matches_paper() {
        let fl: Vec<_> = ALL_OBLASTS.iter().filter(|o| o.is_frontline()).collect();
        assert_eq!(fl.len(), 7);
        assert!(Oblast::Kherson.is_frontline());
        assert!(Oblast::Sumy.is_frontline());
        // Kyiv and Mykolaiv are explicitly non-frontline in the paper.
        assert!(!Oblast::Kyiv.is_frontline());
        assert!(!Oblast::Mykolaiv.is_frontline());
        assert_eq!(FRONTLINE_OBLASTS.len(), 7);
        for o in FRONTLINE_OBLASTS {
            assert!(o.is_frontline());
        }
    }

    #[test]
    fn crimean_peninsula() {
        assert!(Oblast::Crimea.is_crimean_peninsula());
        assert!(Oblast::Sevastopol.is_crimean_peninsula());
        assert!(!Oblast::Kherson.is_crimean_peninsula());
    }

    #[test]
    fn name_parsing_is_tolerant() {
        assert_eq!(
            Oblast::parse_name("Ivano-Frankivsk"),
            Some(Oblast::IvanoFrankivsk)
        );
        assert_eq!(
            Oblast::parse_name("ivano frankivsk"),
            Some(Oblast::IvanoFrankivsk)
        );
        assert_eq!(Oblast::parse_name("KHERSON"), Some(Oblast::Kherson));
        assert_eq!(Oblast::parse_name("Atlantis"), None);
    }

    #[test]
    fn region_class_partition() {
        assert_eq!(RegionClass::from(Oblast::Kherson), RegionClass::Frontline);
        assert_eq!(RegionClass::from(Oblast::Lviv), RegionClass::NonFrontline);
    }
}
