//! External-feed identity, staleness, and quarantine vocabulary.
//!
//! The campaign's three outage signals lean on three external feeds:
//! RouteViews-style RIB dumps (the BGP ★ signal), monthly geolocation
//! snapshots (regional classification), and RIR delegation files (target
//! derivation). Real wartime collections of all three suffer gaps, partial
//! exports, and registry lag; an ingest layer that treats one malformed
//! line as a fatal error will either crash mid-campaign or — worse —
//! silently hallucinate country-scale outages when a feed goes dark.
//!
//! This module is the shared vocabulary for feed resilience: which feed
//! ([`FeedKind`]), how trustworthy its latest delivery is ([`FeedStatus`]),
//! and what a lossy parser set aside ([`QuarantinedRecord`]). The parsing
//! crates (`fbs-bgp`, `fbs-delegations`, `fbs-geodb`) depend only on this
//! crate, so their `parse_lossy` paths can report quarantined records
//! without pulling in the feed-loading machinery of `fbs-feeds`.

use crate::codec::{ByteReader, ByteWriter, Persist};
use crate::error::{FbsError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which external feed a status or quarantine report refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FeedKind {
    /// RouteViews-style RIB dumps driving the BGP ★ signal.
    Bgp,
    /// Monthly geolocation snapshots driving regional classification.
    Geo,
    /// RIR delegation files driving target derivation.
    Delegations,
}

impl FeedKind {
    /// Every feed, in canonical (persist/report) order.
    pub const ALL: [FeedKind; 3] = [FeedKind::Bgp, FeedKind::Geo, FeedKind::Delegations];

    /// Stable lowercase name, used in reports and fixture paths.
    pub fn name(self) -> &'static str {
        match self {
            FeedKind::Bgp => "bgp",
            FeedKind::Geo => "geo",
            FeedKind::Delegations => "delegations",
        }
    }

    /// Position in [`FeedKind::ALL`]; stable across versions.
    pub fn index(self) -> usize {
        match self {
            FeedKind::Bgp => 0,
            FeedKind::Geo => 1,
            FeedKind::Delegations => 2,
        }
    }
}

impl fmt::Display for FeedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How current one feed's data is for one round.
///
/// The ordering is by severity (`Fresh < Stale(n) < Stale(n+1) < Missing`),
/// so [`Ord::max`] / [`FeedStatus::worst`] combines verdicts.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum FeedStatus {
    /// The feed delivered and parsed within tolerance this round.
    #[default]
    Fresh,
    /// No (acceptable) delivery this round; the pipeline is running on
    /// data carried forward from `age` rounds ago (`age >= 1`).
    Stale(u32),
    /// No delivery this round and no last-good data to carry forward.
    Missing,
}

impl FeedStatus {
    /// The more severe of two statuses.
    #[inline]
    pub fn worst(self, other: FeedStatus) -> FeedStatus {
        self.max(other)
    }

    /// Whether the feed delivered fresh data this round.
    #[inline]
    pub fn is_fresh(self) -> bool {
        self == FeedStatus::Fresh
    }

    /// Whether any data (fresh or carried forward) backs this round.
    #[inline]
    pub fn has_data(self) -> bool {
        self != FeedStatus::Missing
    }

    /// Rounds since the last fresh delivery (0 when fresh, `None` when no
    /// data has ever arrived).
    #[inline]
    pub fn age(self) -> Option<u32> {
        match self {
            FeedStatus::Fresh => Some(0),
            FeedStatus::Stale(n) => Some(n),
            FeedStatus::Missing => None,
        }
    }

    /// The status after a round with no acceptable delivery: last-good data
    /// ages by one round; never-delivered stays missing.
    #[inline]
    pub fn aged(self) -> FeedStatus {
        match self {
            FeedStatus::Fresh => FeedStatus::Stale(1),
            FeedStatus::Stale(n) => FeedStatus::Stale(n.saturating_add(1)),
            FeedStatus::Missing => FeedStatus::Missing,
        }
    }
}

impl fmt::Display for FeedStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedStatus::Fresh => f.write_str("fresh"),
            FeedStatus::Stale(n) => write!(f, "stale({n})"),
            FeedStatus::Missing => f.write_str("missing"),
        }
    }
}

/// One malformed record a lossy parser set aside instead of failing the
/// whole feed. `line` is 1-based; `input` is the offending line, truncated
/// to [`QuarantinedRecord::MAX_INPUT`] bytes so a corrupt feed cannot bloat
/// the report.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QuarantinedRecord {
    /// 1-based line number within the feed text.
    pub line: u32,
    /// Why the record was rejected (parser error message).
    pub reason: String,
    /// The offending input line, truncated to a UTF-8-safe prefix.
    pub input: String,
}

impl QuarantinedRecord {
    /// Cap on stored input bytes per quarantined record.
    pub const MAX_INPUT: usize = 200;

    /// Builds a record, truncating `input` at a char boundary.
    pub fn new(line: u32, reason: impl Into<String>, input: &str) -> Self {
        let mut end = input.len().min(Self::MAX_INPUT);
        while end < input.len() && !input.is_char_boundary(end) {
            end -= 1;
        }
        QuarantinedRecord {
            line,
            reason: reason.into(),
            input: input[..end].to_string(),
        }
    }
}

impl fmt::Display for QuarantinedRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: {} (input: {:?})",
            self.line, self.reason, self.input
        )
    }
}

impl Persist for FeedKind {
    // Tags mirror `index()`: the wire format is unchanged, but the match
    // keeps both codec sides naming every variant, so adding a feed kind
    // without extending restore() is a compile- or lint-visible error.
    fn persist(&self, w: &mut ByteWriter) {
        match self {
            FeedKind::Bgp => w.put_u8(0),
            FeedKind::Geo => w.put_u8(1),
            FeedKind::Delegations => w.put_u8(2),
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(FeedKind::Bgp),
            1 => Ok(FeedKind::Geo),
            2 => Ok(FeedKind::Delegations),
            other => Err(FbsError::Io {
                reason: format!("invalid feed kind tag {other:#x}"),
            }),
        }
    }
}

impl Persist for FeedStatus {
    fn persist(&self, w: &mut ByteWriter) {
        match self {
            FeedStatus::Fresh => w.put_u8(0),
            FeedStatus::Stale(n) => {
                w.put_u8(1);
                w.put_u32(*n);
            }
            FeedStatus::Missing => w.put_u8(2),
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(FeedStatus::Fresh),
            1 => Ok(FeedStatus::Stale(r.get_u32()?)),
            2 => Ok(FeedStatus::Missing),
            other => Err(FbsError::Io {
                reason: format!("invalid feed status tag {other:#x}"),
            }),
        }
    }
}

impl Persist for QuarantinedRecord {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.line);
        w.put_str(&self.reason);
        w.put_str(&self.input);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(QuarantinedRecord {
            line: r.get_u32()?,
            reason: r.get_str()?,
            input: r.get_str()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = ByteWriter::new();
        value.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = T::restore(&mut r).expect("restore");
        r.expect_exhausted().expect("all bytes consumed");
        assert_eq!(back, value);
    }

    #[test]
    fn severity_order() {
        assert!(FeedStatus::Fresh < FeedStatus::Stale(1));
        assert!(FeedStatus::Stale(1) < FeedStatus::Stale(12));
        assert!(FeedStatus::Stale(u32::MAX) < FeedStatus::Missing);
        assert_eq!(
            FeedStatus::Fresh.worst(FeedStatus::Stale(3)),
            FeedStatus::Stale(3)
        );
    }

    #[test]
    fn aging_transitions() {
        assert_eq!(FeedStatus::Fresh.aged(), FeedStatus::Stale(1));
        assert_eq!(FeedStatus::Stale(4).aged(), FeedStatus::Stale(5));
        assert_eq!(FeedStatus::Missing.aged(), FeedStatus::Missing);
        assert_eq!(
            FeedStatus::Stale(u32::MAX).aged(),
            FeedStatus::Stale(u32::MAX)
        );
    }

    #[test]
    fn predicates_and_age() {
        assert!(FeedStatus::Fresh.is_fresh());
        assert!(FeedStatus::Fresh.has_data());
        assert!(FeedStatus::Stale(2).has_data());
        assert!(!FeedStatus::Missing.has_data());
        assert_eq!(FeedStatus::Fresh.age(), Some(0));
        assert_eq!(FeedStatus::Stale(9).age(), Some(9));
        assert_eq!(FeedStatus::Missing.age(), None);
    }

    #[test]
    fn kind_names_and_order() {
        assert_eq!(FeedKind::ALL.len(), 3);
        for (i, k) in FeedKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(FeedKind::Bgp.to_string(), "bgp");
        assert_eq!(FeedKind::Delegations.name(), "delegations");
    }

    /// Pins the repaired `FeedKind` codec to its wire format: the rewrite
    /// of persist() from `self.index()` to an explicit match must emit the
    /// exact bytes the old encoder produced, or resuming a pre-repair
    /// journal would misread every feed tag.
    #[test]
    fn feed_kind_wire_tags_are_pinned() {
        for kind in FeedKind::ALL {
            let mut w = ByteWriter::new();
            kind.persist(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(bytes, vec![kind.index() as u8], "{kind} tag drifted");
            let mut r = ByteReader::new(&bytes);
            assert_eq!(FeedKind::restore(&mut r).expect("restore"), kind);
        }
    }

    #[test]
    fn quarantine_truncates_on_char_boundary() {
        let long = "п".repeat(300); // 2-byte chars; 300 chars = 600 bytes
        let q = QuarantinedRecord::new(7, "bad record", &long);
        assert!(q.input.len() <= QuarantinedRecord::MAX_INPUT);
        assert!(q.input.chars().all(|c| c == 'п'));
        assert_eq!(q.line, 7);
    }

    #[test]
    fn persist_roundtrips() {
        for k in FeedKind::ALL {
            roundtrip(k);
        }
        roundtrip(FeedStatus::Fresh);
        roundtrip(FeedStatus::Stale(42));
        roundtrip(FeedStatus::Missing);
        roundtrip(QuarantinedRecord::new(3, "bad prefix", "10.0.0.0/33|1"));
    }

    #[test]
    fn invalid_tags_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert!(FeedKind::restore(&mut r).is_err());
        let mut r = ByteReader::new(&[7]);
        assert!(FeedStatus::restore(&mut r).is_err());
    }
}
