//! A tiny deterministic binary codec for durable state.
//!
//! Checkpoint files (the round journal and pipeline snapshots) must
//! round-trip *bit-identically*: a resumed campaign replays into exactly
//! the state an uninterrupted run would hold, floating-point accumulators
//! included. Text formats round floats and external serializers are a
//! dependency the container cannot always provide, so durable state uses
//! this explicit little-endian codec instead: every field is written and
//! read by hand, `f64`s travel as raw IEEE-754 bits, and any truncation or
//! type drift surfaces as an [`FbsError`] rather than silent corruption.
//!
//! The [`Persist`] trait marks state that knows how to write itself into a
//! [`ByteWriter`] and rebuild itself from a [`ByteReader`]. Generic impls
//! cover the usual composites (options, vectors, maps, tuples), so most
//! implementations are a field-by-field list in declaration order.

use crate::error::{FbsError, Result};
use std::collections::BTreeMap;

/// Growable little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over encoded bytes; every read checks bounds.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader consumed every byte.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Errors unless every byte has been consumed — catches version drift
    /// where a decoder reads less than the encoder wrote.
    pub fn expect_exhausted(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(FbsError::Io {
                reason: format!("{} trailing bytes after decode", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(FbsError::Io {
                reason: format!(
                    "truncated record: wanted {n} bytes at offset {}, {} remain",
                    self.pos,
                    self.remaining()
                ),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` from raw IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(FbsError::Io {
                reason: format!("invalid bool byte {other:#x}"),
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| FbsError::Io {
            reason: format!("invalid utf-8 in string field: {e}"),
        })
    }

    /// Reads a `u64` length prefix, bounds-checked against the remaining
    /// input so a corrupt length cannot trigger a giant allocation.
    pub fn get_len(&mut self) -> Result<usize> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(FbsError::Io {
                reason: format!(
                    "length prefix {len} exceeds {} remaining bytes",
                    self.remaining()
                ),
            });
        }
        Ok(len as usize)
    }
}

/// State that serializes itself into the checkpoint codec.
pub trait Persist: Sized {
    /// Writes `self` field by field.
    fn persist(&self, w: &mut ByteWriter);
    /// Reads the fields back in the same order.
    fn restore(r: &mut ByteReader<'_>) -> Result<Self>;
}

macro_rules! persist_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Persist for $ty {
            fn persist(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
            fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
                r.$get()
            }
        }
    };
}

persist_prim!(u8, put_u8, get_u8);
persist_prim!(u16, put_u16, get_u16);
persist_prim!(u32, put_u32, get_u32);
persist_prim!(u64, put_u64, get_u64);
persist_prim!(i64, put_i64, get_i64);
persist_prim!(f64, put_f64, get_f64);
persist_prim!(bool, put_bool, get_bool);

impl Persist for usize {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u64(*self as u64);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| FbsError::Io {
            reason: format!("usize value {v} exceeds platform width"),
        })
    }
}

impl Persist for String {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_str()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.persist(w);
            }
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            other => Err(FbsError::Io {
                reason: format!("invalid option tag {other:#x}"),
            }),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.persist(w);
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        // Elements are at least one byte, so the generic length check in
        // `get_len` bounds allocation.
        let len = r.get_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, w: &mut ByteWriter) {
        self.0.persist(w);
        self.1.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.persist(w);
            v.persist(w);
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let len = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// --- Persist for the vocabulary types of this crate. ---

impl Persist for crate::Round {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(crate::Round(r.get_u32()?))
    }
}

impl Persist for crate::Asn {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(crate::Asn(r.get_u32()?))
    }
}

impl Persist for crate::VantageId {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u16(self.0);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(crate::VantageId(r.get_u16()?))
    }
}

impl Persist for crate::BlockId {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(crate::BlockId(r.get_u32()?))
    }
}

impl Persist for crate::MonthId {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(crate::MonthId(r.get_u32()?))
    }
}

impl Persist for crate::Oblast {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u8(self.index() as u8);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let i = r.get_u8()? as usize;
        crate::Oblast::from_index(i).ok_or_else(|| FbsError::Io {
            reason: format!("invalid oblast index {i}"),
        })
    }
}

impl Persist for crate::RoundQuality {
    fn persist(&self, w: &mut ByteWriter) {
        let tag = match self {
            crate::RoundQuality::Ok => 0u8,
            crate::RoundQuality::Degraded => 1,
            crate::RoundQuality::Unusable => 2,
        };
        w.put_u8(tag);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(crate::RoundQuality::Ok),
            1 => Ok(crate::RoundQuality::Degraded),
            2 => Ok(crate::RoundQuality::Unusable),
            other => Err(FbsError::Io {
                reason: format!("invalid round quality tag {other:#x}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asn, MonthId, Oblast, Round, RoundQuality};

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = ByteWriter::new();
        value.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = T::restore(&mut r).expect("restore");
        r.expect_exhausted().expect("all bytes consumed");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0xABu8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(std::f64::consts::PI);
        roundtrip(String::from("кherson-journal"));
    }

    #[test]
    fn f64_bits_are_exact() {
        // A value with no short decimal representation survives exactly.
        let v = f64::from_bits(0x3FD5_5555_5555_5555);
        let mut w = ByteWriter::new();
        v.persist(&mut w);
        let bytes = w.into_bytes();
        let back = f64::restore(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec![Some(1.5f64), None]);
        let mut map = BTreeMap::new();
        map.insert((Asn(25482), MonthId::new(2022, 3)), 9.75f64);
        map.insert((Asn(21151), MonthId::new(2023, 11)), -0.5f64);
        roundtrip(map);
    }

    #[test]
    fn domain_types_roundtrip() {
        roundtrip(Round(1234));
        roundtrip(Asn(25482));
        roundtrip(crate::BlockId::from_octets(193, 151, 240));
        roundtrip(MonthId::new(2024, 2));
        for o in crate::ALL_OBLASTS {
            roundtrip(o);
        }
        roundtrip(RoundQuality::Ok);
        roundtrip(RoundQuality::Degraded);
        roundtrip(RoundQuality::Unusable);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        vec![1u64, 2, 3].persist(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(Vec::<u64>::restore(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_length_prefix_cannot_allocate() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd length
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(Vec::<u8>::restore(&mut r).is_err());
    }

    #[test]
    fn invalid_tags_are_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert!(bool::restore(&mut r).is_err());
        let mut r = ByteReader::new(&[7]);
        assert!(Option::<u8>::restore(&mut r).is_err());
        let mut r = ByteReader::new(&[200]);
        assert!(Oblast::restore(&mut r).is_err());
        let mut r = ByteReader::new(&[3]);
        assert!(RoundQuality::restore(&mut r).is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = ByteWriter::new();
        1u32.persist(&mut w);
        2u32.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let _ = u32::restore(&mut r).unwrap();
        assert!(r.expect_exhausted().is_err());
    }
}
