//! Per-file analysis context: classification, pragmas, test regions.
//!
//! Rules do not see raw bytes; they see a [`SourceFile`] — the token
//! stream plus everything scoping needs: what kind of file this is
//! (library / binary / test / bench / example), which crate it belongs
//! to, which lines sit inside `#[cfg(test)]` or `#[test]` items, and
//! which lines carry `// fbs-lint: allow(rule)` pragmas.

use crate::lexer::{lex, Token, TokenKind};
use crate::parser::{parse, Ast, Span};
use std::collections::{BTreeMap, BTreeSet};

/// How a file participates in the build — the unit of rule scoping.
///
/// Determinism rules bind tightest on library code: a library crate runs
/// inside resumable campaigns, while binaries, benches and tests run at
/// the edge where wall clocks and ad-hoc state are legitimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a library crate's `src/` tree.
    Library,
    /// A binary target (`src/main.rs`, `src/bin/*.rs`).
    Bin,
    /// An `examples/` target.
    Example,
    /// An integration-test target (`tests/`).
    Test,
    /// Anything under `crates/bench/` or a `benches/` directory.
    Bench,
}

impl FileKind {
    /// Display name used in diagnostics and `--list-rules`.
    pub fn name(self) -> &'static str {
        match self {
            FileKind::Library => "library",
            FileKind::Bin => "bin",
            FileKind::Example => "example",
            FileKind::Test => "test",
            FileKind::Bench => "bench",
        }
    }
}

/// Where a file sits in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Build role; drives rule applicability.
    pub kind: FileKind,
    /// Package name (`fbs-core`, `ukraine-fbs`, …).
    pub crate_name: String,
    /// Whether this file is a crate root (`lib.rs`, `main.rs`,
    /// `src/bin/*.rs`, an example, or a bench binary) — the place crate
    /// attributes like `#![forbid(unsafe_code)]` must live.
    pub is_crate_root: bool,
}

impl FileMeta {
    /// Classifies a workspace-relative path.
    pub fn infer(rel_path: &str) -> FileMeta {
        let path = rel_path.replace('\\', "/");
        let parts: Vec<&str> = path.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
            format!("fbs-{}", parts[1])
        } else {
            "ukraine-fbs".to_string()
        };
        let has = |name: &str| parts.contains(&name);
        let kind = if parts.first() == Some(&"crates") && parts.get(1) == Some(&"bench")
            || has("benches")
        {
            FileKind::Bench
        } else if has("tests") {
            FileKind::Test
        } else if has("examples") {
            FileKind::Example
        } else if has("bin") || path.ends_with("src/main.rs") {
            FileKind::Bin
        } else {
            FileKind::Library
        };
        let file = parts.last().copied().unwrap_or("");
        let parent = parts.len().checked_sub(2).map(|i| parts[i]).unwrap_or("");
        let is_crate_root = (file == "lib.rs" || file == "main.rs") && parent == "src"
            || parent == "bin"
            || parent == "examples"
            || (parent == "tests" && file.ends_with(".rs"));
        FileMeta {
            path,
            kind,
            crate_name,
            is_crate_root,
        }
    }
}

/// A lexed file, ready for rules.
pub struct SourceFile {
    pub meta: FileMeta,
    pub src: Vec<u8>,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices (into `tokens`) of non-comment tokens — what rules match on.
    pub sig: Vec<usize>,
    /// Item-level AST (structs, enums, impls, fns) over the significant
    /// tokens — what the semantic rules match on.
    pub ast: Ast,
    /// Lines covered by `#[cfg(test)]` / `#[test]` items.
    test_lines: BTreeSet<u32>,
    /// Line → rules allowed there by pragma.
    allows: BTreeMap<u32, BTreeSet<String>>,
}

/// The pragma prefix recognized in line comments.
const PRAGMA: &str = "fbs-lint:";

impl SourceFile {
    /// Lexes and analyzes one file.
    pub fn analyze(meta: FileMeta, src: Vec<u8>) -> SourceFile {
        let tokens = lex(&src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let ast = parse(&src, &tokens, &sig);
        let mut file = SourceFile {
            meta,
            src,
            tokens,
            sig,
            ast,
            test_lines: BTreeSet::new(),
            allows: BTreeMap::new(),
        };
        file.collect_pragmas();
        file.collect_test_regions();
        file
    }

    /// The `i`-th significant (non-comment) token.
    pub fn sig_token(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// Whether `line` is inside a `#[cfg(test)]` / `#[test]` region.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// Whether a pragma allows `rule` on `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|set| set.contains(rule) || set.contains("all"))
    }

    /// The significant tokens of an AST [`Span`], with their sig indices.
    pub fn span_tokens(&self, span: Span) -> impl Iterator<Item = (usize, &Token)> {
        let hi = span.hi.min(self.sig.len());
        let lo = span.lo.min(hi);
        (lo..hi).map(move |i| (i, &self.tokens[self.sig[i]]))
    }

    /// Whether the whole token stream contains an identifier `name`
    /// outside comments (used by content-triggered rules).
    pub fn mentions_ident(&self, name: &str) -> bool {
        self.sig
            .iter()
            .any(|&i| self.tokens[i].is_ident(&self.src, name))
    }

    /// Scans line comments for `// fbs-lint: allow(rule-a, rule-b) …`.
    ///
    /// A pragma covers its own line *and* the next one, so both styles
    /// work: trailing on the offending line, or on its own line above.
    fn collect_pragmas(&mut self) {
        for t in &self.tokens {
            if t.kind != TokenKind::LineComment {
                continue;
            }
            let text = String::from_utf8_lossy(t.bytes(&self.src)).into_owned();
            let Some(at) = text.find(PRAGMA) else {
                continue;
            };
            let rest = text[at + PRAGMA.len()..].trim_start();
            let Some(args) = rest
                .strip_prefix("allow(")
                .and_then(|r| r.split_once(')'))
                .map(|(inside, _)| inside)
            else {
                continue;
            };
            let rules: BTreeSet<String> = args
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if rules.is_empty() {
                continue;
            }
            for line in [t.line, t.line + 1] {
                self.allows.entry(line).or_default().extend(rules.clone());
            }
        }
    }

    /// Marks the line span of every item annotated `#[test]` or
    /// `#[cfg(test)]` (and not `#[cfg(not(test))]`): attribute sequences
    /// are parsed, then the braced body of the following item is matched.
    fn collect_test_regions(&mut self) {
        let mut marks: Vec<(u32, u32)> = Vec::new();
        let mut i = 0usize;
        while i < self.sig.len() {
            if !self.is_attr_start(i) {
                i += 1;
                continue;
            }
            let attr_line = self.sig_token(i).line;
            let mut is_test_attr = false;
            let mut j = i;
            // A run of attributes (`#[…] #[…]`) guards one item; any
            // test-ish attribute in the run marks the whole item.
            while self.is_attr_start(j) {
                let (end, testish) = self.scan_attr(j);
                is_test_attr |= testish;
                j = end;
            }
            if !is_test_attr {
                i = j;
                continue;
            }
            // Find the item body: the first `{` before a top-level `;`.
            let mut k = j;
            let mut body_open = None;
            while k < self.sig.len() {
                let t = self.sig_token(k);
                if t.is_punct(&self.src, "{") {
                    body_open = Some(k);
                    break;
                }
                if t.is_punct(&self.src, ";") {
                    break;
                }
                k += 1;
            }
            if let Some(open) = body_open {
                let close = self.match_brace(open);
                let end_line = self.sig_token(close.min(self.sig.len() - 1)).line;
                marks.push((attr_line, end_line));
                i = close + 1;
            } else {
                // `#[cfg(test)] mod tests;` — out-of-line; only the
                // declaration itself is in this file.
                marks.push((attr_line, self.sig_token(k.min(self.sig.len() - 1)).line));
                i = k + 1;
            }
        }
        for (from, to) in marks {
            for line in from..=to {
                self.test_lines.insert(line);
            }
        }
    }

    /// Whether significant token `i` starts an outer attribute `#[…]`.
    fn is_attr_start(&self, i: usize) -> bool {
        i + 1 < self.sig.len()
            && self.sig_token(i).is_punct(&self.src, "#")
            && self.sig_token(i + 1).is_punct(&self.src, "[")
    }

    /// Scans the attribute starting at `i`; returns (one past its `]`,
    /// whether it marks test-only code).
    fn scan_attr(&self, i: usize) -> (usize, bool) {
        let mut depth = 0usize;
        let mut k = i + 1; // at `[`
        let mut idents: Vec<String> = Vec::new();
        while k < self.sig.len() {
            let t = self.sig_token(k);
            if t.is_punct(&self.src, "[") {
                depth += 1;
            } else if t.is_punct(&self.src, "]") {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            } else if t.kind == TokenKind::Ident {
                idents.push(String::from_utf8_lossy(t.bytes(&self.src)).into_owned());
            }
            k += 1;
        }
        let first = idents.first().map(String::as_str);
        let testish = match first {
            Some("test") => true,
            Some("cfg") => idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not"),
            _ => false,
        };
        (k, testish)
    }

    /// Given significant index `open` at a `{`, returns the index of the
    /// matching `}` (or the last token on unbalanced input).
    fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for k in open..self.sig.len() {
            let t = self.sig_token(k);
            if t.is_punct(&self.src, "{") {
                depth += 1;
            } else if t.is_punct(&self.src, "}") {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
        self.sig.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(src: &str) -> SourceFile {
        SourceFile::analyze(
            FileMeta::infer("crates/core/src/pipeline.rs"),
            src.as_bytes().to_vec(),
        )
    }

    #[test]
    fn classification_by_path() {
        let cases = [
            (
                "crates/core/src/pipeline.rs",
                FileKind::Library,
                "fbs-core",
                false,
            ),
            (
                "crates/core/src/lib.rs",
                FileKind::Library,
                "fbs-core",
                true,
            ),
            ("src/lib.rs", FileKind::Library, "ukraine-fbs", true),
            ("src/bin/countrymon.rs", FileKind::Bin, "ukraine-fbs", true),
            (
                "crates/bench/src/bin/fig02.rs",
                FileKind::Bench,
                "fbs-bench",
                true,
            ),
            (
                "crates/journal/tests/proptests.rs",
                FileKind::Test,
                "fbs-journal",
                true,
            ),
            (
                "examples/quickstart.rs",
                FileKind::Example,
                "ukraine-fbs",
                true,
            ),
            (
                "crates/bench/benches/scan.rs",
                FileKind::Bench,
                "fbs-bench",
                false,
            ),
        ];
        for (path, kind, krate, root) in cases {
            let meta = FileMeta::infer(path);
            assert_eq!(meta.kind, kind, "{path}");
            assert_eq!(meta.crate_name, krate, "{path}");
            assert_eq!(meta.is_crate_root, root, "{path}");
        }
    }

    #[test]
    fn pragmas_cover_their_line_and_the_next() {
        let f = lib_file(
            "fn a() {} // fbs-lint: allow(wall-clock)\n\
             // fbs-lint: allow(ambient-rng, unordered-persist) justified\n\
             fn b() {}\n\
             fn c() {}\n",
        );
        assert!(f.is_allowed("wall-clock", 1));
        assert!(f.is_allowed("ambient-rng", 2));
        assert!(f.is_allowed("ambient-rng", 3));
        assert!(f.is_allowed("unordered-persist", 3));
        assert!(!f.is_allowed("ambient-rng", 4));
        assert!(!f.is_allowed("wall-clock", 3));
    }

    #[test]
    fn pragma_inside_string_is_inert() {
        let f = lib_file("fn a() { let s = \"// fbs-lint: allow(wall-clock)\"; }\n");
        assert!(!f.is_allowed("wall-clock", 1));
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let f = lib_file(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { let x = vec![1].pop().unwrap(); }\n\
             }\n\
             fn also_live() {}\n",
        );
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(5));
        assert!(f.in_test_region(6));
        assert!(!f.in_test_region(7));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = lib_file("#[cfg(not(test))]\nfn live() { work(); }\n");
        assert!(!f.in_test_region(2));
    }

    #[test]
    fn attribute_runs_guard_one_item() {
        let f = lib_file("#[test]\n#[ignore]\nfn slow() { body(); }\nfn live() {}\n");
        assert!(f.in_test_region(3));
        assert!(!f.in_test_region(4));
    }
}
