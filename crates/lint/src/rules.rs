//! The rule registry.
//!
//! Every rule is a token-shape pattern plus a scoping predicate. Each one
//! is grounded in a bug class this codebase has actually hit or explicitly
//! guards against (see README "Static analysis & invariants"):
//!
//! * campaigns must be resumable bit-identically, so no wall clocks or
//!   ambient randomness in library code, and no unordered iteration
//!   reaching persisted bytes or reports;
//! * the `Campaign` API must not panic (the `as_pos[&owner]` incident),
//!   so no `unwrap`/`expect`/`panic!`/map-indexing in pipeline crates;
//! * detector math must be NaN-safe, so no `partial_cmp().unwrap()` or
//!   float `==` in signal crates;
//! * every crate root must carry `#![forbid(unsafe_code)]`.

use crate::context::{FileKind, SourceFile};
use crate::lexer::TokenKind;

/// One diagnostic. Positions are 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// A named invariant check.
pub struct Rule {
    /// Stable name, used in diagnostics and `allow(...)` pragmas.
    pub name: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Whether findings inside `#[cfg(test)]` / `#[test]` regions are
    /// suppressed (true for every rule except whole-file ones).
    pub skip_test_regions: bool,
    /// Scope predicate.
    pub applies: fn(&SourceFile) -> bool,
    /// The check itself; pushes raw findings (pragma/test-region
    /// filtering happens in the engine).
    pub check: fn(&SourceFile, &mut Vec<Finding>),
}

/// Crates whose non-test code must be panic-free: everything on the
/// campaign's measure → journal → apply → report path.
const PIPELINE_CRATES: &[&str] = &["fbs-core", "fbs-signals", "fbs-journal"];

/// Crates holding detector / statistics math, where NaNs are reachable.
const DETECTOR_CRATES: &[&str] = &[
    "fbs-signals",
    "fbs-analysis",
    "fbs-trinocular",
    "fbs-regional",
    "fbs-prober",
];

/// The registry of library files that are allowed to write files: the
/// workspace's emission boundaries. The `unregistered-emission` semantic
/// rule checks this list *both ways* against write sites derived from the
/// AST (`fs::write`, `File::create`, `.write_all`), so an entry here is a
/// verified fact, not a trusted comment.
pub const EMISSION_FILES: &[&str] = &[
    "crates/core/src/dataset.rs",
    "crates/feeds/src/quarantine.rs",
    "crates/journal/src/snapshot.rs",
    "crates/journal/src/wal.rs",
];

/// The registry of env-derived artifact names: benchmark and gate
/// binaries resolve their output path through an environment variable
/// with a literal default (`FBS_BENCH_OUT` → `BENCH_scan.json`), and CI
/// uploads those defaults by name. The `unregistered-emission` semantic
/// rule checks this list *both ways* against `env::var("…")` sites whose
/// default names a `.json` artifact: an unlisted default is a violation
/// (CI would silently miss the artifact), a listed name with no live
/// site is stale. Sorted, no duplicates (pinned by test).
pub const EMISSION_OUTPUTS: &[&str] = &["BENCH_scan.json", "BENCH_schema.json"];

/// The registry of world-RNG domain strings: every random decision in
/// the workspace flows through `WorldRng::domain("<literal>")`, and the
/// disjointness of those literals is what keeps the noise streams of
/// independent subsystems (wire faults, feed faults, IBR, vantage
/// faults, world truth) from correlating — the property every
/// "signal X off ⇒ other signals bit-identical" test rests on. The
/// `rng-domain-collision` semantic rule checks this list *both ways*
/// against `domain(…)` call sites found in library code: an unlisted
/// literal is a violation, a listed literal with no live call site is
/// stale, a literal used at two independent call sites is a collision,
/// and a computed (non-literal) argument defeats the check entirely, so
/// it is flagged unless justified with a pragma. Keep sorted.
pub const RNG_DOMAINS: &[&str] = &[
    "delegations",
    "delegations-2025",
    "faults",
    "feeds",
    "geo",
    "hosts",
    "ibr",
    "power",
    "scenario",
    "shards",
    "v6",
    "vantage-faults",
];

/// Files that render report/dataset *content* into strings handed to the
/// writers above, without necessarily naming the `Persist` codec: string
/// formatting is still an emission boundary where iteration order becomes
/// output bytes, so `unordered-persist` covers them too.
pub const RENDER_FILES: &[&str] = &["crates/analysis/src/emit.rs", "crates/core/src/report.rs"];

/// The ordered-merge surface: files that fold per-vantage observations
/// into one fused result. The fold must be order-free or roster-ordered —
/// never keyed on a hash-ordered container — or vantage order leaks into
/// detection input, checkpoints and reports, so `unordered-persist`
/// covers these files even when they never name the codec.
pub const MERGE_FILES: &[&str] = &[
    "crates/core/src/shard.rs",
    "crates/signals/src/fusion.rs",
    "crates/netsim/src/vantage.rs",
];

/// The registry, in diagnostic-priority order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        summary: "no SystemTime::now / Instant::now in library crates (breaks resume determinism)",
        skip_test_regions: true,
        applies: |f| f.meta.kind == FileKind::Library,
        check: check_wall_clock,
    },
    Rule {
        name: "ambient-rng",
        summary: "no thread_rng / from_entropy / rand::random outside the world-RNG domains API",
        skip_test_regions: true,
        applies: |f| matches!(f.meta.kind, FileKind::Library | FileKind::Bin),
        check: check_ambient_rng,
    },
    Rule {
        name: "unordered-persist",
        summary: "no HashMap/HashSet in files that feed Persist bytes or report emission",
        skip_test_regions: true,
        applies: |f| {
            f.meta.kind == FileKind::Library
                && (f.mentions_ident("Persist")
                    || f.mentions_ident("ByteWriter")
                    || EMISSION_FILES.contains(&f.meta.path.as_str())
                    || RENDER_FILES.contains(&f.meta.path.as_str())
                    || MERGE_FILES.contains(&f.meta.path.as_str()))
        },
        check: check_unordered_persist,
    },
    Rule {
        name: "panic-in-pipeline",
        summary: "no unwrap/expect/panic!/map-indexing in non-test code of the pipeline crates",
        skip_test_regions: true,
        applies: |f| {
            f.meta.kind == FileKind::Library
                && PIPELINE_CRATES.contains(&f.meta.crate_name.as_str())
        },
        check: check_panic_in_pipeline,
    },
    Rule {
        name: "nan-unsafe-cmp",
        summary: "no partial_cmp().unwrap() or float == in detector math (NaN poisons ordering)",
        skip_test_regions: true,
        applies: |f| {
            f.meta.kind == FileKind::Library
                && DETECTOR_CRATES.contains(&f.meta.crate_name.as_str())
        },
        check: check_nan_unsafe_cmp,
    },
    Rule {
        name: "missing-forbid-unsafe",
        summary: "every crate root must carry #![forbid(unsafe_code)]",
        skip_test_regions: false,
        applies: |f| f.meta.is_crate_root && f.meta.kind != FileKind::Test,
        check: check_missing_forbid_unsafe,
    },
];

/// Looks up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

fn finding(f: &SourceFile, rule: &'static str, sig_idx: usize, message: String) -> Finding {
    let t = f.sig_token(sig_idx);
    Finding {
        rule,
        line: t.line,
        col: t.col,
        message,
    }
}

/// `SystemTime::now()` / `Instant::now()`: a library crate that reads the
/// wall clock produces different state on replay, which breaks the
/// "resume is bit-identical" guarantee.
fn check_wall_clock(f: &SourceFile, out: &mut Vec<Finding>) {
    let src = &f.src;
    for i in 0..f.sig_len().saturating_sub(2) {
        let (a, b, c) = (f.sig_token(i), f.sig_token(i + 1), f.sig_token(i + 2));
        let is_clock_type = a.is_ident(src, "SystemTime") || a.is_ident(src, "Instant");
        if is_clock_type && b.is_punct(src, "::") && c.is_ident(src, "now") {
            let name = String::from_utf8_lossy(a.bytes(src)).into_owned();
            out.push(finding(
                f,
                "wall-clock",
                i,
                format!(
                    "{name}::now() in a library crate: wall-clock reads differ on replay, \
                     breaking resume determinism; derive times from Round/Timestamp instead"
                ),
            ));
        }
    }
}

/// Ambient randomness: every random decision must flow through the seeded
/// world-RNG domains (`WorldRng::domain`), or two runs of the same
/// campaign diverge.
fn check_ambient_rng(f: &SourceFile, out: &mut Vec<Finding>) {
    let src = &f.src;
    for i in 0..f.sig_len() {
        let t = f.sig_token(i);
        for name in ["thread_rng", "from_entropy", "OsRng"] {
            if t.is_ident(src, name) {
                out.push(finding(
                    f,
                    "ambient-rng",
                    i,
                    format!(
                        "{name} is ambient randomness: seed through WorldRng::domain(...) \
                         so campaigns stay reproducible"
                    ),
                ));
            }
        }
        if i + 2 < f.sig_len()
            && t.is_ident(src, "rand")
            && f.sig_token(i + 1).is_punct(src, "::")
            && f.sig_token(i + 2).is_ident(src, "random")
        {
            out.push(finding(
                f,
                "ambient-rng",
                i,
                "rand::random() is ambient randomness: seed through WorldRng::domain(...)"
                    .to_string(),
            ));
        }
    }
}

/// `HashMap`/`HashSet` in a file that produces `Persist` bytes or report
/// output: iteration order is randomized per process, so the same state
/// could serialize to different bytes — undetectable until a resumed
/// campaign's report fails a byte-for-byte comparison.
fn check_unordered_persist(f: &SourceFile, out: &mut Vec<Finding>) {
    let src = &f.src;
    for i in 0..f.sig_len() {
        let t = f.sig_token(i);
        for name in ["HashMap", "HashSet"] {
            if t.is_ident(src, name) {
                let ordered = if name == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                };
                out.push(finding(
                    f,
                    "unordered-persist",
                    i,
                    format!(
                        "{name} in a file that feeds Persist/report bytes: iteration order \
                         can leak into output; use {ordered} or sort at the emission boundary"
                    ),
                ));
            }
        }
    }
}

/// Panics reachable from the `Campaign` API. Four shapes:
/// `.unwrap(`, `.expect(`, panicking macros, and `map[&key]` indexing —
/// the exact shape of the historical `as_pos[&b.owner]` crash.
fn check_panic_in_pipeline(f: &SourceFile, out: &mut Vec<Finding>) {
    let src = &f.src;
    let n = f.sig_len();
    for i in 0..n {
        let t = f.sig_token(i);
        // `.unwrap(` / `.expect(`
        if i >= 1
            && i + 1 < n
            && (t.is_ident(src, "unwrap") || t.is_ident(src, "expect"))
            && f.sig_token(i - 1).is_punct(src, ".")
            && f.sig_token(i + 1).is_punct(src, "(")
        {
            let name = String::from_utf8_lossy(t.bytes(src)).into_owned();
            out.push(finding(
                f,
                "panic-in-pipeline",
                i,
                format!(
                    ".{name}() can panic in a pipeline crate: return a typed FbsError \
                     (see the as_pos precedent), or justify with an allow pragma"
                ),
            ));
        }
        // `panic!` and friends.
        if i + 1 < n && f.sig_token(i + 1).is_punct(src, "!") {
            for name in ["panic", "unreachable", "todo", "unimplemented"] {
                if t.is_ident(src, name) {
                    out.push(finding(
                        f,
                        "panic-in-pipeline",
                        i,
                        format!(
                            "{name}! aborts the campaign: return a typed FbsError, or \
                             justify with an allow pragma"
                        ),
                    ));
                }
            }
        }
        // `expr[&key]` — indexing with a borrowed key is map indexing,
        // which panics on a missing entry (the as_pos incident).
        if i >= 1 && i + 1 < n && t.is_punct(src, "[") && f.sig_token(i + 1).is_punct(src, "&") {
            let prev = f.sig_token(i - 1);
            let indexable =
                prev.kind == TokenKind::Ident || prev.is_punct(src, ")") || prev.is_punct(src, "]");
            if indexable {
                out.push(finding(
                    f,
                    "panic-in-pipeline",
                    i,
                    "map indexing with a borrowed key panics on missing entries \
                     (the as_pos incident); use .get() and handle None"
                        .to_string(),
                ));
            }
        }
    }
}

/// NaN-hostile comparisons in detector math: `partial_cmp(...).unwrap()`
/// panics the moment a NaN reaches a sort, and float `==` silently turns
/// NaN into `false`, corrupting threshold decisions.
fn check_nan_unsafe_cmp(f: &SourceFile, out: &mut Vec<Finding>) {
    let src = &f.src;
    let n = f.sig_len();
    for i in 0..n {
        let t = f.sig_token(i);
        if t.is_ident(src, "partial_cmp") {
            // Skip trait-impl definitions (`fn partial_cmp(...)`).
            if i >= 1 && f.sig_token(i - 1).is_ident(src, "fn") {
                continue;
            }
            // `partial_cmp(x).unwrap()` — the unwrap follows within the
            // same call chain, a handful of tokens away.
            let horizon = (i + 12).min(n);
            for j in i + 1..horizon {
                let u = f.sig_token(j);
                if (u.is_ident(src, "unwrap") || u.is_ident(src, "expect"))
                    && j >= 1
                    && f.sig_token(j - 1).is_punct(src, ".")
                {
                    out.push(finding(
                        f,
                        "nan-unsafe-cmp",
                        i,
                        "partial_cmp().unwrap() panics on NaN: use f64::total_cmp \
                         for ordering floats"
                            .to_string(),
                    ));
                    break;
                }
                if u.is_punct(src, ";") || u.is_punct(src, "{") {
                    break;
                }
            }
        }
        // Float literal on either side of `==` / `!=`.
        if t.kind == TokenKind::Punct && (t.is(src, "==") || t.is(src, "!=")) {
            let float_beside = (i >= 1 && f.sig_token(i - 1).kind == TokenKind::Float)
                || (i + 1 < n && f.sig_token(i + 1).kind == TokenKind::Float);
            if float_beside {
                out.push(finding(
                    f,
                    "nan-unsafe-cmp",
                    i,
                    "float equality in detector math is NaN-hostile and precision-fragile: \
                     compare with a tolerance, or justify with an allow pragma"
                        .to_string(),
                ));
            }
        }
    }
}

/// `#![forbid(unsafe_code)]` must appear in every crate root, so unsafe
/// cannot creep in anywhere without a visible, reviewed policy change.
fn check_missing_forbid_unsafe(f: &SourceFile, out: &mut Vec<Finding>) {
    let src = &f.src;
    let n = f.sig_len();
    for i in 0..n.saturating_sub(7) {
        if f.sig_token(i).is_punct(src, "#")
            && f.sig_token(i + 1).is_punct(src, "!")
            && f.sig_token(i + 2).is_punct(src, "[")
            && f.sig_token(i + 3).is_ident(src, "forbid")
            && f.sig_token(i + 4).is_punct(src, "(")
            && f.sig_token(i + 5).is_ident(src, "unsafe_code")
            && f.sig_token(i + 6).is_punct(src, ")")
            && f.sig_token(i + 7).is_punct(src, "]")
        {
            return;
        }
    }
    out.push(Finding {
        rule: "missing-forbid-unsafe",
        line: 1,
        col: 1,
        message: "crate root lacks #![forbid(unsafe_code)]: add it so unsafe cannot \
                  creep in without a reviewed policy change"
            .to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact domain set is pinned: adding a signal whose noise needs
    /// its own stream means registering the new domain *here*, in the
    /// same reviewed diff that introduces the `domain("…")` call —
    /// otherwise the workspace sweep fails on the unregistered literal.
    #[test]
    fn rng_domain_registry_is_pinned_sorted_and_distinct() {
        assert_eq!(
            RNG_DOMAINS,
            [
                "delegations",
                "delegations-2025",
                "faults",
                "feeds",
                "geo",
                "hosts",
                "ibr",
                "power",
                "scenario",
                "shards",
                "v6",
                "vantage-faults",
            ]
        );
        let mut sorted = RNG_DOMAINS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, RNG_DOMAINS, "registry must be sorted and distinct");
    }

    /// The emission registry shares the same discipline.
    #[test]
    fn emission_registry_is_sorted_and_distinct() {
        let mut sorted = EMISSION_FILES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, EMISSION_FILES);
    }

    /// And so does the env-derived artifact-name registry.
    #[test]
    fn emission_outputs_registry_is_sorted_and_distinct() {
        let mut sorted = EMISSION_OUTPUTS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, EMISSION_OUTPUTS);
        for name in EMISSION_OUTPUTS {
            assert!(name.ends_with(".json"), "artifact names are json: {name}");
        }
    }
}
