//! Static wire-format extraction and the frozen-version compatibility gate.
//!
//! The journal and snapshot bytes are a long-lived contract: campaigns
//! checkpointed under schema versions 2–5 must stay resumable forever.
//! [`crate::semantic`]'s `persist-field-drift` sees one `Persist` impl at
//! a time; this module sees the *whole wire format* at once. It walks
//! every `impl Persist for T` encode body in the workspace symbol graph
//! and extracts the ordered field writes — codec primitives (`put_u32`),
//! nested `persist` calls, length-prefixed sequences (`for` loops after a
//! length write), wire-tag match arms for enums — and resolves
//! `layout_version()`-style branching into one concrete layout per
//! version tag.
//!
//! The extraction serializes into a deterministic, human-diffable text IR
//! committed as `SCHEMA.lock` at the workspace root. A compatibility
//! engine ([`diff_schemas`]) compares a fresh extraction against the
//! lockfile and classifies every edit as **additive** (a new type, a new
//! version tag, a new enum variant on an unused tag) or **breaking**
//! (reorder / codec change / removal inside a frozen version, retag of an
//! existing variant). Three lint rules surface the results:
//!
//! * `frozen-version-edit` — a breaking edit to a layout the lockfile
//!   froze;
//! * `unprobed-version` — a versioned encoder writes a version tag its
//!   decoder never accepts, or vice versa (computed from source alone,
//!   no lockfile needed);
//! * `schema-lock-drift` — the extraction differs additively from
//!   `SCHEMA.lock` (regenerate with `fbs-lint schema --write-lock`).
//!
//! Everything here follows the linter's totality discipline: arbitrary
//! input bytes must produce *some* extraction, never a panic.

use crate::context::SourceFile;
use crate::graph::{is_library, SymbolGraph};
use crate::lexer::TokenKind;
use crate::parser::Span;
use crate::rules::Finding;
use crate::semantic::{Anchor, SemanticFinding};
use std::collections::{BTreeMap, BTreeSet};

/// One ordered write in a wire layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOp {
    /// A codec primitive: `w.put_u32(self.responsive)` →
    /// `codec: "u32", expr: "self.responsive"`.
    Prim { codec: String, expr: String },
    /// A nested `persist` call: `self.round.persist(w)` →
    /// `expr: "self.round"`.
    Nested { expr: String },
    /// A section whose presence the bytes themselves encode (an
    /// `if let Some(…)` the version cannot resolve, or a predicate gate
    /// with no version mapping). `expr` is the guarding expression.
    Opt { expr: String, ops: Vec<WireOp> },
    /// A repeated section (a `for` loop body — the element layout of a
    /// length-prefixed sequence). `expr` is the iterated expression.
    Rep { expr: String, ops: Vec<WireOp> },
}

/// The wire layout of one non-versioned `Persist` type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// A primitive alias registered through the codec's `persist_prim!`
    /// macro (`u8`, `u32`, …): one codec call, no structure.
    Prim { codec: String },
    /// A struct: one fixed op sequence.
    Struct { ops: Vec<WireOp> },
    /// An enum: one tagged arm per variant.
    Enum { variants: Vec<VariantLayout> },
}

/// One enum variant's wire arm: its tag byte (when the arm's first write
/// is an integer-literal primitive) and the ops that follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantLayout {
    pub name: String,
    pub tag: Option<u32>,
    pub ops: Vec<WireOp>,
}

/// One extracted type: where it lives and what it writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeSchema {
    pub name: String,
    /// Workspace-relative path of the defining impl (stable across
    /// reformatting, unlike lines — the lockfile records only this).
    pub path: String,
    /// Impl line in the *current* tree; `0` when parsed from a lockfile.
    pub line: u32,
    pub layout: Layout,
}

/// One versioned root: an encoder whose byte layout depends on a version
/// decider (`layout_version()` / `schema_version()`), resolved into one
/// concrete op sequence per version tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedSchema {
    pub name: String,
    pub path: String,
    /// Anchor line in the current tree; `0` when parsed from a lockfile.
    pub line: u32,
    /// Version tags the decider can make the encoder write.
    pub writes: BTreeSet<u32>,
    /// Version tags the decoder accepts (match arms on the version, `==`
    /// comparisons, plus `// fbs-schema: accepts(…)` annotations).
    pub reads: BTreeSet<u32>,
    /// Version tag → the concrete layout written under it.
    pub layouts: BTreeMap<u32, Vec<WireOp>>,
}

/// The whole extracted wire schema, in deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireSchema {
    pub types: BTreeMap<String, TypeSchema>,
    pub versioned: BTreeMap<String, VersionedSchema>,
}

impl WireSchema {
    /// Total number of covered impls (plain types plus versioned roots).
    pub fn impl_count(&self) -> usize {
        self.types.len() + self.versioned.len()
    }

    /// Union of every live version tag across the versioned roots.
    pub fn all_versions(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        for v in self.versioned.values() {
            out.extend(v.writes.iter().copied());
            out.extend(v.reads.iter().copied());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Extraction: raw statement walk
// ---------------------------------------------------------------------------

/// The statement-level shapes the encode-body walker recognizes before
/// version resolution flattens them.
#[derive(Debug, Clone)]
enum RawOp {
    Prim {
        codec: String,
        expr: String,
    },
    Nested {
        expr: String,
    },
    Rep {
        expr: String,
        ops: Vec<RawOp>,
    },
    IfLet {
        expr: String,
        ops: Vec<RawOp>,
    },
    IfChain {
        branches: Vec<(Cond, Vec<RawOp>)>,
        else_ops: Option<Vec<RawOp>>,
    },
    Match {
        arms: Vec<(String, Vec<RawOp>)>,
    },
}

/// A classified `if` condition.
#[derive(Debug, Clone)]
enum Cond {
    /// `version == <const>`, resolved through the workspace const table.
    VersionEq(Option<u32>),
    /// `version != <const>`.
    VersionNe(Option<u32>),
    /// Anything else, kept as normalized text for decider matching.
    Pred(String),
}

/// Joins significant tokens into canonical expression text: a single
/// space separates two word-like tokens (`as u64`), punctuation binds
/// tight (`self.len()`).
fn join_tokens(file: &SourceFile, indices: &[usize]) -> String {
    let mut out = String::new();
    for &i in indices {
        let t = file.sig_token(i);
        let text = String::from_utf8_lossy(t.bytes(&file.src));
        if !out.is_empty() {
            let prev = out.chars().next_back().unwrap_or(' ');
            let next = text.chars().next().unwrap_or(' ');
            let wordy = |c: char| c.is_ascii_alphanumeric() || c == '_';
            if wordy(prev) && wordy(next) {
                out.push(' ');
            }
        }
        out.push_str(&text);
    }
    out
}

fn token_text(file: &SourceFile, i: usize) -> String {
    String::from_utf8_lossy(file.sig_token(i).bytes(&file.src)).into_owned()
}

/// Parses an integer literal token (decimal with optional `_` separators
/// and type suffix).
fn int_value(text: &str) -> Option<u32> {
    let digits: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Builds the workspace-wide `const NAME: u32 = N;` table from library
/// files (the item parser skips consts, so this is a lexical scan).
pub fn const_table(files: &[SourceFile]) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    for file in files {
        if !is_library(file) {
            continue;
        }
        let n = file.sig_len();
        for i in 0..n.saturating_sub(6) {
            let src = &file.src;
            if !file.sig_token(i).is_ident(src, "const")
                || file.sig_token(i + 1).kind != TokenKind::Ident
                || !file.sig_token(i + 2).is_punct(src, ":")
                || !file.sig_token(i + 3).is_ident(src, "u32")
                || !file.sig_token(i + 4).is_punct(src, "=")
                || file.sig_token(i + 5).kind != TokenKind::Int
            {
                continue;
            }
            if let Some(v) = int_value(&token_text(file, i + 5)) {
                out.entry(token_text(file, i + 1)).or_insert(v);
            }
        }
    }
    out
}

/// Resolves a version operand token (const ident or integer literal).
fn resolve_version(file: &SourceFile, i: usize, consts: &BTreeMap<String, u32>) -> Option<u32> {
    let t = file.sig_token(i);
    match t.kind {
        TokenKind::Int => int_value(&token_text(file, i)),
        TokenKind::Ident => consts.get(&token_text(file, i)).copied(),
        _ => None,
    }
}

/// Advances past a balanced token pair starting at `i` (which must hold
/// the opener); returns the index one past the closer, or `hi`.
fn skip_balanced_sig(file: &SourceFile, i: usize, hi: usize, open: &str, close: &str) -> usize {
    let src = &file.src;
    let mut depth = 0usize;
    let mut j = i;
    while j < hi {
        let t = file.sig_token(j);
        if t.is_punct(src, open) {
            depth += 1;
        } else if t.is_punct(src, close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    hi
}

/// Finds the `{` that opens the block after a condition starting at `i`
/// (tracking parenthesis depth so closure braces inside calls don't
/// terminate the scan early); returns its index, or `hi`.
fn find_block_open(file: &SourceFile, i: usize, hi: usize) -> usize {
    let src = &file.src;
    let mut paren = 0usize;
    let mut j = i;
    while j < hi {
        let t = file.sig_token(j);
        if t.is_punct(src, "(") || t.is_punct(src, "[") {
            paren += 1;
        } else if t.is_punct(src, ")") || t.is_punct(src, "]") {
            paren = paren.saturating_sub(1);
        } else if t.is_punct(src, "{") && paren == 0 {
            return j;
        }
        j += 1;
    }
    hi
}

/// The receiver expression ending just before sig index `end` (exclusive):
/// the longest trailing `ident(.ident)*` run, e.g. `self.blocks` before
/// `.persist(`.
fn receiver_before(file: &SourceFile, end: usize, lo: usize) -> Option<String> {
    let src = &file.src;
    if end <= lo || file.sig_token(end - 1).kind != TokenKind::Ident {
        return None;
    }
    let mut start = end - 1;
    while start >= lo + 2
        && file.sig_token(start - 1).is_punct(src, ".")
        && matches!(
            file.sig_token(start - 2).kind,
            TokenKind::Ident | TokenKind::Int
        )
    {
        start -= 2;
    }
    let indices: Vec<usize> = (start..end).collect();
    Some(join_tokens(file, &indices))
}

/// Walks the significant tokens of `[lo, hi)` and collects the raw wire
/// operations. Total: unknown constructs are skipped token-by-token.
fn parse_raw_ops(
    file: &SourceFile,
    lo: usize,
    hi: usize,
    consts: &BTreeMap<String, u32>,
) -> Vec<RawOp> {
    let src = &file.src;
    let hi = hi.min(file.sig_len());
    let mut ops = Vec::new();
    let mut i = lo.min(hi);
    while i < hi {
        let t = file.sig_token(i);
        // `if let Some(bind) = <expr> { … }` — an optional wire section.
        if t.is_ident(src, "if") && i + 1 < hi && file.sig_token(i + 1).is_ident(src, "let") {
            let eq = (i + 2..hi).find(|&j| file.sig_token(j).is_punct(src, "="));
            let Some(eq) = eq else {
                i += 1;
                continue;
            };
            let open = find_block_open(file, eq + 1, hi);
            if open >= hi {
                i += 1;
                continue;
            }
            let expr_indices: Vec<usize> = (eq + 1..open)
                .filter(|&j| !file.sig_token(j).is_punct(src, "&"))
                .collect();
            let expr = join_tokens(file, &expr_indices);
            let close = skip_balanced_sig(file, open, hi, "{", "}");
            let inner = parse_raw_ops(file, open + 1, close.saturating_sub(1), consts);
            ops.push(RawOp::IfLet { expr, ops: inner });
            i = close;
            continue;
        }
        // `if <cond> { … } else if … { … } else { … }` — a gated chain.
        if t.is_ident(src, "if") {
            let mut branches = Vec::new();
            let mut else_ops = None;
            let mut j = i;
            loop {
                // At `j`: the `if` keyword. Condition runs to the block.
                let open = find_block_open(file, j + 1, hi);
                if open >= hi {
                    break;
                }
                let cond = classify_cond(file, j + 1, open, consts);
                let close = skip_balanced_sig(file, open, hi, "{", "}");
                let inner = parse_raw_ops(file, open + 1, close.saturating_sub(1), consts);
                branches.push((cond, inner));
                j = close;
                if j < hi && file.sig_token(j).is_ident(src, "else") {
                    if j + 1 < hi && file.sig_token(j + 1).is_ident(src, "if") {
                        j += 1; // continue the chain at the nested `if`
                        continue;
                    }
                    let eopen = find_block_open(file, j + 1, hi);
                    if eopen < hi {
                        let eclose = skip_balanced_sig(file, eopen, hi, "{", "}");
                        else_ops = Some(parse_raw_ops(
                            file,
                            eopen + 1,
                            eclose.saturating_sub(1),
                            consts,
                        ));
                        j = eclose;
                    }
                }
                break;
            }
            if !branches.is_empty() {
                ops.push(RawOp::IfChain { branches, else_ops });
                i = j.max(i + 1);
                continue;
            }
            i += 1;
            continue;
        }
        // `match <scrutinee> { arms }` — enum wire arms.
        if t.is_ident(src, "match") {
            let open = find_block_open(file, i + 1, hi);
            if open >= hi {
                i += 1;
                continue;
            }
            let close = skip_balanced_sig(file, open, hi, "{", "}");
            let arms = parse_match_arms(file, open + 1, close.saturating_sub(1), consts);
            ops.push(RawOp::Match { arms });
            i = close;
            continue;
        }
        // `for <pat> in <expr> { … }` — a repeated (sequence) section.
        if t.is_ident(src, "for") {
            let kw_in = (i + 1..hi).find(|&j| file.sig_token(j).is_ident(src, "in"));
            let Some(kw_in) = kw_in else {
                i += 1;
                continue;
            };
            let open = find_block_open(file, kw_in + 1, hi);
            if open >= hi {
                i += 1;
                continue;
            }
            let expr_indices: Vec<usize> = (kw_in + 1..open)
                .filter(|&j| !file.sig_token(j).is_punct(src, "&"))
                .collect();
            let expr = join_tokens(file, &expr_indices);
            let close = skip_balanced_sig(file, open, hi, "{", "}");
            let inner = parse_raw_ops(file, open + 1, close.saturating_sub(1), consts);
            ops.push(RawOp::Rep { expr, ops: inner });
            i = close;
            continue;
        }
        // `<writer>.put_<codec>(<expr>)` — a primitive write.
        if t.kind == TokenKind::Ident
            && i + 3 < hi
            && file.sig_token(i + 1).is_punct(src, ".")
            && file.sig_token(i + 2).kind == TokenKind::Ident
            && token_text(file, i + 2).starts_with("put_")
            && file.sig_token(i + 3).is_punct(src, "(")
        {
            let codec = token_text(file, i + 2)["put_".len()..].to_string();
            let end = skip_balanced_sig(file, i + 3, hi, "(", ")");
            let arg_indices: Vec<usize> = (i + 4..end.saturating_sub(1)).collect();
            let expr = join_tokens(file, &arg_indices);
            ops.push(RawOp::Prim { codec, expr });
            i = end;
            continue;
        }
        // `<receiver>.persist(<writer>)` — a nested layout.
        if t.is_punct(src, ".")
            && i + 2 < hi
            && file.sig_token(i + 1).is_ident(src, "persist")
            && file.sig_token(i + 2).is_punct(src, "(")
        {
            if let Some(expr) = receiver_before(file, i, lo) {
                ops.push(RawOp::Nested { expr });
            }
            i = skip_balanced_sig(file, i + 2, hi, "(", ")");
            continue;
        }
        i += 1;
    }
    ops
}

/// Classifies the condition tokens of `[lo, hi)`.
fn classify_cond(file: &SourceFile, lo: usize, hi: usize, consts: &BTreeMap<String, u32>) -> Cond {
    let src = &file.src;
    // The canonical version comparison is exactly `version ==/!= X`.
    if hi == lo + 3 && file.sig_token(lo).is_ident(src, "version") {
        if file.sig_token(lo + 1).is_punct(src, "==") {
            return Cond::VersionEq(resolve_version(file, lo + 2, consts));
        }
        if file.sig_token(lo + 1).is_punct(src, "!=") {
            return Cond::VersionNe(resolve_version(file, lo + 2, consts));
        }
    }
    let indices: Vec<usize> = (lo..hi).collect();
    Cond::Pred(join_tokens(file, &indices))
}

/// Splits a match body `[lo, hi)` into `(pattern text, arm ops)` pairs.
fn parse_match_arms(
    file: &SourceFile,
    lo: usize,
    hi: usize,
    consts: &BTreeMap<String, u32>,
) -> Vec<(String, Vec<RawOp>)> {
    let src = &file.src;
    let mut arms = Vec::new();
    let mut i = lo;
    while i < hi {
        // Pattern: tokens until `=>` at depth 0.
        let mut depth = 0usize;
        let mut j = i;
        let mut arrow = None;
        while j < hi {
            let t = file.sig_token(j);
            if t.is_punct(src, "(") || t.is_punct(src, "[") || t.is_punct(src, "{") {
                depth += 1;
            } else if t.is_punct(src, ")") || t.is_punct(src, "]") || t.is_punct(src, "}") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(src, "=>") {
                arrow = Some(j);
                break;
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let pat_indices: Vec<usize> = (i..arrow).collect();
        let pattern = join_tokens(file, &pat_indices);
        // Body: a block, or an expression up to the next depth-0 comma.
        let (ops, next) = if arrow + 1 < hi && file.sig_token(arrow + 1).is_punct(src, "{") {
            let close = skip_balanced_sig(file, arrow + 1, hi, "{", "}");
            let ops = parse_raw_ops(file, arrow + 2, close.saturating_sub(1), consts);
            let mut n = close;
            if n < hi && file.sig_token(n).is_punct(src, ",") {
                n += 1;
            }
            (ops, n)
        } else {
            let mut depth = 0usize;
            let mut k = arrow + 1;
            while k < hi {
                let t = file.sig_token(k);
                if t.is_punct(src, "(") || t.is_punct(src, "[") || t.is_punct(src, "{") {
                    depth += 1;
                } else if t.is_punct(src, ")") || t.is_punct(src, "]") || t.is_punct(src, "}") {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && t.is_punct(src, ",") {
                    break;
                }
                k += 1;
            }
            let ops = parse_raw_ops(file, arrow + 1, k, consts);
            (ops, (k + 1).min(hi))
        };
        if !pattern.is_empty() {
            arms.push((pattern, ops));
        }
        i = next.max(i + 1);
    }
    arms
}

/// The variant name of a match-arm pattern: the identifier directly
/// before the payload (`Feed::Accepted { … }` → `Accepted`), else the
/// last path segment (`None` → `None`).
fn variant_name(pattern: &str) -> String {
    let head: &str = pattern
        .split(['{', '('])
        .next()
        .unwrap_or(pattern)
        .trim_end_matches([' ', ':']);
    head.rsplit([':', ' ']).next().unwrap_or(head).to_string()
}

// ---------------------------------------------------------------------------
// Version resolution
// ---------------------------------------------------------------------------

/// A parsed version decider (`layout_version()` / `schema_version()`):
/// an if/else-if chain of predicates, each returning a version constant.
#[derive(Debug, Clone)]
struct Decider {
    /// `(normalized condition text, version returned when it is true)`,
    /// in evaluation order.
    branches: Vec<(String, u32)>,
    /// Version returned when every predicate is false.
    else_version: Option<u32>,
}

impl Decider {
    fn write_versions(&self) -> BTreeSet<u32> {
        let mut out: BTreeSet<u32> = self.branches.iter().map(|&(_, v)| v).collect();
        out.extend(self.else_version);
        out
    }

    /// Index of the branch producing `v`, or `usize::MAX` for the else.
    fn chosen_index(&self, v: u32) -> usize {
        self.branches
            .iter()
            .position(|&(_, bv)| bv == v)
            .unwrap_or(usize::MAX)
    }

    /// Truth of a predicate (by normalized text) under version `v`:
    /// `Some(bool)` when the decider pins it, `None` when unknowable
    /// (the decider short-circuited before evaluating it).
    fn eval(&self, cond: &str, v: u32) -> Option<bool> {
        let j = self.branches.iter().position(|(c, _)| c == cond)?;
        let chosen = self.chosen_index(v);
        if chosen == usize::MAX {
            // The else branch: every predicate evaluated false.
            return Some(false);
        }
        match j.cmp(&chosen) {
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Equal => Some(true),
            std::cmp::Ordering::Greater => None,
        }
    }
}

/// Parses a decider body: each branch block must reduce to a single
/// version constant or integer literal.
fn parse_decider(file: &SourceFile, span: Span, consts: &BTreeMap<String, u32>) -> Option<Decider> {
    let src = &file.src;
    let hi = span.hi.min(file.sig_len());
    let lo = span.lo.min(hi);
    let version_of = |file: &SourceFile, b_lo: usize, b_hi: usize| -> Option<u32> {
        let inner: Vec<usize> = (b_lo..b_hi).collect();
        match inner.as_slice() {
            [only] => resolve_version(file, *only, consts),
            _ => None,
        }
    };
    let mut branches = Vec::new();
    let mut else_version = None;
    let mut i = lo;
    while i < hi {
        if !file.sig_token(i).is_ident(src, "if") {
            i += 1;
            continue;
        }
        loop {
            let open = find_block_open(file, i + 1, hi);
            if open >= hi {
                return None;
            }
            let cond_indices: Vec<usize> = (i + 1..open).collect();
            let cond = join_tokens(file, &cond_indices);
            let close = skip_balanced_sig(file, open, hi, "{", "}");
            let v = version_of(file, open + 1, close.saturating_sub(1))?;
            branches.push((cond, v));
            i = close;
            if i < hi && file.sig_token(i).is_ident(src, "else") {
                if i + 1 < hi && file.sig_token(i + 1).is_ident(src, "if") {
                    i += 1;
                    continue;
                }
                let eopen = find_block_open(file, i + 1, hi);
                if eopen < hi {
                    let eclose = skip_balanced_sig(file, eopen, hi, "{", "}");
                    else_version = version_of(file, eopen + 1, eclose.saturating_sub(1));
                }
            }
            break;
        }
        break;
    }
    if branches.is_empty() {
        return None;
    }
    Some(Decider {
        branches,
        else_version,
    })
}

/// Flattens raw ops into the concrete layout written under version `v`.
fn flatten_for_version(raw: &[RawOp], decider: &Decider, v: u32) -> Vec<WireOp> {
    let mut out = Vec::new();
    for op in raw {
        match op {
            RawOp::Prim { codec, expr } => out.push(WireOp::Prim {
                codec: codec.clone(),
                expr: expr.clone(),
            }),
            RawOp::Nested { expr } => out.push(WireOp::Nested { expr: expr.clone() }),
            RawOp::Rep { expr, ops } => out.push(WireOp::Rep {
                expr: expr.clone(),
                ops: flatten_for_version(ops, decider, v),
            }),
            RawOp::IfLet { expr, ops } => {
                // `if let Some(x) = self.foo` gates on `self.foo.is_some()`,
                // which the decider may pin for this version.
                let key = format!("{expr}.is_some()");
                match decider.eval(&key, v) {
                    Some(true) => out.extend(flatten_for_version(ops, decider, v)),
                    Some(false) => {}
                    None => out.push(WireOp::Opt {
                        expr: expr.clone(),
                        ops: flatten_for_version(ops, decider, v),
                    }),
                }
            }
            RawOp::IfChain { branches, else_ops } => {
                flatten_chain(branches, else_ops.as_deref(), decider, v, &mut out);
            }
            RawOp::Match { arms } => {
                // A match inside a versioned body: keep each arm as an
                // optional section keyed by its pattern.
                for (pat, ops) in arms {
                    out.push(WireOp::Opt {
                        expr: pat.clone(),
                        ops: flatten_for_version(ops, decider, v),
                    });
                }
            }
        }
    }
    out
}

/// Resolves one if/else chain under version `v`, appending the ops of
/// whichever branch the version pins (or `Opt` sections once a predicate
/// becomes unknowable).
fn flatten_chain(
    branches: &[(Cond, Vec<RawOp>)],
    else_ops: Option<&[RawOp]>,
    decider: &Decider,
    v: u32,
    out: &mut Vec<WireOp>,
) {
    let mut unknown = false;
    for (cond, ops) in branches {
        let truth = if unknown {
            None
        } else {
            match cond {
                Cond::VersionEq(Some(x)) => Some(v == *x),
                Cond::VersionNe(Some(x)) => Some(v != *x),
                Cond::VersionEq(None) | Cond::VersionNe(None) => None,
                Cond::Pred(text) => decider.eval(text, v),
            }
        };
        match truth {
            Some(true) => {
                out.extend(flatten_for_version(ops, decider, v));
                return;
            }
            Some(false) => {}
            None => {
                unknown = true;
                let label = match cond {
                    Cond::Pred(text) => text.clone(),
                    Cond::VersionEq(_) | Cond::VersionNe(_) => "version".to_string(),
                };
                out.push(WireOp::Opt {
                    expr: label,
                    ops: flatten_for_version(ops, decider, v),
                });
            }
        }
    }
    if let Some(eops) = else_ops {
        if unknown {
            out.push(WireOp::Opt {
                expr: "else".to_string(),
                ops: flatten_for_version(eops, decider, v),
            });
        } else {
            out.extend(flatten_for_version(eops, decider, v));
        }
    }
}

/// Flattens raw ops with no version context (plain, non-versioned types):
/// gates become `Opt` sections, matches become variant arms upstream.
fn flatten_plain(raw: &[RawOp]) -> Vec<WireOp> {
    let mut out = Vec::new();
    for op in raw {
        match op {
            RawOp::Prim { codec, expr } => out.push(WireOp::Prim {
                codec: codec.clone(),
                expr: expr.clone(),
            }),
            RawOp::Nested { expr } => out.push(WireOp::Nested { expr: expr.clone() }),
            RawOp::Rep { expr, ops } => out.push(WireOp::Rep {
                expr: expr.clone(),
                ops: flatten_plain(ops),
            }),
            RawOp::IfLet { expr, ops } => out.push(WireOp::Opt {
                expr: expr.clone(),
                ops: flatten_plain(ops),
            }),
            RawOp::IfChain { branches, else_ops } => {
                for (cond, ops) in branches {
                    let label = match cond {
                        Cond::Pred(text) => text.clone(),
                        Cond::VersionEq(_) | Cond::VersionNe(_) => "version".to_string(),
                    };
                    out.push(WireOp::Opt {
                        expr: label,
                        ops: flatten_plain(ops),
                    });
                }
                if let Some(eops) = else_ops {
                    out.push(WireOp::Opt {
                        expr: "else".to_string(),
                        ops: flatten_plain(eops),
                    });
                }
            }
            RawOp::Match { arms } => {
                for (pat, ops) in arms {
                    out.push(WireOp::Opt {
                        expr: pat.clone(),
                        ops: flatten_plain(ops),
                    });
                }
            }
        }
    }
    out
}

/// Converts match arms into enum variant layouts, splitting off a leading
/// integer-literal tag write.
fn variants_from_arms(arms: &[(String, Vec<RawOp>)]) -> Vec<VariantLayout> {
    let mut out = Vec::new();
    for (pat, raw) in arms {
        let mut ops = flatten_plain(raw);
        let mut tag = None;
        if let Some(WireOp::Prim { codec, expr }) = ops.first() {
            if matches!(codec.as_str(), "u8" | "u16" | "u32") {
                if let Some(v) = int_value(expr) {
                    if expr.chars().all(|c| c.is_ascii_digit() || c == '_') {
                        tag = Some(v);
                        ops.remove(0);
                    }
                }
            }
        }
        out.push(VariantLayout {
            name: variant_name(pat),
            tag,
            ops,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Decode-side version acceptance
// ---------------------------------------------------------------------------

/// Version tags a decode body accepts: `match version { <const> => … }`
/// arms, `version == <const>` comparisons, and
/// `// fbs-schema: accepts(n, m)` annotations in the body's line range.
fn read_versions(file: &SourceFile, span: Span, consts: &BTreeMap<String, u32>) -> BTreeSet<u32> {
    let src = &file.src;
    let hi = span.hi.min(file.sig_len());
    let lo = span.lo.min(hi);
    let mut out = BTreeSet::new();
    let mut i = lo;
    while i < hi {
        let t = file.sig_token(i);
        if t.is_ident(src, "match")
            && i + 2 < hi
            && file.sig_token(i + 1).is_ident(src, "version")
            && file.sig_token(i + 2).is_punct(src, "{")
        {
            let close = skip_balanced_sig(file, i + 2, hi, "{", "}");
            for (pat, _) in parse_match_arms(file, i + 3, close.saturating_sub(1), consts) {
                if let Some(v) = consts.get(&pat).copied().or_else(|| int_value(&pat)) {
                    out.insert(v);
                }
            }
            i = close;
            continue;
        }
        if t.is_ident(src, "version") && i + 2 < hi && file.sig_token(i + 1).is_punct(src, "==") {
            if let Some(v) = resolve_version(file, i + 2, consts) {
                out.insert(v);
            }
        }
        i += 1;
    }
    // Annotations live in comment tokens, which `sig` filters out — scan
    // the raw token stream across the body's line range.
    if lo < hi {
        let first = file.sig_token(lo).line;
        let last = file.sig_token(hi - 1).line;
        for t in &file.tokens {
            if t.kind != TokenKind::LineComment || t.line < first || t.line > last {
                continue;
            }
            let text = String::from_utf8_lossy(t.bytes(src));
            if let Some(rest) = text.split("fbs-schema: accepts(").nth(1) {
                if let Some(list) = rest.split(')').next() {
                    for part in list.split(',') {
                        if let Some(v) = int_value(part.trim()) {
                            out.insert(v);
                        }
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Whole-workspace extraction
// ---------------------------------------------------------------------------

/// Names a version decider may carry.
const DECIDER_NAMES: &[&str] = &["layout_version", "schema_version"];

/// Statically extracts the wire schema of every `Persist` impl (and every
/// `persist_into`/`restore_from` inherent pair) in library files.
pub fn extract(files: &[SourceFile], g: &SymbolGraph) -> WireSchema {
    let consts = const_table(files);
    let mut schema = WireSchema::default();

    // Version deciders, by type name.
    let mut deciders: BTreeMap<String, Decider> = BTreeMap::new();
    for f in &g.fns {
        if !DECIDER_NAMES.contains(&f.name.as_str()) || !is_library(&files[f.file]) {
            continue;
        }
        let (Some(ty), Some(body)) = (&f.impl_type, f.body) else {
            continue;
        };
        if let Some(d) = parse_decider(&files[f.file], body, &consts) {
            deciders.entry(ty.clone()).or_insert(d);
        }
    }

    // `persist_prim!` codec aliases (the macro body is opaque to the item
    // parser; the invocations are a fixed lexical shape).
    for (fi, file) in files.iter().enumerate() {
        if !is_library(file) {
            continue;
        }
        let src = &file.src;
        let n = file.sig_len();
        for i in 0..n.saturating_sub(5) {
            if !file.sig_token(i).is_ident(src, "persist_prim")
                || !file.sig_token(i + 1).is_punct(src, "!")
                || !file.sig_token(i + 2).is_punct(src, "(")
                || file.sig_token(i + 3).kind != TokenKind::Ident
            {
                continue;
            }
            let name = token_text(file, i + 3);
            // Second argument names the writer method (`put_u8`, …).
            let codec = (i + 4..n.min(i + 8))
                .map(|j| token_text(file, j))
                .find(|t| t.starts_with("put_"))
                .map(|t| t["put_".len()..].to_string());
            let Some(codec) = codec else { continue };
            schema.types.entry(name.clone()).or_insert(TypeSchema {
                name,
                path: file.meta.path.clone(),
                line: file.sig_token(i).line,
                layout: Layout::Prim { codec },
            });
            let _ = fi;
        }
    }

    // Plain `impl Persist for T` layouts.
    for pi in &g.persist_impls {
        let file = &files[pi.file];
        if !is_library(file) || pi.type_name.is_empty() {
            continue;
        }
        let Some(encode) = pi.encode else { continue };
        if let Some(decider) = deciders.get(&pi.type_name) {
            // A versioned root: resolve one layout per version.
            let raw = parse_raw_ops(file, encode.lo, encode.hi, &consts);
            let writes = decider.write_versions();
            let layouts: BTreeMap<u32, Vec<WireOp>> = writes
                .iter()
                .map(|&v| (v, flatten_for_version(&raw, decider, v)))
                .collect();
            let reads = pi
                .decode
                .map(|d| read_versions(file, d, &consts))
                .unwrap_or_default();
            schema
                .versioned
                .entry(pi.type_name.clone())
                .or_insert(VersionedSchema {
                    name: pi.type_name.clone(),
                    path: file.meta.path.clone(),
                    line: pi.line,
                    writes,
                    reads,
                    layouts,
                });
            continue;
        }
        let raw = parse_raw_ops(file, encode.lo, encode.hi, &consts);
        let layout = match raw.as_slice() {
            [RawOp::Match { arms }] => Layout::Enum {
                variants: variants_from_arms(arms),
            },
            _ => Layout::Struct {
                ops: flatten_plain(&raw),
            },
        };
        schema
            .types
            .entry(pi.type_name.clone())
            .or_insert(TypeSchema {
                name: pi.type_name.clone(),
                path: file.meta.path.clone(),
                line: pi.line,
                layout,
            });
    }

    // Inherent `persist_into` / `restore_from` pairs (snapshot encoders
    // that are not `Persist` impls), e.g. the pipeline state.
    let mut pairs: BTreeMap<String, (usize, Span, u32)> = BTreeMap::new();
    for f in &g.fns {
        if f.name == "persist_into" && is_library(&files[f.file]) {
            if let (Some(ty), Some(body)) = (&f.impl_type, f.body) {
                pairs.entry(ty.clone()).or_insert((f.file, body, f.line));
            }
        }
    }
    for (ty, (fi, encode, line)) in pairs {
        if schema.versioned.contains_key(&ty) || schema.types.contains_key(&ty) {
            continue;
        }
        let Some(decider) = deciders.get(&ty) else {
            continue;
        };
        let file = &files[fi];
        let raw = parse_raw_ops(file, encode.lo, encode.hi, &consts);
        let writes = decider.write_versions();
        let layouts: BTreeMap<u32, Vec<WireOp>> = writes
            .iter()
            .map(|&v| (v, flatten_for_version(&raw, decider, v)))
            .collect();
        let reads = g
            .fns
            .iter()
            .find(|f| f.name == "restore_from" && f.impl_type.as_deref() == Some(ty.as_str()))
            .and_then(|f| f.body.map(|b| read_versions(&files[f.file], b, &consts)))
            .unwrap_or_default();
        schema.versioned.insert(
            ty.clone(),
            VersionedSchema {
                name: ty,
                path: file.meta.path.clone(),
                line,
                writes,
                reads,
                layouts,
            },
        );
    }

    schema
}

// ---------------------------------------------------------------------------
// Lockfile serialization
// ---------------------------------------------------------------------------

const LOCK_HEADER: &str = "\
# SCHEMA.lock — wire layouts statically extracted from every Persist impl.
# Generated by `fbs-lint schema --write-lock`; CI runs `fbs-lint schema
# --check` and fails on drift. Versions v2–v5 are frozen (DESIGN.md): any
# edit to a layout below is a breaking change unless it ships behind a
# new version tag.";

fn render_ops(out: &mut String, ops: &[WireOp], indent: usize) {
    for op in ops {
        for _ in 0..indent {
            out.push(' ');
        }
        match op {
            WireOp::Prim { codec, expr } => {
                out.push_str(codec);
                out.push(' ');
                out.push_str(expr);
                out.push('\n');
            }
            WireOp::Nested { expr } => {
                out.push_str("nested ");
                out.push_str(expr);
                out.push('\n');
            }
            WireOp::Opt { expr, ops } => {
                out.push_str("opt ");
                out.push_str(expr);
                out.push('\n');
                render_ops(out, ops, indent + 2);
            }
            WireOp::Rep { expr, ops } => {
                out.push_str("rep ");
                out.push_str(expr);
                out.push('\n');
                render_ops(out, ops, indent + 2);
            }
        }
    }
}

/// One op as a single lock line (used in diff messages).
pub fn op_text(op: &WireOp) -> String {
    match op {
        WireOp::Prim { codec, expr } => format!("{codec} {expr}"),
        WireOp::Nested { expr } => format!("nested {expr}"),
        WireOp::Opt { expr, .. } => format!("opt {expr}"),
        WireOp::Rep { expr, .. } => format!("rep {expr}"),
    }
}

/// Serializes a schema into the canonical lockfile text.
pub fn render_lock(schema: &WireSchema) -> String {
    let mut out = String::from(LOCK_HEADER);
    out.push_str("\nformat 1\n");
    out.push_str(&format!("impls {}\n", schema.impl_count()));
    let versions: Vec<String> = schema.all_versions().iter().map(u32::to_string).collect();
    out.push_str(&format!("versions {}\n", versions.join(" ")));
    for t in schema.types.values() {
        out.push('\n');
        match &t.layout {
            Layout::Prim { codec } => {
                out.push_str(&format!("prim {} {} {}\n", t.name, codec, t.path));
            }
            Layout::Struct { ops } => {
                out.push_str(&format!("struct {} {}\n", t.name, t.path));
                render_ops(&mut out, ops, 2);
            }
            Layout::Enum { variants } => {
                out.push_str(&format!("enum {} {}\n", t.name, t.path));
                for v in variants {
                    let tag = v
                        .tag
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| "?".to_string());
                    out.push_str(&format!("  variant {} tag={}\n", v.name, tag));
                    render_ops(&mut out, &v.ops, 4);
                }
            }
        }
    }
    for v in schema.versioned.values() {
        out.push('\n');
        out.push_str(&format!("versioned {} {}\n", v.name, v.path));
        let fmt_set =
            |s: &BTreeSet<u32>| s.iter().map(u32::to_string).collect::<Vec<_>>().join(" ");
        out.push_str(&format!("  writes {}\n", fmt_set(&v.writes)));
        out.push_str(&format!("  reads {}\n", fmt_set(&v.reads)));
        for (tag, ops) in &v.layouts {
            out.push_str(&format!("  v{tag}\n"));
            render_ops(&mut out, ops, 4);
        }
    }
    out
}

/// Parses lockfile text back into the schema IR (lines are `0`: the
/// lockfile records layouts, not source positions).
pub fn parse_lock(text: &str) -> Result<WireSchema, String> {
    let mut schema = WireSchema::default();
    // What the indentation stack currently appends ops into.
    enum Target {
        None,
        Struct(String),
        EnumVariant(String, usize),
        Versioned(String, u32),
    }
    let mut target = Target::None;
    // Open `opt`/`rep` containers: (indent of their children, chain of
    // child indices from the target's op vec).
    let mut containers: Vec<(usize, usize)> = Vec::new();

    fn ops_slot<'a>(schema: &'a mut WireSchema, target: &Target) -> Option<&'a mut Vec<WireOp>> {
        match target {
            Target::None => None,
            Target::Struct(name) => match &mut schema.types.get_mut(name)?.layout {
                Layout::Struct { ops } => Some(ops),
                _ => None,
            },
            Target::EnumVariant(name, vi) => match &mut schema.types.get_mut(name)?.layout {
                Layout::Enum { variants } => Some(&mut variants.get_mut(*vi)?.ops),
                _ => None,
            },
            Target::Versioned(name, tag) => schema.versioned.get_mut(name)?.layouts.get_mut(tag),
        }
    }

    fn descend<'a>(ops: &'a mut Vec<WireOp>, chain: &[usize]) -> Option<&'a mut Vec<WireOp>> {
        let mut cur = ops;
        for &idx in chain {
            cur = match cur.get_mut(idx)? {
                WireOp::Opt { ops, .. } | WireOp::Rep { ops, .. } => ops,
                _ => return None,
            };
        }
        Some(cur)
    }

    for (lineno, raw_line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw_line.trim_end();
        if line.is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let indent = line.len() - line.trim_start().len();
        let words: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: &str| format!("SCHEMA.lock:{lineno}: {msg}");
        if indent == 0 {
            containers.clear();
            match words.as_slice() {
                ["format", v] => {
                    if *v != "1" {
                        return Err(err(&format!("unsupported lock format {v}")));
                    }
                    target = Target::None;
                }
                ["impls", ..] | ["versions", ..] => target = Target::None,
                ["prim", name, codec, path] => {
                    schema.types.insert(
                        (*name).to_string(),
                        TypeSchema {
                            name: (*name).to_string(),
                            path: (*path).to_string(),
                            line: 0,
                            layout: Layout::Prim {
                                codec: (*codec).to_string(),
                            },
                        },
                    );
                    target = Target::None;
                }
                ["struct", name, path] => {
                    schema.types.insert(
                        (*name).to_string(),
                        TypeSchema {
                            name: (*name).to_string(),
                            path: (*path).to_string(),
                            line: 0,
                            layout: Layout::Struct { ops: Vec::new() },
                        },
                    );
                    target = Target::Struct((*name).to_string());
                }
                ["enum", name, path] => {
                    schema.types.insert(
                        (*name).to_string(),
                        TypeSchema {
                            name: (*name).to_string(),
                            path: (*path).to_string(),
                            line: 0,
                            layout: Layout::Enum {
                                variants: Vec::new(),
                            },
                        },
                    );
                    target = Target::EnumVariant((*name).to_string(), 0);
                }
                ["versioned", name, path] => {
                    schema.versioned.insert(
                        (*name).to_string(),
                        VersionedSchema {
                            name: (*name).to_string(),
                            path: (*path).to_string(),
                            line: 0,
                            writes: BTreeSet::new(),
                            reads: BTreeSet::new(),
                            layouts: BTreeMap::new(),
                        },
                    );
                    target = Target::Versioned((*name).to_string(), u32::MAX);
                }
                _ => return Err(err("unrecognized top-level line")),
            }
            continue;
        }
        // Structural indent-2 lines inside enum / versioned blocks.
        if indent == 2 {
            containers.clear();
            match (&target, words.as_slice()) {
                (Target::EnumVariant(name, _), ["variant", vname, tag]) => {
                    let tag_val = tag
                        .strip_prefix("tag=")
                        .ok_or_else(|| err("variant line needs tag=<n>"))?;
                    let tag = if tag_val == "?" {
                        None
                    } else {
                        Some(tag_val.parse::<u32>().map_err(|_| err("bad variant tag"))?)
                    };
                    let name = name.clone();
                    let vi = match &mut schema
                        .types
                        .get_mut(&name)
                        .ok_or_else(|| err("variant outside enum"))?
                        .layout
                    {
                        Layout::Enum { variants } => {
                            variants.push(VariantLayout {
                                name: (*vname).to_string(),
                                tag,
                                ops: Vec::new(),
                            });
                            variants.len() - 1
                        }
                        _ => return Err(err("variant outside enum")),
                    };
                    target = Target::EnumVariant(name, vi);
                    continue;
                }
                (Target::Versioned(name, _), ["writes", rest @ ..]) => {
                    let set = parse_version_set(rest).map_err(|m| err(&m))?;
                    schema
                        .versioned
                        .get_mut(name)
                        .ok_or_else(|| err("writes outside versioned"))?
                        .writes = set;
                    continue;
                }
                (Target::Versioned(name, _), ["reads", rest @ ..]) => {
                    let set = parse_version_set(rest).map_err(|m| err(&m))?;
                    schema
                        .versioned
                        .get_mut(name)
                        .ok_or_else(|| err("reads outside versioned"))?
                        .reads = set;
                    continue;
                }
                (Target::Versioned(name, _), [vtag]) if vtag.starts_with('v') => {
                    let tag: u32 = vtag[1..].parse().map_err(|_| err("bad version tag line"))?;
                    let name = name.clone();
                    schema
                        .versioned
                        .get_mut(&name)
                        .ok_or_else(|| err("version tag outside versioned"))?
                        .layouts
                        .insert(tag, Vec::new());
                    target = Target::Versioned(name, tag);
                    continue;
                }
                _ => {}
            }
        }
        // An op line: find its container by indent.
        let base_indent = match &target {
            Target::Struct(_) => 2,
            Target::EnumVariant(..) | Target::Versioned(..) => 4,
            Target::None => return Err(err("op line outside any block")),
        };
        while let Some(&(ci, _)) = containers.last() {
            if indent <= ci.saturating_sub(2) || indent < ci {
                containers.pop();
            } else {
                break;
            }
        }
        let expected = base_indent + 2 * containers.len();
        if indent != expected {
            return Err(err(&format!("bad indent {indent}, expected {expected}")));
        }
        let (head, rest) = match words.as_slice() {
            [head, rest @ ..] if !rest.is_empty() => (*head, rest.join(" ")),
            _ => return Err(err("op line needs an operand")),
        };
        let op = match head {
            "nested" => WireOp::Nested { expr: rest },
            "opt" => WireOp::Opt {
                expr: rest,
                ops: Vec::new(),
            },
            "rep" => WireOp::Rep {
                expr: rest,
                ops: Vec::new(),
            },
            codec @ ("u8" | "u16" | "u32" | "u64" | "i64" | "f64" | "bool" | "str" | "raw") => {
                WireOp::Prim {
                    codec: codec.to_string(),
                    expr: rest,
                }
            }
            other => return Err(err(&format!("unknown op `{other}`"))),
        };
        let is_container = matches!(op, WireOp::Opt { .. } | WireOp::Rep { .. });
        let chain: Vec<usize> = containers.iter().map(|&(_, idx)| idx).collect();
        let slot = ops_slot(&mut schema, &target).ok_or_else(|| err("op outside a layout"))?;
        let ops = descend(slot, &chain).ok_or_else(|| err("container nesting broken"))?;
        ops.push(op);
        if is_container {
            containers.push((indent + 2, ops.len() - 1));
        }
    }
    Ok(schema)
}

fn parse_version_set(words: &[&str]) -> Result<BTreeSet<u32>, String> {
    let mut out = BTreeSet::new();
    for w in words {
        out.insert(
            w.parse::<u32>()
                .map_err(|_| format!("bad version number `{w}`"))?,
        );
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Compatibility classification
// ---------------------------------------------------------------------------

/// How an edit relates to the frozen contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// New surface only: a new type, a new version tag, a new enum
    /// variant on an unused tag. The lockfile needs regeneration, old
    /// readers keep working.
    Additive,
    /// The frozen bytes changed: reorder, codec change, removal, retag.
    Breaking,
}

/// One classified difference between the lockfile and a fresh extraction.
#[derive(Debug, Clone)]
pub struct SchemaEdit {
    pub kind: EditKind,
    pub type_name: String,
    /// Anchor path (the new side when the type still exists).
    pub path: String,
    /// Anchor line in the new extraction (`0` when the type is gone).
    pub line: u32,
    pub detail: String,
}

/// The first difference between two op sequences, described for humans.
fn describe_op_diff(old: &[WireOp], new: &[WireOp]) -> Option<String> {
    if old == new {
        return None;
    }
    let mut old_sorted: Vec<String> = old.iter().map(op_text).collect();
    let mut new_sorted: Vec<String> = new.iter().map(op_text).collect();
    old_sorted.sort();
    new_sorted.sort();
    let idx = old
        .iter()
        .zip(new.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| old.len().min(new.len()));
    if old.len() == new.len() && old_sorted == new_sorted {
        return Some(format!(
            "field order changed at position {idx}: `{}` is now `{}`",
            old.get(idx).map(op_text).unwrap_or_default(),
            new.get(idx).map(op_text).unwrap_or_default(),
        ));
    }
    if let (Some(a), Some(b)) = (old.get(idx), new.get(idx)) {
        if let (
            WireOp::Prim {
                codec: ca,
                expr: ea,
            },
            WireOp::Prim {
                codec: cb,
                expr: eb,
            },
        ) = (a, b)
        {
            if ea == eb && ca != cb {
                return Some(format!(
                    "codec of `{ea}` changed at position {idx}: {ca} → {cb}"
                ));
            }
        }
    }
    if new.len() < old.len() && idx >= new.len() {
        return Some(format!(
            "`{}` was removed at position {idx}",
            old.get(idx).map(op_text).unwrap_or_default()
        ));
    }
    if new.len() > old.len() && idx >= old.len() {
        return Some(format!(
            "`{}` was appended at position {idx}",
            new.get(idx).map(op_text).unwrap_or_default()
        ));
    }
    Some(format!(
        "layout changed at position {idx}: `{}` is now `{}`",
        old.get(idx).map(op_text).unwrap_or_default(),
        new.get(idx).map(op_text).unwrap_or_default(),
    ))
}

/// Diffs a lockfile schema (`old`) against a fresh extraction (`new`),
/// classifying every difference.
pub fn diff_schemas(old: &WireSchema, new: &WireSchema) -> Vec<SchemaEdit> {
    let mut edits = Vec::new();
    let mut push = |kind: EditKind, name: &str, path: &str, line: u32, detail: String| {
        edits.push(SchemaEdit {
            kind,
            type_name: name.to_string(),
            path: path.to_string(),
            line,
            detail,
        });
    };

    for (name, ot) in &old.types {
        let Some(nt) = new.types.get(name) else {
            push(
                EditKind::Breaking,
                name,
                &ot.path,
                0,
                format!("wire type `{name}` was removed from the extraction"),
            );
            continue;
        };
        match (&ot.layout, &nt.layout) {
            (Layout::Prim { codec: oc }, Layout::Prim { codec: nc }) => {
                if oc != nc {
                    push(
                        EditKind::Breaking,
                        name,
                        &nt.path,
                        nt.line,
                        format!("primitive `{name}` codec changed: {oc} → {nc}"),
                    );
                }
            }
            (Layout::Struct { ops: oo }, Layout::Struct { ops: no }) => {
                if let Some(d) = describe_op_diff(oo, no) {
                    push(
                        EditKind::Breaking,
                        name,
                        &nt.path,
                        nt.line,
                        format!("frozen layout of `{name}` edited: {d}"),
                    );
                }
            }
            (Layout::Enum { variants: ov }, Layout::Enum { variants: nv }) => {
                diff_enum(name, ov, nv, &nt.path, nt.line, &mut push);
            }
            _ => push(
                EditKind::Breaking,
                name,
                &nt.path,
                nt.line,
                format!("wire kind of `{name}` changed (struct/enum/prim)"),
            ),
        }
    }
    for (name, nt) in &new.types {
        if !old.types.contains_key(name) {
            push(
                EditKind::Additive,
                name,
                &nt.path,
                nt.line,
                format!("new wire type `{name}`"),
            );
        }
    }

    for (name, ov) in &old.versioned {
        let Some(nv) = new.versioned.get(name) else {
            push(
                EditKind::Breaking,
                name,
                &ov.path,
                0,
                format!("versioned root `{name}` was removed from the extraction"),
            );
            continue;
        };
        for (tag, oops) in &ov.layouts {
            match nv.layouts.get(tag) {
                None => push(
                    EditKind::Breaking,
                    name,
                    &nv.path,
                    nv.line,
                    format!("frozen version v{tag} of `{name}` was removed"),
                ),
                Some(nops) => {
                    if let Some(d) = describe_op_diff(oops, nops) {
                        push(
                            EditKind::Breaking,
                            name,
                            &nv.path,
                            nv.line,
                            format!("frozen v{tag} layout of `{name}` edited: {d}"),
                        );
                    }
                }
            }
        }
        for tag in nv.layouts.keys() {
            if !ov.layouts.contains_key(tag) {
                push(
                    EditKind::Additive,
                    name,
                    &nv.path,
                    nv.line,
                    format!("new version tag v{tag} of `{name}`"),
                );
            }
        }
        for (label, oset, nset) in [
            ("writes", &ov.writes, &nv.writes),
            ("reads", &ov.reads, &nv.reads),
        ] {
            for v in oset.difference(nset) {
                push(
                    EditKind::Breaking,
                    name,
                    &nv.path,
                    nv.line,
                    format!("`{name}` no longer {label} version {v}"),
                );
            }
            for v in nset.difference(oset) {
                if !ov.layouts.contains_key(v) && !nv.layouts.contains_key(v) {
                    push(
                        EditKind::Additive,
                        name,
                        &nv.path,
                        nv.line,
                        format!("`{name}` newly {label} version {v}"),
                    );
                }
            }
        }
    }
    for (name, nv) in &new.versioned {
        if !old.versioned.contains_key(name) {
            push(
                EditKind::Additive,
                name,
                &nv.path,
                nv.line,
                format!("new versioned root `{name}`"),
            );
        }
    }
    edits
}

fn diff_enum(
    name: &str,
    old: &[VariantLayout],
    new: &[VariantLayout],
    path: &str,
    line: u32,
    push: &mut impl FnMut(EditKind, &str, &str, u32, String),
) {
    let new_by_name: BTreeMap<&str, &VariantLayout> =
        new.iter().map(|v| (v.name.as_str(), v)).collect();
    let old_tags: BTreeSet<u32> = old.iter().filter_map(|v| v.tag).collect();
    for ov in old {
        let Some(nv) = new_by_name.get(ov.name.as_str()) else {
            push(
                EditKind::Breaking,
                name,
                path,
                line,
                format!("enum `{name}` variant `{}` was removed", ov.name),
            );
            continue;
        };
        if ov.tag != nv.tag {
            let fmt = |t: Option<u32>| t.map(|n| n.to_string()).unwrap_or_else(|| "?".into());
            push(
                EditKind::Breaking,
                name,
                path,
                line,
                format!(
                    "enum `{name}` variant `{}` retagged: {} → {}",
                    ov.name,
                    fmt(ov.tag),
                    fmt(nv.tag)
                ),
            );
        } else if let Some(d) = describe_op_diff(&ov.ops, &nv.ops) {
            push(
                EditKind::Breaking,
                name,
                path,
                line,
                format!("enum `{name}` variant `{}` payload edited: {d}", ov.name),
            );
        }
    }
    let old_names: BTreeSet<&str> = old.iter().map(|v| v.name.as_str()).collect();
    for nv in new {
        if old_names.contains(nv.name.as_str()) {
            continue;
        }
        match nv.tag {
            Some(t) if old_tags.contains(&t) => push(
                EditKind::Breaking,
                name,
                path,
                line,
                format!(
                    "enum `{name}` new variant `{}` reuses frozen tag {t}",
                    nv.name
                ),
            ),
            _ => push(
                EditKind::Additive,
                name,
                path,
                line,
                format!("enum `{name}` gained variant `{}` on a fresh tag", nv.name),
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// The lint rules
// ---------------------------------------------------------------------------

/// Runs the three schema rules over an analyzed file set. The lockfile
/// text is optional: without it only `unprobed-version` (a pure source
/// property) can fire.
pub fn check_schema(
    files: &[SourceFile],
    g: &SymbolGraph,
    lock: Option<&str>,
) -> Vec<SemanticFinding> {
    let mut out = Vec::new();
    let fresh = extract(files, g);

    // File index by path, for anchoring.
    let by_path: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.meta.path.as_str(), i))
        .collect();
    let anchor_of = |path: &str| -> Anchor {
        by_path
            .get(path)
            .map(|&i| Anchor::File(i))
            .unwrap_or_else(|| Anchor::Path(path.to_string()))
    };

    for v in fresh.versioned.values() {
        for tag in v.writes.difference(&v.reads) {
            out.push(SemanticFinding {
                anchor: anchor_of(&v.path),
                finding: Finding {
                    rule: "unprobed-version",
                    line: v.line,
                    col: 1,
                    message: format!(
                        "`{}` can write schema version {tag}, but its decoder only accepts {{{}}}: a campaign checkpointed at v{tag} could never resume",
                        v.name,
                        fmt_versions(&v.reads),
                    ),
                },
            });
        }
        for tag in v.reads.difference(&v.writes) {
            out.push(SemanticFinding {
                anchor: anchor_of(&v.path),
                finding: Finding {
                    rule: "unprobed-version",
                    line: v.line,
                    col: 1,
                    message: format!(
                        "`{}` accepts schema version {tag} on decode, but no encoder branch can write it: the acceptance is dead (or the write path was lost)",
                        v.name,
                    ),
                },
            });
        }
    }

    let Some(lock_text) = lock else { return out };
    let locked = match parse_lock(lock_text) {
        Ok(s) => s,
        Err(e) => {
            out.push(SemanticFinding {
                anchor: Anchor::Path("SCHEMA.lock".to_string()),
                finding: Finding {
                    rule: "schema-lock-drift",
                    line: 1,
                    col: 1,
                    message: format!(
                        "SCHEMA.lock is unreadable ({e}): regenerate with `fbs-lint schema --write-lock`"
                    ),
                },
            });
            return out;
        }
    };
    for edit in diff_schemas(&locked, &fresh) {
        let (rule, message): (&'static str, String) = match edit.kind {
            EditKind::Breaking => (
                "frozen-version-edit",
                format!(
                    "{}: versions v2–v5 are frozen; breaking wire edits must ship behind a new version tag",
                    edit.detail
                ),
            ),
            EditKind::Additive => (
                "schema-lock-drift",
                format!(
                    "extraction differs from SCHEMA.lock ({}): regenerate with `fbs-lint schema --write-lock`",
                    edit.detail
                ),
            ),
        };
        out.push(SemanticFinding {
            anchor: anchor_of(&edit.path),
            finding: Finding {
                rule,
                line: edit.line.max(1),
                col: 1,
                message,
            },
        });
    }
    out
}

fn fmt_versions(set: &BTreeSet<u32>) -> String {
    set.iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileMeta, SourceFile};

    fn analyze(path: &str, src: &str) -> SourceFile {
        SourceFile::analyze(FileMeta::infer(path), src.as_bytes().to_vec())
    }

    fn extract_src(src: &str) -> WireSchema {
        let files = vec![analyze("crates/core/src/wire.rs", src)];
        let g = crate::graph::build(&files);
        extract(&files, &g)
    }

    #[test]
    fn struct_ops_extract_in_write_order() {
        let s = extract_src(
            "impl Persist for BlockObs {\n\
             fn persist(&self, w: &mut ByteWriter) {\n\
             w.put_u32(self.responsive); w.put_u64(self.rtt_ns); w.put_bool(self.routed);\n\
             }\n\
             fn restore(r: &mut ByteReader) -> Result<Self> { Err(x) }\n\
             }\n",
        );
        let t = s.types.get("BlockObs").expect("extracted");
        match &t.layout {
            Layout::Struct { ops } => {
                let texts: Vec<String> = ops.iter().map(op_text).collect();
                assert_eq!(
                    texts,
                    ["u32 self.responsive", "u64 self.rtt_ns", "bool self.routed"]
                );
            }
            other => panic!("expected struct layout, got {other:?}"),
        }
    }

    #[test]
    fn enum_arms_extract_tags() {
        let s = extract_src(
            "impl Persist for FeedObs {\n\
             fn persist(&self, w: &mut ByteWriter) {\n\
             match self {\n\
             FeedObs::NotDue => w.put_u8(0),\n\
             FeedObs::Accepted { retries } => { w.put_u8(1); w.put_u32(*retries); }\n\
             }\n\
             }\n\
             fn restore(r: &mut ByteReader) -> Result<Self> { Err(x) }\n\
             }\n",
        );
        let t = s.types.get("FeedObs").expect("extracted");
        match &t.layout {
            Layout::Enum { variants } => {
                assert_eq!(variants.len(), 2);
                assert_eq!(variants[0].name, "NotDue");
                assert_eq!(variants[0].tag, Some(0));
                assert!(variants[0].ops.is_empty());
                assert_eq!(variants[1].name, "Accepted");
                assert_eq!(variants[1].tag, Some(1));
                assert_eq!(op_text(&variants[1].ops[0]), "u32 *retries");
            }
            other => panic!("expected enum layout, got {other:?}"),
        }
    }

    #[test]
    fn version_gates_resolve_per_version() {
        let s = extract_src(
            "const OLD: u32 = 2;\n\
             const NEW: u32 = 3;\n\
             impl Rec {\n\
             fn layout_version(&self) -> u32 {\n\
             if self.extra.is_some() { NEW } else { OLD }\n\
             }\n\
             }\n\
             impl Persist for Rec {\n\
             fn persist(&self, w: &mut ByteWriter) {\n\
             let version = self.layout_version();\n\
             w.put_u32(version);\n\
             w.put_u32(self.base);\n\
             if version == NEW { w.put_bool(self.flag); }\n\
             if let Some(extra) = &self.extra { extra.persist(w); }\n\
             }\n\
             fn restore(r: &mut ByteReader) -> Result<Self> {\n\
             let version = r.get_u32()?;\n\
             match version { OLD => Err(a), NEW => Err(b), _ => Err(c) }\n\
             }\n\
             }\n",
        );
        let v = s.versioned.get("Rec").expect("versioned root");
        assert_eq!(v.writes, BTreeSet::from([2, 3]));
        assert_eq!(v.reads, BTreeSet::from([2, 3]));
        let v2: Vec<String> = v.layouts[&2].iter().map(op_text).collect();
        assert_eq!(v2, ["u32 version", "u32 self.base"]);
        let v3: Vec<String> = v.layouts[&3].iter().map(op_text).collect();
        assert_eq!(
            v3,
            [
                "u32 version",
                "u32 self.base",
                "bool self.flag",
                "nested extra"
            ]
        );
    }

    #[test]
    fn lock_round_trips_through_parse() {
        let s = extract_src(
            "const OLD: u32 = 2;\n\
             const NEW: u32 = 3;\n\
             impl Rec {\n\
             fn layout_version(&self) -> u32 { if self.extra.is_some() { NEW } else { OLD } }\n\
             }\n\
             impl Persist for Rec {\n\
             fn persist(&self, w: &mut ByteWriter) {\n\
             let version = self.layout_version();\n\
             w.put_u32(version);\n\
             if let Some(extra) = &self.extra { extra.persist(w); }\n\
             }\n\
             fn restore(r: &mut ByteReader) -> Result<Self> {\n\
             let version = r.get_u32()?;\n\
             match version { OLD => Err(a), NEW => Err(b), _ => Err(c) }\n\
             }\n\
             }\n\
             impl Persist for Leaf {\n\
             fn persist(&self, w: &mut ByteWriter) {\n\
             w.put_u64(self.len() as u64);\n\
             for item in self.items { item.persist(w); }\n\
             }\n\
             fn restore(r: &mut ByteReader) -> Result<Self> { Err(x) }\n\
             }\n",
        );
        let text = render_lock(&s);
        let parsed = parse_lock(&text).expect("lock parses");
        // Lines are source positions, not wire facts: blank them before
        // comparing.
        let mut blanked = s.clone();
        for t in blanked.types.values_mut() {
            t.line = 0;
        }
        for v in blanked.versioned.values_mut() {
            v.line = 0;
        }
        assert_eq!(parsed, blanked);
        assert_eq!(render_lock(&parsed), text);
    }

    #[test]
    fn diff_classifies_reorder_and_new_type() {
        let old = extract_src(
            "impl Persist for A {\n\
             fn persist(&self, w: &mut ByteWriter) { w.put_u32(self.x); w.put_bool(self.y); }\n\
             fn restore(r: &mut ByteReader) -> Result<Self> { Err(e) }\n\
             }\n",
        );
        let new = extract_src(
            "impl Persist for A {\n\
             fn persist(&self, w: &mut ByteWriter) { w.put_bool(self.y); w.put_u32(self.x); }\n\
             fn restore(r: &mut ByteReader) -> Result<Self> { Err(e) }\n\
             }\n\
             impl Persist for B {\n\
             fn persist(&self, w: &mut ByteWriter) { w.put_u8(self.z); }\n\
             fn restore(r: &mut ByteReader) -> Result<Self> { Err(e) }\n\
             }\n",
        );
        let edits = diff_schemas(&old, &new);
        assert_eq!(edits.len(), 2);
        assert!(edits
            .iter()
            .any(|e| e.kind == EditKind::Breaking && e.detail.contains("field order changed")));
        assert!(edits
            .iter()
            .any(|e| e.kind == EditKind::Additive && e.detail.contains("new wire type `B`")));
    }
}
