//! `fbs-lint` — the workspace invariant linter.
//!
//! The crash-safe campaign work (journaling + resume) made this
//! workspace's headline guarantee *"a resumed campaign is bit-identical
//! to an uninterrupted run"*. That guarantee rests on conventions no
//! compiler checks: randomness flows through named world-RNG domains,
//! library crates never read the wall clock, unordered iteration never
//! reaches persisted bytes or reports, and nothing reachable from the
//! `Campaign` API panics. This crate turns those conventions into a
//! mechanical gate: a dependency-free static-analysis pass with
//! `file:line:col` diagnostics, a `--json` mode, and a non-zero exit for
//! CI.
//!
//! Architecture, in six layers:
//!
//! * [`lexer`] — a small, *total* Rust lexer (raw strings, byte strings,
//!   nested block comments, char-vs-lifetime disambiguation, shebangs).
//!   Property-tested to never panic and always terminate on arbitrary
//!   bytes.
//! * [`parser`] — a total item-level recursive-descent parser over the
//!   lexer: structs with fields, enums with variants, impl blocks, fn
//!   bodies as token spans. Garbage degrades to missing items, never to
//!   a crash.
//! * [`context`] — per-file scoping: library vs bin vs test vs bench
//!   classification from the path, `#[cfg(test)]` region detection, and
//!   `// fbs-lint: allow(rule)` pragmas.
//! * [`graph`] + [`dataflow`] + [`semantic`] — the workspace symbol
//!   graph (struct → Persist impl → encode/decode bodies, fn → callees,
//!   write/domain/shared-state/float-fold sites), the dataflow substrate
//!   over it (resolved call edges, fixed-point transitive reachability,
//!   and a source→sink shard-order taint pass), and the eight cross-file
//!   rules: `persist-field-drift`, `persist-orphan`,
//!   `unregistered-emission`, `nondet-collection-flow`,
//!   `shard-merge-order`, `rng-domain-collision`,
//!   `shared-mutable-in-shard-path`, `float-reduction-order`.
//! * [`schema`] — static wire-format extraction over the symbol graph:
//!   every `Persist` impl's ordered writes, enum wire tags, and
//!   version-gated sections resolved into one layout per version tag,
//!   serialized as the committed `SCHEMA.lock` and diffed against it by
//!   the compatibility rules `frozen-version-edit`, `unprobed-version`,
//!   and `schema-lock-drift`.
//! * [`rules`] + [`engine`] — the lexical rule registry and the driver
//!   that walks the workspace, applies each rule in scope, runs the
//!   semantic pass over the assembled graph, and filters excused lines.
//!
//! Run it as `cargo run -p fbs-lint -- --workspace`, or
//! `cargo run -p fbs-lint -- schema --check` for the wire-schema gate.

#![forbid(unsafe_code)]

pub mod context;
pub mod dataflow;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod schema;
pub mod semantic;

pub use context::{FileKind, FileMeta, SourceFile};
pub use dataflow::{build_call_graph, shard_taint, CallGraph, TaintFinding};
pub use engine::{
    analyze_workspace, collect_rs_files, find_workspace_root, lint_bytes, lint_bytes_with_lock,
    lint_source, lint_sources, lint_sources_with_lock, lint_workspace, render_json, FileFinding,
    LintRun,
};
pub use rules::{
    rule_by_name, Finding, Rule, EMISSION_FILES, EMISSION_OUTPUTS, RNG_DOMAINS, RULES,
};
pub use schema::{
    diff_schemas, extract, parse_lock, render_lock, EditKind, Layout, SchemaEdit, TypeSchema,
    VersionedSchema, WireOp, WireSchema,
};
pub use semantic::{SemanticRule, SEMANTIC_RULES};
