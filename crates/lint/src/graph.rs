//! The workspace symbol graph.
//!
//! Per-file ASTs ([`crate::parser`]) answer "what items does this file
//! define?"; the semantic rules need the cross-file view: which struct a
//! `Persist` impl serializes (they are frequently in different files),
//! which functions a function calls (by name — no type resolution), and
//! where the workspace actually writes files. This module assembles that
//! view once per lint run, in deterministic order, so every semantic rule
//! is a pure pass over the graph.
//!
//! Resolution is name-based and deliberately modest: a callee name maps to
//! *every* workspace function with that name, and a type name resolves
//! only when the workspace defines it exactly once (fixture duplicates and
//! shadowed helpers stay unresolved rather than mis-attributed).

use crate::context::{FileKind, SourceFile};
use crate::lexer::TokenKind;
use crate::parser::Span;
use std::collections::{BTreeMap, BTreeSet};

/// A location of one defined item: file index plus item index within that
/// file's AST vector (structs index `ast.structs`, enums `ast.enums`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemRef {
    pub file: usize,
    pub item: usize,
}

/// One `impl Persist for T` block, with its encode/decode bodies.
#[derive(Debug, Clone)]
pub struct PersistImpl {
    pub file: usize,
    /// Self type head (`crate::Round` → `Round`).
    pub type_name: String,
    /// Body span of `fn persist` (the encode side), if present.
    pub encode: Option<Span>,
    /// Body span of `fn restore` (the decode side), if present.
    pub decode: Option<Span>,
    /// Position of the `impl` keyword, where drift diagnostics anchor.
    pub line: u32,
    pub col: u32,
}

/// One function (free or method), with everything the semantic rules ask
/// about its body.
#[derive(Debug, Clone)]
pub struct FnNode {
    pub file: usize,
    pub name: String,
    /// Type head of the enclosing impl, if this is a method.
    pub impl_type: Option<String>,
    /// Trait head of the enclosing impl, if it is a trait impl.
    pub impl_trait: Option<String>,
    pub line: u32,
    pub col: u32,
    pub body: Option<Span>,
    /// Distinct callee names in body order: idents directly followed by
    /// `(` — covers `free(…)`, `x.method(…)`, and `Path::assoc(…)`.
    pub callees: Vec<String>,
    /// `HashMap`/`HashSet` mention sites inside the body.
    pub hash_sites: Vec<HashSite>,
    /// File-writing call sites inside the body.
    pub write_sites: Vec<WriteSite>,
    /// World-RNG `domain(…)` call sites inside the body.
    pub domain_sites: Vec<DomainSite>,
    /// Env-derived output-path sites (`env::var` with a literal default).
    pub artifact_sites: Vec<ArtifactSite>,
    /// Shared-mutable-state mentions inside the body.
    pub shared_sites: Vec<SharedSite>,
    /// Order-sensitive float reductions inside the body.
    pub float_folds: Vec<FloatFold>,
}

/// One `HashMap`/`HashSet` mention inside a function body.
#[derive(Debug, Clone)]
pub struct HashSite {
    pub line: u32,
    pub col: u32,
    /// `"HashMap"` or `"HashSet"`.
    pub collection: &'static str,
}

/// One file-writing call site.
#[derive(Debug, Clone)]
pub struct WriteSite {
    pub line: u32,
    pub col: u32,
    /// The call shape, e.g. `fs::write` or `.write_all`.
    pub callee: &'static str,
}

/// One `domain(…)` RNG-domain call site inside a function body.
#[derive(Debug, Clone)]
pub struct DomainSite {
    pub line: u32,
    pub col: u32,
    /// The domain string when the sole argument is a string literal
    /// (`domain("faults")` → `Some("faults")`); `None` for computed
    /// arguments (`domain(&self.name)`, `domain(kind.name())`).
    pub literal: Option<String>,
}

/// One env-derived output-path site: `std::env::var("FBS_…")` with a
/// nearby string-literal default naming the artifact written there
/// (`var("FBS_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".…)`).
/// These name emission artifacts the same way `EMISSION_FILES` names
/// emission source files, so the registry check covers both.
#[derive(Debug, Clone)]
pub struct ArtifactSite {
    pub line: u32,
    pub col: u32,
    /// The environment variable consulted.
    pub env: String,
    /// The literal fallback artifact name, when one follows the call.
    pub default: Option<String>,
}

/// One shared-mutable-state mention inside a function body: interior
/// mutability, lock types, or relaxed atomics — the constructs that make
/// behaviour depend on thread scheduling once the round loop shards.
#[derive(Debug, Clone)]
pub struct SharedSite {
    pub line: u32,
    pub col: u32,
    /// What was found: `Mutex`, `RwLock`, `RefCell`, `Cell`,
    /// `UnsafeCell`, `static mut`, or `Ordering::Relaxed`.
    pub what: &'static str,
}

/// One order-sensitive floating-point reduction inside a function body:
/// `.sum::<f64>()` / `.product::<f64>()`, or a `.fold(<float literal>, …)`
/// whose closure accumulates with `+`. Float addition is not associative,
/// so the accumulation order *is* part of the result bytes.
#[derive(Debug, Clone)]
pub struct FloatFold {
    pub line: u32,
    pub col: u32,
    /// The reduction shape: `sum::<f64>`, `product::<f64>`, or `fold(+)`.
    pub shape: &'static str,
}

/// The assembled cross-file view.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// Struct name → every definition site.
    pub structs: BTreeMap<String, Vec<ItemRef>>,
    /// Enum name → every definition site.
    pub enums: BTreeMap<String, Vec<ItemRef>>,
    /// Every `impl Persist for …` block.
    pub persist_impls: Vec<PersistImpl>,
    /// Type names that have at least one `Persist` impl anywhere.
    pub persist_types: BTreeSet<String>,
    /// Every function in the workspace, in (file, position) order.
    pub fns: Vec<FnNode>,
    /// Function name → indices into [`SymbolGraph::fns`].
    pub fns_by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolGraph {
    /// The unique struct definition with this name, if exactly one file
    /// defines it.
    pub fn unique_struct(&self, name: &str) -> Option<ItemRef> {
        match self.structs.get(name).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }

    /// The unique enum definition with this name, if exactly one file
    /// defines it.
    pub fn unique_enum(&self, name: &str) -> Option<ItemRef> {
        match self.enums.get(name).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }

    /// Whether `name` names any workspace-defined struct or enum.
    pub fn defines_type(&self, name: &str) -> bool {
        self.structs.contains_key(name) || self.enums.contains_key(name)
    }
}

/// Two-token path call shapes that put bytes into a file.
const WRITE_PATHS: &[(&str, &str, &str)] = &[
    ("fs", "write", "fs::write"),
    ("File", "create", "File::create"),
];

/// Builds the graph over an analyzed file set. Deterministic: iteration
/// follows file order, and name maps are BTree-ordered.
pub fn build(files: &[SourceFile]) -> SymbolGraph {
    let mut g = SymbolGraph::default();
    for (fi, file) in files.iter().enumerate() {
        for (si, s) in file.ast.structs.iter().enumerate() {
            g.structs
                .entry(s.name.clone())
                .or_default()
                .push(ItemRef { file: fi, item: si });
        }
        for (ei, e) in file.ast.enums.iter().enumerate() {
            g.enums
                .entry(e.name.clone())
                .or_default()
                .push(ItemRef { file: fi, item: ei });
        }
        for imp in &file.ast.impls {
            if imp.trait_name.as_deref() == Some("Persist") && !imp.type_name.is_empty() {
                let body_of = |fname: &str| {
                    imp.fns
                        .iter()
                        .find(|f| f.name == fname)
                        .and_then(|f| f.body)
                };
                g.persist_types.insert(imp.type_name.clone());
                g.persist_impls.push(PersistImpl {
                    file: fi,
                    type_name: imp.type_name.clone(),
                    encode: body_of("persist"),
                    decode: body_of("restore"),
                    line: imp.line,
                    col: imp.col,
                });
            }
            for f in &imp.fns {
                push_fn(
                    &mut g,
                    file,
                    fi,
                    f,
                    Some(imp.type_name.clone()),
                    imp.trait_name.clone(),
                );
            }
        }
        for f in &file.ast.fns {
            push_fn(&mut g, file, fi, f, None, None);
        }
    }
    g
}

fn push_fn(
    g: &mut SymbolGraph,
    file: &SourceFile,
    fi: usize,
    f: &crate::parser::FnItem,
    impl_type: Option<String>,
    impl_trait: Option<String>,
) {
    let mut node = FnNode {
        file: fi,
        name: f.name.clone(),
        impl_type,
        impl_trait,
        line: f.line,
        col: f.col,
        body: f.body,
        callees: Vec::new(),
        hash_sites: Vec::new(),
        write_sites: Vec::new(),
        domain_sites: Vec::new(),
        artifact_sites: Vec::new(),
        shared_sites: Vec::new(),
        float_folds: Vec::new(),
    };
    if let Some(span) = f.body {
        scan_body(file, span, &mut node);
    }
    let idx = g.fns.len();
    g.fns_by_name.entry(f.name.clone()).or_default().push(idx);
    g.fns.push(node);
}

/// Decodes a plain `"…"` string-literal token into its inner text.
/// Raw/byte strings return `None` and are treated as computed — the
/// conservative direction for the domain-literal rule.
fn plain_str_value(bytes: &[u8]) -> Option<String> {
    if bytes.len() >= 2 && bytes.first() == Some(&b'"') && bytes.last() == Some(&b'"') {
        Some(String::from_utf8_lossy(&bytes[1..bytes.len() - 1]).into_owned())
    } else {
        None
    }
}

/// Shared-mutable constructs that make behaviour depend on scheduling.
const SHARED_STATE: &[&str] = &["Mutex", "RwLock", "RefCell", "Cell", "UnsafeCell"];

/// One pass over a body span collecting callees, hash-collection mentions,
/// write sites, RNG-domain calls, shared-state mentions, and float folds.
fn scan_body(file: &SourceFile, span: Span, node: &mut FnNode) {
    let src = &file.src;
    let hi = span.hi.min(file.sig_len());
    let lo = span.lo.min(hi);
    let mut seen = BTreeSet::new();
    for i in lo..hi {
        let t = file.sig_token(i);
        if t.kind != TokenKind::Ident {
            continue;
        }
        for name in SHARED_STATE {
            if t.is_ident(src, name) {
                node.shared_sites.push(SharedSite {
                    line: t.line,
                    col: t.col,
                    what: name,
                });
            }
        }
        if t.is_ident(src, "static") && i + 1 < hi && file.sig_token(i + 1).is_ident(src, "mut") {
            node.shared_sites.push(SharedSite {
                line: t.line,
                col: t.col,
                what: "static mut",
            });
        }
        if t.is_ident(src, "Relaxed") {
            node.shared_sites.push(SharedSite {
                line: t.line,
                col: t.col,
                what: "Ordering::Relaxed",
            });
        }
        // `domain("lit")` vs `domain(<computed>)`.
        if t.is_ident(src, "domain") && i + 1 < hi && file.sig_token(i + 1).is_punct(src, "(") {
            let literal = if i + 3 < hi
                && file.sig_token(i + 2).kind == TokenKind::Str
                && file.sig_token(i + 3).is_punct(src, ")")
            {
                plain_str_value(file.sig_token(i + 2).bytes(src))
            } else {
                None
            };
            node.domain_sites.push(DomainSite {
                line: t.line,
                col: t.col,
                literal,
            });
        }
        // `env::var("NAME")` with a trailing string-literal default —
        // an env-derived artifact path. The default is the next plain
        // string literal within the same expression (a short window
        // bounds the scan; the unwrap chain is only a few tokens).
        if t.is_ident(src, "var")
            && i + 3 < hi
            && file.sig_token(i + 1).is_punct(src, "(")
            && file.sig_token(i + 2).kind == TokenKind::Str
            && file.sig_token(i + 3).is_punct(src, ")")
        {
            if let Some(env) = plain_str_value(file.sig_token(i + 2).bytes(src)) {
                let default = (i + 4..hi.min(i + 16))
                    .filter(|&k| file.sig_token(k).kind == TokenKind::Str)
                    .find_map(|k| plain_str_value(file.sig_token(k).bytes(src)));
                node.artifact_sites.push(ArtifactSite {
                    line: t.line,
                    col: t.col,
                    env,
                    default,
                });
            }
        }
        // `.sum::<f64>()` / `.product::<f64>()` — typed float reductions.
        if (t.is_ident(src, "sum") || t.is_ident(src, "product"))
            && i > lo
            && file.sig_token(i - 1).is_punct(src, ".")
            && i + 3 < hi
            && file.sig_token(i + 1).is_punct(src, "::")
            && file.sig_token(i + 2).is_punct(src, "<")
            && file.sig_token(i + 3).is_ident(src, "f64")
        {
            node.float_folds.push(FloatFold {
                line: t.line,
                col: t.col,
                shape: if t.is_ident(src, "sum") {
                    "sum::<f64>"
                } else {
                    "product::<f64>"
                },
            });
        }
        // `.fold(<float literal>, …)` whose closure accumulates with `+`.
        if t.is_ident(src, "fold")
            && i > lo
            && file.sig_token(i - 1).is_punct(src, ".")
            && i + 2 < hi
            && file.sig_token(i + 1).is_punct(src, "(")
            && file.sig_token(i + 2).kind == TokenKind::Float
        {
            let mut depth = 0usize;
            let mut adds = false;
            for k in i + 1..hi {
                let p = file.sig_token(k);
                if p.kind != TokenKind::Punct {
                    continue;
                }
                match p.bytes(src) {
                    b"(" | b"[" | b"{" => depth += 1,
                    b")" | b"]" | b"}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    b"+" | b"+=" => adds = true,
                    _ => {}
                }
            }
            if adds {
                node.float_folds.push(FloatFold {
                    line: t.line,
                    col: t.col,
                    shape: "fold(+)",
                });
            }
        }
        for name in ["HashMap", "HashSet"] {
            if t.is_ident(src, name) {
                node.hash_sites.push(HashSite {
                    line: t.line,
                    col: t.col,
                    collection: if name == "HashMap" {
                        "HashMap"
                    } else {
                        "HashSet"
                    },
                });
            }
        }
        if i + 2 < hi {
            for (head, tail, label) in WRITE_PATHS {
                if t.is_ident(src, head)
                    && file.sig_token(i + 1).is_punct(src, "::")
                    && file.sig_token(i + 2).is_ident(src, tail)
                {
                    node.write_sites.push(WriteSite {
                        line: t.line,
                        col: t.col,
                        callee: label,
                    });
                }
            }
        }
        if t.is_ident(src, "write_all")
            && i > lo
            && file.sig_token(i - 1).is_punct(src, ".")
            && i + 1 < hi
            && file.sig_token(i + 1).is_punct(src, "(")
        {
            node.write_sites.push(WriteSite {
                line: t.line,
                col: t.col,
                callee: ".write_all",
            });
        }
        if i + 1 < hi && file.sig_token(i + 1).is_punct(src, "(") {
            let name = String::from_utf8_lossy(t.bytes(src)).into_owned();
            if !is_call_keyword(&name) && seen.insert(name.clone()) {
                node.callees.push(name);
            }
        }
    }
}

/// Keywords and ubiquitous constructors that precede `(` without being
/// workspace function calls.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "let"
            | "fn"
            | "move"
            | "unsafe"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Box"
            | "Vec"
    )
}

/// Library files eligible for workspace semantic analysis.
pub fn is_library(file: &SourceFile) -> bool {
    file.meta.kind == FileKind::Library
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileMeta, SourceFile};

    fn analyze(path: &str, src: &str) -> SourceFile {
        SourceFile::analyze(FileMeta::infer(path), src.as_bytes().to_vec())
    }

    #[test]
    fn persist_impls_and_bodies_are_found() {
        let f = analyze(
            "crates/types/src/x.rs",
            "pub struct P { a: u32 }\n\
             impl Persist for P {\n\
                 fn persist(&self, w: &mut W) { w.put_u32(self.a); }\n\
                 fn restore(r: &mut R) -> Result<Self> { Ok(P { a: r.get_u32()? }) }\n\
             }\n",
        );
        let g = build(std::slice::from_ref(&f));
        assert_eq!(g.persist_impls.len(), 1);
        let pi = &g.persist_impls[0];
        assert_eq!(pi.type_name, "P");
        assert!(pi.encode.is_some() && pi.decode.is_some());
        assert!(g.persist_types.contains("P"));
        assert!(g.unique_struct("P").is_some());
    }

    #[test]
    fn callees_and_hash_sites_are_collected() {
        let f = analyze(
            "crates/core/src/x.rs",
            "fn emit(out: &mut O) { render(out); helper(); }\n\
             fn helper() { let m: HashMap<u8, u8> = HashMap::new(); }\n",
        );
        let g = build(std::slice::from_ref(&f));
        let emit = &g.fns[g.fns_by_name["emit"][0]];
        assert_eq!(emit.callees, ["render", "helper"]);
        let helper = &g.fns[g.fns_by_name["helper"][0]];
        assert_eq!(helper.hash_sites.len(), 2);
        assert_eq!(helper.hash_sites[0].line, 2);
    }

    #[test]
    fn write_sites_cover_all_three_shapes() {
        let f = analyze(
            "crates/core/src/x.rs",
            "fn save(p: &Path, bytes: &[u8]) {\n\
                 std::fs::write(p, bytes).unwrap();\n\
                 let mut f = File::create(p).unwrap();\n\
                 f.write_all(bytes).unwrap();\n\
             }\n",
        );
        let g = build(std::slice::from_ref(&f));
        let save = &g.fns[g.fns_by_name["save"][0]];
        let shapes: Vec<&str> = save.write_sites.iter().map(|w| w.callee).collect();
        assert_eq!(shapes, ["fs::write", "File::create", ".write_all"]);
    }

    #[test]
    fn methods_carry_their_impl_context() {
        let f = analyze(
            "crates/signals/src/x.rs",
            "impl Detector { fn step(&mut self) { self.tick(); } }\n\
             impl Persist for Detector { fn persist(&self, w: &mut W) {} }\n",
        );
        let g = build(std::slice::from_ref(&f));
        let step = &g.fns[g.fns_by_name["step"][0]];
        assert_eq!(step.impl_type.as_deref(), Some("Detector"));
        assert_eq!(step.impl_trait, None);
        let persist = &g.fns[g.fns_by_name["persist"][0]];
        assert_eq!(persist.impl_trait.as_deref(), Some("Persist"));
    }

    #[test]
    fn domain_sites_split_literal_from_computed() {
        let f = analyze(
            "crates/netsim/src/x.rs",
            "fn a(rng: &WorldRng) { let r = rng.domain(\"faults\"); }\n\
             fn b(rng: &WorldRng, name: &str) { let r = rng.domain(name); }\n\
             fn c(rng: &WorldRng) { let r = rng.domain(\"root\").domain(&self.name); }\n",
        );
        let g = build(std::slice::from_ref(&f));
        let a = &g.fns[g.fns_by_name["a"][0]];
        assert_eq!(a.domain_sites.len(), 1);
        assert_eq!(a.domain_sites[0].literal.as_deref(), Some("faults"));
        let b = &g.fns[g.fns_by_name["b"][0]];
        assert_eq!(b.domain_sites.len(), 1);
        assert_eq!(b.domain_sites[0].literal, None);
        let c = &g.fns[g.fns_by_name["c"][0]];
        let lits: Vec<Option<&str>> = c
            .domain_sites
            .iter()
            .map(|d| d.literal.as_deref())
            .collect();
        assert_eq!(lits, [Some("root"), None]);
    }

    #[test]
    fn shared_state_mentions_are_collected() {
        let f = analyze(
            "crates/core/src/x.rs",
            "fn f() {\n\
                 let m = Mutex::new(0);\n\
                 let c = RefCell::new(0);\n\
                 let n = COUNT.fetch_add(1, Ordering::Relaxed);\n\
             }\n",
        );
        let g = build(std::slice::from_ref(&f));
        let shapes: Vec<&str> = g.fns[0].shared_sites.iter().map(|s| s.what).collect();
        assert_eq!(shapes, ["Mutex", "RefCell", "Ordering::Relaxed"]);
        assert_eq!(g.fns[0].shared_sites[2].line, 4);
    }

    #[test]
    fn float_folds_catch_sum_and_additive_fold_only() {
        let f = analyze(
            "crates/analysis/src/x.rs",
            "fn a(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n\
             fn b(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |acc, x| acc + x) }\n\
             fn c(xs: &[f64]) -> f64 { xs.iter().copied().fold(0.0f64, f64::max) }\n\
             fn d(xs: &[u64]) -> u64 { xs.iter().sum::<u64>() }\n\
             fn e(xs: &[u64]) -> u64 { xs.iter().fold(0, |acc, x| acc + x) }\n",
        );
        let g = build(std::slice::from_ref(&f));
        let by = |name: &str| &g.fns[g.fns_by_name[name][0]];
        assert_eq!(by("a").float_folds[0].shape, "sum::<f64>");
        assert_eq!(by("b").float_folds[0].shape, "fold(+)");
        assert!(
            by("c").float_folds.is_empty(),
            "f64::max fold is order-free"
        );
        assert!(by("d").float_folds.is_empty(), "integer sum is exact");
        assert!(by("e").float_folds.is_empty(), "integer fold is exact");
    }

    #[test]
    fn duplicate_type_names_are_not_unique() {
        let a = analyze("crates/core/src/a.rs", "struct Dup { x: u8 }");
        let b = analyze("crates/feeds/src/b.rs", "struct Dup { y: u8 }");
        let g = build(&[a, b]);
        assert!(g.unique_struct("Dup").is_none());
        assert!(g.defines_type("Dup"));
    }
}
