//! A small, total Rust lexer.
//!
//! The linter's rules are token-shape patterns, so the lexer only needs to
//! be right about the things that make naive `grep` wrong: string literals
//! (including raw strings with arbitrary `#` fences), nested block
//! comments, character literals versus lifetimes, and numeric literals
//! (so float comparisons can be told apart from integer ones).
//!
//! Two properties are load-bearing and property-tested:
//!
//! * **Totality** — the lexer accepts *any* byte string (not just valid
//!   UTF-8 or valid Rust) and never panics.
//! * **Termination & coverage** — every iteration of the scan loop
//!   consumes at least one byte, tokens appear in source order, and the
//!   whole input is covered, so positions reported to the user are real.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Integer literal (any base, any suffix except `f32`/`f64`).
    Int,
    /// Float literal (decimal point, exponent, or an `fNN` suffix).
    Float,
    /// String / byte-string / raw-string / C-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// `// …` comment (pragmas live here).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Punctuation; multi-byte operators the rules care about are joined.
    Punct,
    /// A byte the lexer does not understand; consumed and carried along.
    Unknown,
}

/// One token: kind plus the byte span and the 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's raw bytes.
    pub fn bytes<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        &src[self.start..self.end]
    }

    /// Whether the token is exactly the given text.
    pub fn is(&self, src: &[u8], text: &str) -> bool {
        self.bytes(src) == text.as_bytes()
    }

    /// Whether the token is an identifier with exactly the given name.
    pub fn is_ident(&self, src: &[u8], name: &str) -> bool {
        self.kind == TokenKind::Ident && self.is(src, name)
    }

    /// Whether the token is punctuation with exactly the given spelling.
    pub fn is_punct(&self, src: &[u8], spelling: &str) -> bool {
        self.kind == TokenKind::Punct && self.is(src, spelling)
    }
}

/// Multi-byte operators joined into one `Punct` token. Longest first so
/// `..=` wins over `..`; everything else falls back to a single byte.
const JOINED: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Consumes one byte, maintaining the line/column counters.
    fn bump(&mut self) {
        if let Some(b) = self.src.get(self.pos) {
            if *b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// `// …` to end of line (newline not included).
    fn line_comment(&mut self) {
        self.eat_while(|b| b != b'\n');
    }

    /// `/* … */` with nesting; an unterminated comment runs to EOF.
    fn block_comment(&mut self) {
        self.bump_n(2); // `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
    }

    /// `"…"` with escapes; unterminated runs to EOF.
    fn string(&mut self) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some(b'\\') => self.bump_n(2),
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
    }

    /// Raw string body after the `r`: `#…#"…"#…#`. Returns `false` if what
    /// follows is not actually a raw string (caller falls back to ident).
    fn raw_string(&mut self) -> bool {
        let mut fence = 0usize;
        while self.peek(fence) == Some(b'#') {
            fence += 1;
        }
        if self.peek(fence) != Some(b'"') {
            return false;
        }
        self.bump_n(fence + 1); // fence + opening quote
        loop {
            match self.peek(0) {
                Some(b'"') => {
                    let mut close = 0usize;
                    while close < fence && self.peek(1 + close) == Some(b'#') {
                        close += 1;
                    }
                    self.bump_n(1 + close);
                    if close == fence {
                        return true;
                    }
                }
                Some(_) => self.bump(),
                None => return true,
            }
        }
    }

    /// After a `'`: either a lifetime (`'a`) or a char literal (`'x'`,
    /// `'\n'`). A quote followed by ident characters is a lifetime unless
    /// a closing quote follows exactly one character later.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // opening quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume the escape, then scan for
                // the closing quote (covers `\u{…}` of any length).
                self.bump_n(2);
                self.eat_while(|b| b != b'\'' && b != b'\n');
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            Some(b) if is_ident_continue(b) => {
                if self.peek(1) == Some(b'\'') && b != b'\'' {
                    self.bump_n(2); // `'a'`
                    TokenKind::Char
                } else {
                    // `'abc` — a lifetime (or `'static`).
                    self.eat_while(is_ident_continue);
                    TokenKind::Lifetime
                }
            }
            Some(b'\'') => {
                // `''` — not valid Rust; treat as an empty char literal.
                self.bump();
                TokenKind::Char
            }
            Some(_) => {
                // Non-identifier char such as `'+'` — char literal if a
                // quote closes it, else a stray quote.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            None => TokenKind::Char,
        }
    }

    /// Numeric literal; decides Int vs Float.
    fn number(&mut self) -> TokenKind {
        let mut float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.bump_n(2);
            self.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
            return TokenKind::Int;
        }
        self.eat_while(|b| b.is_ascii_digit() || b == b'_');
        // A decimal point only belongs to the number when it is not `..`
        // (range) and not a method call / tuple access (`1.max(2)`).
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(b'.') => {}
                Some(b) if is_ident_start(b) => {}
                _ => {
                    float = true;
                    self.bump();
                    self.eat_while(|b| b.is_ascii_digit() || b == b'_');
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let has_exp = match sign {
                Some(b'+' | b'-') => digit.is_some_and(|b| b.is_ascii_digit()),
                Some(b) => b.is_ascii_digit(),
                None => false,
            };
            if has_exp {
                float = true;
                self.bump(); // e
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.bump();
                }
                self.eat_while(|b| b.is_ascii_digit() || b == b'_');
            }
        }
        // Suffix (`u32`, `f64`, …) — an `f` suffix makes it a float.
        if self.peek(0).is_some_and(is_ident_start) {
            if self.peek(0) == Some(b'f') {
                float = true;
            }
            self.eat_while(is_ident_continue);
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` completely. Total: accepts any byte string, never panics,
/// and always terminates with tokens in source order.
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut s = Scanner {
        src,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    // A shebang line (`#!/usr/bin/env …`) is stripped by rustc before
    // lexing; mirror that by emitting it as one line comment. Only the
    // very first bytes qualify, and `#![` is an inner attribute, not a
    // shebang.
    if src.starts_with(b"#!") && src.get(2) != Some(&b'[') {
        s.line_comment();
        if s.pos > 0 {
            tokens.push(Token {
                kind: TokenKind::LineComment,
                start: 0,
                end: s.pos,
                line: 1,
                col: 1,
            });
        }
    }
    while s.pos < src.len() {
        let (start, line, col) = (s.pos, s.line, s.col);
        let b = src[start];
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
                continue;
            }
            b'/' if s.peek(1) == Some(b'/') => {
                s.line_comment();
                TokenKind::LineComment
            }
            b'/' if s.peek(1) == Some(b'*') => {
                s.block_comment();
                TokenKind::BlockComment
            }
            b'"' => {
                s.string();
                TokenKind::Str
            }
            b'\'' => s.char_or_lifetime(),
            b'r' | b'b' | b'c' => {
                // Possible literal prefixes: r"", r#""#, b"", b'', br"",
                // c"", raw identifiers r#name. Try them in order; fall
                // back to a plain identifier.
                let two = s.peek(1);
                if b == b'b' && two == Some(b'\'') {
                    s.bump(); // b
                    s.char_or_lifetime();
                    TokenKind::Char
                } else if two == Some(b'"') && b != b'r' {
                    s.bump();
                    s.string();
                    TokenKind::Str
                } else if b == b'r' && (two == Some(b'"') || two == Some(b'#')) {
                    s.bump(); // r
                    if s.raw_string() {
                        TokenKind::Str
                    } else if s.peek(0) == Some(b'#') && s.peek(1).is_some_and(is_ident_start) {
                        s.bump(); // #
                        s.eat_while(is_ident_continue);
                        TokenKind::Ident
                    } else {
                        s.eat_while(is_ident_continue);
                        TokenKind::Ident
                    }
                } else if (b == b'b' && two == Some(b'r'))
                    && (s.peek(2) == Some(b'"') || s.peek(2) == Some(b'#'))
                {
                    s.bump_n(2); // br
                    if s.raw_string() {
                        TokenKind::Str
                    } else {
                        // `br#` with no raw string following (`br#enum`):
                        // what was consumed is just the identifier `br`.
                        s.eat_while(is_ident_continue);
                        TokenKind::Ident
                    }
                } else {
                    s.eat_while(is_ident_continue);
                    TokenKind::Ident
                }
            }
            _ if is_ident_start(b) => {
                s.eat_while(is_ident_continue);
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => s.number(),
            _ => {
                let mut joined = None;
                for op in JOINED {
                    let bytes = op.as_bytes();
                    if src[start..].starts_with(bytes) {
                        joined = Some(bytes.len());
                        break;
                    }
                }
                s.bump_n(joined.unwrap_or(1));
                if joined.is_some() || b.is_ascii_punctuation() {
                    TokenKind::Punct
                } else {
                    TokenKind::Unknown
                }
            }
        };
        debug_assert!(s.pos > start, "lexer must always advance");
        if s.pos == start {
            // Unreachable by construction; belt-and-braces so a logic bug
            // degrades to a skipped byte instead of an infinite loop.
            s.bump();
        }
        tokens.push(Token {
            kind,
            start,
            end: s.pos,
            line,
            col,
        });
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src.as_bytes())
            .into_iter()
            .map(|t| {
                (
                    t.kind,
                    String::from_utf8_lossy(t.bytes(src.as_bytes())).into_owned(),
                )
            })
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x: u32 = a::b(c);");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert!(toks.iter().any(|t| t == &(TokenKind::Punct, "::".into())));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let toks = kinds(r###"let s = r#"unwrap() // not a comment"#; x"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        // Nothing after the raw string was swallowed.
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "x".into()));
        // And no token in the raw string was lexed as an identifier.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn floats_vs_ints_vs_ranges_vs_methods() {
        let toks = kinds("1.0 2 0x1F 1e5 2.5e-3 0..n 1.max(2) 3f64 4u32");
        let of = |kind| {
            toks.iter()
                .filter(move |(k, _)| *k == kind)
                .map(|(_, t)| t.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(of(TokenKind::Float), vec!["1.0", "1e5", "2.5e-3", "3f64"]);
        assert_eq!(of(TokenKind::Int), vec!["2", "0x1F", "0", "1", "2", "4u32"]);
    }

    #[test]
    fn line_positions_are_one_based_and_track_newlines() {
        let toks = lex(b"a\n  b\n\tc");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 2));
    }

    #[test]
    fn unterminated_everything_still_terminates() {
        for src in [
            "\"unterminated",
            "/* unterminated",
            "r#\"unterminated",
            "'",
            "b'",
            "r#",
        ] {
            let toks = lex(src.as_bytes());
            assert!(!toks.is_empty());
            assert_eq!(toks.last().unwrap().end, src.len());
        }
    }

    #[test]
    fn byte_strings_in_all_shapes() {
        let toks = kinds(
            r###"let a = b"bytes"; let b = br#"raw // bytes"#; let c = br"raw"; let d = b"\"esc"; x"###,
        );
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            strs,
            vec![
                "b\"bytes\"",
                "br#\"raw // bytes\"#",
                "br\"raw\"",
                "b\"\\\"esc\""
            ]
        );
        // Nothing inside a byte string leaked out as its own token.
        assert!(!toks.iter().any(|(_, t)| t == "bytes" || t == "esc"));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "x".into()));
    }

    #[test]
    fn br_without_a_raw_string_is_an_identifier() {
        // `br#` not followed by `"` used to come back as a Str token.
        let toks = kinds("let x = br#enum; y");
        assert!(toks.contains(&(TokenKind::Ident, "br".into())));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn shebang_is_one_comment_line() {
        let toks = kinds("#!/usr/bin/env run-cargo-script\nfn main() {}");
        assert_eq!(
            toks[0],
            (
                TokenKind::LineComment,
                "#!/usr/bin/env run-cargo-script".into()
            )
        );
        assert_eq!(toks[1], (TokenKind::Ident, "fn".into()));
        // An inner attribute at byte zero is NOT a shebang.
        let attr = kinds("#![forbid(unsafe_code)]\n");
        assert_eq!(attr[0], (TokenKind::Punct, "#".into()));
        // And `#!` later in the file is plain punctuation.
        let later = kinds("fn f() {}\n#!/not/a/shebang\n");
        assert!(!later
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.starts_with("#!")));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|t| t == &(TokenKind::Ident, "r#match".into())));
    }
}
