//! The semantic rules: cross-file invariants over the symbol graph.
//!
//! The lexical rules ([`crate::rules`]) pattern-match token shapes inside
//! one file; these four rules reason about relationships the token stream
//! cannot express — a struct defined in one file and serialized in
//! another, a write site that the emission registry never heard of, a
//! `HashMap` one call away from encode. They run over the
//! [`crate::graph::SymbolGraph`] assembled from every analyzed file.
//!
//! Findings anchor to real positions ([`Anchor::File`]), so the engine
//! can apply the same pragma and test-region filtering as lexical rules.
//! The one exception is a *stale registry entry* — a path with no code
//! behind it — which anchors to the path itself ([`Anchor::Path`]) and
//! only fires on a complete workspace sweep.

use crate::context::SourceFile;
use crate::graph::{is_library, FnNode, SymbolGraph};
use crate::lexer::TokenKind;
use crate::parser::Span;
use crate::rules::{Finding, EMISSION_FILES};
use std::collections::BTreeSet;

/// Metadata for a workspace-level rule (the check itself lives in
/// [`check_workspace`]; these entries feed `--list-rules` and the fixture
/// completeness test).
pub struct SemanticRule {
    pub name: &'static str,
    pub summary: &'static str,
}

/// The semantic registry, in diagnostic-priority order.
pub const SEMANTIC_RULES: &[SemanticRule] = &[
    SemanticRule {
        name: "persist-field-drift",
        summary: "every field of a Persist struct must appear in both persist() and restore(), in the same order; enum variants must be covered by both",
    },
    SemanticRule {
        name: "persist-orphan",
        summary: "fields of Persist types must not store workspace types that lack a Persist impl",
    },
    SemanticRule {
        name: "unregistered-emission",
        summary: "file-writing call sites in library code must match the EMISSION_FILES registry (checked both ways)",
    },
    SemanticRule {
        name: "nondet-collection-flow",
        summary: "no HashMap/HashSet within one call of encode/write/emit functions (iteration order leaks into bytes)",
    },
];

/// Where a semantic finding lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// Index into the analyzed file set — filtered by that file's pragmas
    /// and test regions like any lexical finding.
    File(usize),
    /// A workspace-relative path with no analyzed file behind it (stale
    /// registry entries); exempt from pragma filtering.
    Path(String),
}

/// One semantic finding plus its anchor.
#[derive(Debug, Clone)]
pub struct SemanticFinding {
    pub anchor: Anchor,
    pub finding: Finding,
}

/// Runs all four semantic rules. `complete` marks a full workspace sweep,
/// which is the only mode where *absence* is meaningful (a registry entry
/// with no write sites is stale on a sweep, unknowable on a file subset).
pub fn check_workspace(
    files: &[SourceFile],
    g: &SymbolGraph,
    complete: bool,
) -> Vec<SemanticFinding> {
    let mut out = Vec::new();
    check_persist_field_drift(files, g, &mut out);
    check_persist_orphan(files, g, &mut out);
    check_unregistered_emission(files, g, complete, &mut out);
    check_nondet_collection_flow(files, g, &mut out);
    out
}

fn push(
    out: &mut Vec<SemanticFinding>,
    file: usize,
    rule: &'static str,
    line: u32,
    col: u32,
    message: String,
) {
    out.push(SemanticFinding {
        anchor: Anchor::File(file),
        finding: Finding {
            rule,
            line,
            col,
            message,
        },
    });
}

/// First-occurrence order of `self.<field>` references in a body span.
fn self_field_order(file: &SourceFile, span: Span, names: &BTreeSet<String>) -> Vec<String> {
    let src = &file.src;
    let hi = span.hi.min(file.sig_len());
    let lo = span.lo.min(hi);
    let mut order: Vec<String> = Vec::new();
    for i in lo..hi.saturating_sub(2) {
        if !file.sig_token(i).is_ident(src, "self") || !file.sig_token(i + 1).is_punct(src, ".") {
            continue;
        }
        let t = file.sig_token(i + 2);
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = String::from_utf8_lossy(t.bytes(src)).into_owned();
        if names.contains(&name) && !order.iter().any(|n| n == &name) {
            order.push(name);
        }
    }
    order
}

/// First-occurrence order of bare mentions of `names` in a body span —
/// catches struct-literal fields, `let` bindings, and shorthand init.
fn mention_order(file: &SourceFile, span: Span, names: &BTreeSet<String>) -> Vec<String> {
    let src = &file.src;
    let mut order: Vec<String> = Vec::new();
    for (_, t) in file.span_tokens(span) {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = String::from_utf8_lossy(t.bytes(src)).into_owned();
        if names.contains(&name) && !order.iter().any(|n| n == &name) {
            order.push(name);
        }
    }
    order
}

/// All idents from `names` mentioned anywhere in a body span.
fn mentions_of(file: &SourceFile, span: Span, names: &BTreeSet<String>) -> BTreeSet<String> {
    mention_order(file, span, names).into_iter().collect()
}

/// `persist-field-drift` — the core resume-correctness rule. For every
/// `impl Persist for T` where `T` resolves to exactly one workspace
/// definition:
///
/// * struct with named fields: every field must be referenced as
///   `self.<field>` in `persist()` and mentioned in `restore()`, and the
///   first-reference order of the two bodies must agree (field-by-field
///   codecs have no tags, so order *is* the wire format);
/// * enum: if either body names any variant, both bodies must name every
///   variant (an all-index codec mentions none on both sides — that
///   symmetric style is accepted).
///
/// Tuple structs are skipped: `self.0` and positional construction carry
/// no names to cross-check.
fn check_persist_field_drift(
    files: &[SourceFile],
    g: &SymbolGraph,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "persist-field-drift";
    for pi in &g.persist_impls {
        let file = &files[pi.file];
        if !is_library(file) {
            continue;
        }
        let (Some(enc), Some(dec)) = (pi.encode, pi.decode) else {
            continue;
        };
        if let Some(r) = g.unique_struct(&pi.type_name) {
            let s = &files[r.file].ast.structs[r.item];
            if s.tuple || s.fields.is_empty() {
                continue;
            }
            let names: BTreeSet<String> = s.fields.iter().map(|f| f.name.clone()).collect();
            let enc_order = self_field_order(file, enc, &names);
            let dec_order = mention_order(file, dec, &names);
            let mut complete = true;
            for f in &s.fields {
                if !enc_order.contains(&f.name) {
                    complete = false;
                    push(out, pi.file, RULE, pi.line, pi.col, format!(
                        "field `{}` of `{}` is never encoded in persist(): a resumed campaign would silently drop it",
                        f.name, pi.type_name
                    ));
                }
                if !dec_order.contains(&f.name) {
                    complete = false;
                    push(out, pi.file, RULE, pi.line, pi.col, format!(
                        "field `{}` of `{}` is never assigned in restore(): decode has drifted from encode",
                        f.name, pi.type_name
                    ));
                }
            }
            if complete && enc_order != dec_order {
                push(out, pi.file, RULE, pi.line, pi.col, format!(
                    "persist() and restore() touch the fields of `{}` in different orders ([{}] vs [{}]): field-by-field codecs have no tags, so bytes land in the wrong fields",
                    pi.type_name,
                    enc_order.join(", "),
                    dec_order.join(", ")
                ));
            }
        } else if let Some(r) = g.unique_enum(&pi.type_name) {
            let e = &files[r.file].ast.enums[r.item];
            if e.variants.is_empty() {
                continue;
            }
            let names: BTreeSet<String> = e.variants.iter().map(|v| v.name.clone()).collect();
            let enc_seen = mentions_of(file, enc, &names);
            let dec_seen = mentions_of(file, dec, &names);
            if enc_seen.is_empty() && dec_seen.is_empty() {
                continue; // symmetric index-based codec
            }
            for v in &e.variants {
                for (side, seen) in [("persist()", &enc_seen), ("restore()", &dec_seen)] {
                    if !seen.contains(&v.name) {
                        push(out, pi.file, RULE, pi.line, pi.col, format!(
                            "variant `{}` of `{}` is not covered in {side}: the codec sides disagree on the variant set",
                            v.name, pi.type_name
                        ));
                    }
                }
            }
        }
    }
}

/// `persist-orphan` — a field of a `Persist` struct that stores a
/// workspace-defined type without its own `Persist` impl cannot actually
/// reach journal/checkpoint bytes; either the impl was forgotten or the
/// field silently falls out of persisted state.
fn check_persist_orphan(files: &[SourceFile], g: &SymbolGraph, out: &mut Vec<SemanticFinding>) {
    const RULE: &str = "persist-orphan";
    let mut reported: BTreeSet<(usize, u32, u32, String)> = BTreeSet::new();
    for pi in &g.persist_impls {
        if !is_library(&files[pi.file]) {
            continue;
        }
        let Some(r) = g.unique_struct(&pi.type_name) else {
            continue;
        };
        let def = &files[r.file];
        let s = &def.ast.structs[r.item];
        for field in &s.fields {
            for (_, t) in def.span_tokens(field.ty) {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let bytes = t.bytes(&def.src);
                if !bytes.first().is_some_and(u8::is_ascii_uppercase) {
                    continue;
                }
                let name = String::from_utf8_lossy(bytes).into_owned();
                if g.defines_type(&name)
                    && !g.persist_types.contains(&name)
                    && reported.insert((r.file, field.line, field.col, name.clone()))
                {
                    push(out, r.file, RULE, field.line, field.col, format!(
                        "field `{}` of Persist type `{}` stores `{name}`, which has no Persist impl: it cannot round-trip through journal/checkpoint state",
                        field.name, pi.type_name
                    ));
                }
            }
        }
    }
}

/// `unregistered-emission` — the `EMISSION_FILES` registry is derived
/// facts, not trust: every file-writing call site found in library code
/// must live in a registered file (direction A), and on a complete sweep
/// every registered file must still contain at least one write site
/// (direction B, staleness).
fn check_unregistered_emission(
    files: &[SourceFile],
    g: &SymbolGraph,
    complete: bool,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "unregistered-emission";
    let mut live_entries: BTreeSet<&str> = BTreeSet::new();
    for f in &g.fns {
        let file = &files[f.file];
        if !is_library(file) || f.write_sites.is_empty() {
            continue;
        }
        let path = file.meta.path.as_str();
        if let Some(entry) = EMISSION_FILES.iter().find(|e| **e == path) {
            live_entries.insert(entry);
            continue;
        }
        for ws in &f.write_sites {
            push(out, f.file, RULE, ws.line, ws.col, format!(
                "{} writes a file, but {path} is not in the EMISSION_FILES registry: register it so emission invariants cover this output",
                ws.callee
            ));
        }
    }
    if complete {
        for entry in EMISSION_FILES {
            if !live_entries.contains(entry) {
                out.push(SemanticFinding {
                    anchor: Anchor::Path((*entry).to_string()),
                    finding: Finding {
                        rule: RULE,
                        line: 1,
                        col: 1,
                        message: format!(
                            "EMISSION_FILES entry `{entry}` has no file-writing call sites: the writes moved or the entry is stale"
                        ),
                    },
                });
            }
        }
    }
}

/// Why a function counts as an emission/persistence sink, if it does.
fn sink_reason(f: &FnNode) -> Option<String> {
    if f.impl_trait.as_deref() == Some("Persist") {
        return Some(format!(
            "the Persist impl of `{}`",
            f.impl_type.as_deref().unwrap_or("?")
        ));
    }
    if !f.write_sites.is_empty() {
        return Some(format!("file-writing function `{}`", f.name));
    }
    for prefix in ["write_", "emit_", "export_", "render_"] {
        if f.name.starts_with(prefix) {
            return Some(format!("emission function `{}`", f.name));
        }
    }
    // Vantage-fusion folds feed detection input, checkpoints and reports:
    // hash-ordered iteration there leaks roster order into all three.
    for prefix in ["fuse_", "merge_"] {
        if f.name.starts_with(prefix) {
            return Some(format!("ordered-merge function `{}`", f.name));
        }
    }
    // The passive signal's ledgers and seasonal predictions feed both the
    // version-4 checkpoint bytes and the ibr_signal.csv emission:
    // hash-ordered iteration in either would leak into persisted state.
    for prefix in ["ibr_", "predict_"] {
        if f.name.starts_with(prefix) {
            return Some(format!("passive-signal function `{}`", f.name));
        }
    }
    None
}

/// `nondet-collection-flow` — `HashMap`/`HashSet` iteration order is
/// randomized per process, so any such collection inside an encode/write/
/// emit function, or inside a function it directly calls, can leak
/// nondeterministic order into persisted or emitted bytes. One call-graph
/// hop is checked: that is where the historical BTreeMap fixes all were,
/// and deeper flows go through typed state that the `unordered-persist`
/// file rule already guards.
fn check_nondet_collection_flow(
    files: &[SourceFile],
    g: &SymbolGraph,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "nondet-collection-flow";
    let mut reported: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    for f in &g.fns {
        if !is_library(&files[f.file]) {
            continue;
        }
        let Some(reason) = sink_reason(f) else {
            continue;
        };
        for h in &f.hash_sites {
            if reported.insert((f.file, h.line, h.col)) {
                push(out, f.file, RULE, h.line, h.col, format!(
                    "{} inside {reason}: iteration order can leak into persisted/emitted bytes; use BTreeMap/BTreeSet or sort at the boundary",
                    h.collection
                ));
            }
        }
        for callee in &f.callees {
            let Some(indices) = g.fns_by_name.get(callee) else {
                continue;
            };
            for &ci in indices {
                let c = &g.fns[ci];
                if !is_library(&files[c.file]) {
                    continue;
                }
                for h in &c.hash_sites {
                    if reported.insert((c.file, h.line, h.col)) {
                        push(out, c.file, RULE, h.line, h.col, format!(
                            "{} inside `{}`, called from {reason}: iteration order can leak into persisted/emitted bytes; use BTreeMap/BTreeSet or sort at the boundary",
                            h.collection, c.name
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileMeta, SourceFile};
    use crate::graph::build;

    fn analyze(path: &str, src: &str) -> SourceFile {
        SourceFile::analyze(FileMeta::infer(path), src.as_bytes().to_vec())
    }

    fn run(files: &[SourceFile]) -> Vec<SemanticFinding> {
        let g = build(files);
        check_workspace(files, &g, false)
    }

    fn rules_of(findings: &[SemanticFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.finding.rule).collect()
    }

    #[test]
    fn symmetric_struct_codec_is_clean() {
        let f = analyze(
            "crates/types/src/x.rs",
            "pub struct P { a: u32, b: u64 }\n\
             impl Persist for P {\n\
                 fn persist(&self, w: &mut W) { w.put_u32(self.a); w.put_u64(self.b); }\n\
                 fn restore(r: &mut R) -> Result<Self> {\n\
                     Ok(P { a: r.get_u32()?, b: r.get_u64()? })\n\
                 }\n\
             }\n",
        );
        assert!(rules_of(&run(std::slice::from_ref(&f))).is_empty());
    }

    #[test]
    fn missing_decode_field_is_drift() {
        let g = analyze(
            "crates/types/src/y.rs",
            "pub struct Q { a: u32, b: u64 }\n\
             impl Persist for Q {\n\
                 fn persist(&self, w: &mut W) { w.put_u32(self.a); w.put_u64(self.b); }\n\
                 fn restore(r: &mut R) -> Result<Self> { Ok(Q { a: r.get_u32()? }) }\n\
             }\n",
        );
        let findings = run(std::slice::from_ref(&g));
        assert_eq!(rules_of(&findings), ["persist-field-drift"]);
        assert!(findings[0].finding.message.contains("`b`"));
        assert_eq!(findings[0].finding.line, 2);
    }

    #[test]
    fn field_order_mismatch_is_drift() {
        let f = analyze(
            "crates/types/src/x.rs",
            "pub struct P { a: u32, b: u64 }\n\
             impl Persist for P {\n\
                 fn persist(&self, w: &mut W) { w.put_u64(self.b); w.put_u32(self.a); }\n\
                 fn restore(r: &mut R) -> Result<Self> {\n\
                     Ok(P { a: r.get_u32()?, b: r.get_u64()? })\n\
                 }\n\
             }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(rules_of(&findings), ["persist-field-drift"]);
        assert!(findings[0].finding.message.contains("different orders"));
    }

    #[test]
    fn asymmetric_enum_codec_is_drift_but_index_style_is_clean() {
        let asym = analyze(
            "crates/types/src/x.rs",
            "pub enum K { A, B }\n\
             impl Persist for K {\n\
                 fn persist(&self, w: &mut W) { w.put_u8(self.index()); }\n\
                 fn restore(r: &mut R) -> Result<Self> {\n\
                     Ok(match r.get_u8()? { 0 => K::A, _ => K::B })\n\
                 }\n\
             }\n",
        );
        let findings = run(std::slice::from_ref(&asym));
        assert_eq!(
            rules_of(&findings),
            ["persist-field-drift", "persist-field-drift"]
        );
        let index_both = analyze(
            "crates/types/src/x.rs",
            "pub enum K { A, B }\n\
             impl Persist for K {\n\
                 fn persist(&self, w: &mut W) { w.put_u8(self.index()); }\n\
                 fn restore(r: &mut R) -> Result<Self> { Self::from_index(r.get_u8()?) }\n\
             }\n",
        );
        assert!(rules_of(&run(std::slice::from_ref(&index_both))).is_empty());
    }

    #[test]
    fn cross_file_impl_resolves_to_definition() {
        let def = analyze(
            "crates/types/src/def.rs",
            "pub struct P { a: u32, b: u64 }\n",
        );
        let imp = analyze(
            "crates/core/src/imp.rs",
            "impl Persist for P {\n\
                 fn persist(&self, w: &mut W) { w.put_u32(self.a); }\n\
                 fn restore(r: &mut R) -> Result<Self> { Ok(P { a: r.get_u32()? }) }\n\
             }\n",
        );
        let findings = run(&[def, imp]);
        assert_eq!(
            rules_of(&findings),
            ["persist-field-drift", "persist-field-drift"]
        );
    }

    #[test]
    fn orphan_field_type_is_flagged_at_its_definition() {
        let f = analyze(
            "crates/types/src/x.rs",
            "pub struct Inner { x: u8 }\n\
             pub struct Outer { inner: Inner }\n\
             impl Persist for Outer {\n\
                 fn persist(&self, w: &mut W) { w.put(self.inner); }\n\
                 fn restore(r: &mut R) -> Result<Self> { Ok(Outer { inner: r.get()? }) }\n\
             }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(rules_of(&findings), ["persist-orphan"]);
        assert_eq!(findings[0].finding.line, 2);
        assert!(findings[0].finding.message.contains("`Inner`"));
    }

    #[test]
    fn unregistered_write_site_fires_and_registry_file_does_not() {
        let rogue = analyze(
            "crates/core/src/rogue.rs",
            "fn dump(p: &Path, b: &[u8]) { std::fs::write(p, b).ok(); }\n",
        );
        let findings = run(std::slice::from_ref(&rogue));
        assert_eq!(rules_of(&findings), ["unregistered-emission"]);
        let registered = analyze(
            "crates/feeds/src/quarantine.rs",
            "fn dump(p: &Path, b: &[u8]) { std::fs::write(p, b).ok(); }\n",
        );
        assert!(rules_of(&run(std::slice::from_ref(&registered))).is_empty());
    }

    #[test]
    fn stale_registry_entry_fires_only_on_complete_sweeps() {
        let f = analyze("crates/core/src/quiet.rs", "fn nothing() {}\n");
        let g = build(std::slice::from_ref(&f));
        let partial = check_workspace(std::slice::from_ref(&f), &g, false);
        assert!(partial.is_empty());
        let complete = check_workspace(std::slice::from_ref(&f), &g, true);
        assert_eq!(complete.len(), EMISSION_FILES.len());
        assert!(complete
            .iter()
            .all(|sf| matches!(sf.anchor, Anchor::Path(_))));
    }

    #[test]
    fn hash_in_callee_of_emitter_is_flagged_one_hop_away() {
        let f = analyze(
            "crates/geodb/src/x.rs",
            "fn emit_series(out: &mut O) { shape(out); }\n\
             fn shape(out: &mut O) { let m: HashMap<u8, u8> = HashMap::new(); }\n\
             fn unrelated() { let m2: HashMap<u8, u8> = HashMap::new(); }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(
            rules_of(&findings),
            ["nondet-collection-flow", "nondet-collection-flow"]
        );
        assert!(findings.iter().all(|sf| sf.finding.line == 2));
    }

    #[test]
    fn passive_signal_functions_are_hash_sinks() {
        // `ibr_*` and `predict_*` feed checkpoint bytes and the
        // ibr_signal.csv emission — hash collections are banned there too.
        for name in ["ibr_signal_csv", "predict_volume"] {
            let f = analyze(
                "crates/core/src/x.rs",
                &format!("fn {name}() {{ let m: HashMap<u8, u8> = HashMap::new(); }}\n"),
            );
            let findings = run(std::slice::from_ref(&f));
            assert_eq!(
                rules_of(&findings),
                ["nondet-collection-flow", "nondet-collection-flow"],
                "{name}"
            );
        }
        // A neighbouring non-sink name stays clean.
        let f = analyze(
            "crates/core/src/x.rs",
            "fn tabulate() { let m: HashMap<u8, u8> = HashMap::new(); }\n",
        );
        assert!(run(std::slice::from_ref(&f)).is_empty());
    }
}
