//! The semantic rules: cross-file invariants over the symbol graph.
//!
//! The lexical rules ([`crate::rules`]) pattern-match token shapes inside
//! one file; these rules reason about relationships the token stream
//! cannot express — a struct defined in one file and serialized in
//! another, a write site that the emission registry never heard of, a
//! `HashMap` transitively reachable from an encoder, shard-ordered data
//! reaching a sink without an ordering step. They run over the
//! [`crate::graph::SymbolGraph`] assembled from every analyzed file and
//! the [`crate::dataflow`] substrate built on top of it (resolved call
//! edges, fixed-point reachability, taint).
//!
//! Findings anchor to real positions ([`Anchor::File`]), so the engine
//! can apply the same pragma and test-region filtering as lexical rules.
//! The one exception is a *stale registry entry* — a path with no code
//! behind it — which anchors to the path itself ([`Anchor::Path`]) and
//! only fires on a complete workspace sweep.

use crate::context::{FileKind, SourceFile};
use crate::dataflow::{build_call_graph, shard_taint, CallGraph};
use crate::graph::{is_library, FnNode, SymbolGraph};
use crate::lexer::TokenKind;
use crate::parser::Span;
use crate::rules::{Finding, EMISSION_FILES, EMISSION_OUTPUTS, RNG_DOMAINS};
use std::collections::{BTreeMap, BTreeSet};

/// Metadata for a workspace-level rule (the check itself lives in
/// [`check_workspace`] — except the three wire-schema rules, implemented
/// in [`crate::schema`] and run by the engine alongside this pass; these
/// entries feed `--list-rules` and the fixture completeness test).
pub struct SemanticRule {
    pub name: &'static str,
    pub summary: &'static str,
}

/// The semantic registry, in diagnostic-priority order.
pub const SEMANTIC_RULES: &[SemanticRule] = &[
    SemanticRule {
        name: "persist-field-drift",
        summary: "every field of a Persist struct must appear in both persist() and restore(), in the same order; enum variants must be covered by both",
    },
    SemanticRule {
        name: "persist-orphan",
        summary: "fields of Persist types must not store workspace types that lack a Persist impl",
    },
    SemanticRule {
        name: "unregistered-emission",
        summary: "file-writing call sites in library code must match the EMISSION_FILES registry (checked both ways)",
    },
    SemanticRule {
        name: "nondet-collection-flow",
        summary: "no HashMap/HashSet in any function transitively reachable from encode/write/emit surfaces (iteration order leaks into bytes)",
    },
    SemanticRule {
        name: "shard-merge-order",
        summary: "values produced by sharded/fan-out iteration must pass a deterministic ordering step before reaching a persist/emit/merge sink",
    },
    SemanticRule {
        name: "rng-domain-collision",
        summary: "WorldRng::domain() arguments must be string literals, workspace-unique, and listed in the RNG_DOMAINS registry (checked both ways)",
    },
    SemanticRule {
        name: "shared-mutable-in-shard-path",
        summary: "no Mutex/RwLock/RefCell/Cell/static-mut/Relaxed atomics in functions transitively reachable from measure_round/apply_round",
    },
    SemanticRule {
        name: "float-reduction-order",
        summary: "no order-sensitive f64 sum/product/additive-fold in functions transitively reachable from emission surfaces",
    },
    SemanticRule {
        name: "frozen-version-edit",
        summary: "wire layouts frozen in SCHEMA.lock (versions v2-v5) must not be reordered, retyped, removed, or retagged; breaking edits ship behind a new version tag",
    },
    SemanticRule {
        name: "unprobed-version",
        summary: "every schema version a versioned encoder can write must be accepted by its decoder, and vice versa (a written-but-unreadable version strands checkpoints)",
    },
    SemanticRule {
        name: "schema-lock-drift",
        summary: "the statically extracted wire schema must match the committed SCHEMA.lock (regenerate with `fbs-lint schema --write-lock`)",
    },
];

/// Where a semantic finding lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// Index into the analyzed file set — filtered by that file's pragmas
    /// and test regions like any lexical finding.
    File(usize),
    /// A workspace-relative path with no analyzed file behind it (stale
    /// registry entries); exempt from pragma filtering.
    Path(String),
}

/// One semantic finding plus its anchor.
#[derive(Debug, Clone)]
pub struct SemanticFinding {
    pub anchor: Anchor,
    pub finding: Finding,
}

/// The dataflow context shared by every reachability-based rule: the
/// resolved call graph, plus the sink-reachability closure (which fn is
/// transitively reachable from which emission/persistence sink, and why).
/// Built once per [`check_workspace`] call.
struct Flow {
    cg: CallGraph,
    /// Fn indices of every sink root, in graph order.
    sink_roots: Vec<usize>,
    /// `sink_reasons[i]` explains why `sink_roots[i]` is a sink.
    sink_reasons: Vec<String>,
    /// For every fn: index into `sink_roots` of the first sink reaching it.
    sink_reach: Vec<Option<usize>>,
}

impl Flow {
    fn build(files: &[SourceFile], g: &SymbolGraph) -> Flow {
        let cg = build_call_graph(files, g);
        let mut sink_roots = Vec::new();
        let mut sink_reasons = Vec::new();
        for (i, f) in g.fns.iter().enumerate() {
            if !is_library(&files[f.file]) {
                continue;
            }
            if let Some(reason) = sink_reason(f) {
                sink_roots.push(i);
                sink_reasons.push(reason);
            }
        }
        let sink_reach = cg.reach_from(&sink_roots);
        Flow {
            cg,
            sink_roots,
            sink_reasons,
            sink_reach,
        }
    }

    /// How fn `i` relates to the sink surface: `None` if unreachable,
    /// otherwise a phrase for diagnostics — either the sink's own reason
    /// (when `i` *is* the sink) or "`helper`, transitively reachable from
    /// <reason>".
    fn sink_context(&self, g: &SymbolGraph, i: usize) -> Option<String> {
        let ri = self.sink_reach[i]?;
        if self.sink_roots[ri] == i {
            Some(self.sink_reasons[ri].clone())
        } else {
            Some(format!(
                "`{}`, transitively reachable from {}",
                g.fns[i].name, self.sink_reasons[ri]
            ))
        }
    }
}

/// Runs all eight semantic rules. `complete` marks a full workspace sweep,
/// which is the only mode where *absence* is meaningful (a registry entry
/// with no live call sites is stale on a sweep, unknowable on a file
/// subset).
pub fn check_workspace(
    files: &[SourceFile],
    g: &SymbolGraph,
    complete: bool,
) -> Vec<SemanticFinding> {
    let flow = Flow::build(files, g);
    let mut out = Vec::new();
    check_persist_field_drift(files, g, &mut out);
    check_persist_orphan(files, g, &mut out);
    check_unregistered_emission(files, g, complete, &mut out);
    check_nondet_collection_flow(files, g, &flow, &mut out);
    check_shard_merge_order(files, g, &flow, &mut out);
    check_rng_domain_collision(files, g, complete, &mut out);
    check_shared_mutable_in_shard_path(files, g, &flow, &mut out);
    check_float_reduction_order(files, g, &flow, &mut out);
    out
}

fn push(
    out: &mut Vec<SemanticFinding>,
    file: usize,
    rule: &'static str,
    line: u32,
    col: u32,
    message: String,
) {
    out.push(SemanticFinding {
        anchor: Anchor::File(file),
        finding: Finding {
            rule,
            line,
            col,
            message,
        },
    });
}

/// First-occurrence order of `self.<field>` references in a body span.
fn self_field_order(file: &SourceFile, span: Span, names: &BTreeSet<String>) -> Vec<String> {
    let src = &file.src;
    let hi = span.hi.min(file.sig_len());
    let lo = span.lo.min(hi);
    let mut order: Vec<String> = Vec::new();
    for i in lo..hi.saturating_sub(2) {
        if !file.sig_token(i).is_ident(src, "self") || !file.sig_token(i + 1).is_punct(src, ".") {
            continue;
        }
        let t = file.sig_token(i + 2);
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = String::from_utf8_lossy(t.bytes(src)).into_owned();
        if names.contains(&name) && !order.iter().any(|n| n == &name) {
            order.push(name);
        }
    }
    order
}

/// First-occurrence order of bare mentions of `names` in a body span —
/// catches struct-literal fields, `let` bindings, and shorthand init.
fn mention_order(file: &SourceFile, span: Span, names: &BTreeSet<String>) -> Vec<String> {
    let src = &file.src;
    let mut order: Vec<String> = Vec::new();
    for (_, t) in file.span_tokens(span) {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = String::from_utf8_lossy(t.bytes(src)).into_owned();
        if names.contains(&name) && !order.iter().any(|n| n == &name) {
            order.push(name);
        }
    }
    order
}

/// All idents from `names` mentioned anywhere in a body span.
fn mentions_of(file: &SourceFile, span: Span, names: &BTreeSet<String>) -> BTreeSet<String> {
    mention_order(file, span, names).into_iter().collect()
}

/// `persist-field-drift` — the core resume-correctness rule. For every
/// `impl Persist for T` where `T` resolves to exactly one workspace
/// definition:
///
/// * struct with named fields: every field must be referenced as
///   `self.<field>` in `persist()` and mentioned in `restore()`, and the
///   first-reference order of the two bodies must agree (field-by-field
///   codecs have no tags, so order *is* the wire format);
/// * enum: if either body names any variant, both bodies must name every
///   variant (an all-index codec mentions none on both sides — that
///   symmetric style is accepted).
///
/// Tuple structs are skipped: `self.0` and positional construction carry
/// no names to cross-check.
fn check_persist_field_drift(
    files: &[SourceFile],
    g: &SymbolGraph,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "persist-field-drift";
    for pi in &g.persist_impls {
        let file = &files[pi.file];
        if !is_library(file) {
            continue;
        }
        let (Some(enc), Some(dec)) = (pi.encode, pi.decode) else {
            continue;
        };
        if let Some(r) = g.unique_struct(&pi.type_name) {
            let s = &files[r.file].ast.structs[r.item];
            if s.tuple || s.fields.is_empty() {
                continue;
            }
            let names: BTreeSet<String> = s.fields.iter().map(|f| f.name.clone()).collect();
            let enc_order = self_field_order(file, enc, &names);
            let dec_order = mention_order(file, dec, &names);
            let mut complete = true;
            for f in &s.fields {
                if !enc_order.contains(&f.name) {
                    complete = false;
                    push(out, pi.file, RULE, pi.line, pi.col, format!(
                        "field `{}` of `{}` is never encoded in persist(): a resumed campaign would silently drop it",
                        f.name, pi.type_name
                    ));
                }
                if !dec_order.contains(&f.name) {
                    complete = false;
                    push(out, pi.file, RULE, pi.line, pi.col, format!(
                        "field `{}` of `{}` is never assigned in restore(): decode has drifted from encode",
                        f.name, pi.type_name
                    ));
                }
            }
            if complete && enc_order != dec_order {
                push(out, pi.file, RULE, pi.line, pi.col, format!(
                    "persist() and restore() touch the fields of `{}` in different orders ([{}] vs [{}]): field-by-field codecs have no tags, so bytes land in the wrong fields",
                    pi.type_name,
                    enc_order.join(", "),
                    dec_order.join(", ")
                ));
            }
        } else if let Some(r) = g.unique_enum(&pi.type_name) {
            let e = &files[r.file].ast.enums[r.item];
            if e.variants.is_empty() {
                continue;
            }
            let names: BTreeSet<String> = e.variants.iter().map(|v| v.name.clone()).collect();
            let enc_seen = mentions_of(file, enc, &names);
            let dec_seen = mentions_of(file, dec, &names);
            if enc_seen.is_empty() && dec_seen.is_empty() {
                continue; // symmetric index-based codec
            }
            for v in &e.variants {
                for (side, seen) in [("persist()", &enc_seen), ("restore()", &dec_seen)] {
                    if !seen.contains(&v.name) {
                        push(out, pi.file, RULE, pi.line, pi.col, format!(
                            "variant `{}` of `{}` is not covered in {side}: the codec sides disagree on the variant set",
                            v.name, pi.type_name
                        ));
                    }
                }
            }
        }
    }
}

/// `persist-orphan` — a field of a `Persist` struct that stores a
/// workspace-defined type without its own `Persist` impl cannot actually
/// reach journal/checkpoint bytes; either the impl was forgotten or the
/// field silently falls out of persisted state.
fn check_persist_orphan(files: &[SourceFile], g: &SymbolGraph, out: &mut Vec<SemanticFinding>) {
    const RULE: &str = "persist-orphan";
    let mut reported: BTreeSet<(usize, u32, u32, String)> = BTreeSet::new();
    for pi in &g.persist_impls {
        if !is_library(&files[pi.file]) {
            continue;
        }
        let Some(r) = g.unique_struct(&pi.type_name) else {
            continue;
        };
        let def = &files[r.file];
        let s = &def.ast.structs[r.item];
        for field in &s.fields {
            for (_, t) in def.span_tokens(field.ty) {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let bytes = t.bytes(&def.src);
                if !bytes.first().is_some_and(u8::is_ascii_uppercase) {
                    continue;
                }
                let name = String::from_utf8_lossy(bytes).into_owned();
                if g.defines_type(&name)
                    && !g.persist_types.contains(&name)
                    && reported.insert((r.file, field.line, field.col, name.clone()))
                {
                    push(out, r.file, RULE, field.line, field.col, format!(
                        "field `{}` of Persist type `{}` stores `{name}`, which has no Persist impl: it cannot round-trip through journal/checkpoint state",
                        field.name, pi.type_name
                    ));
                }
            }
        }
    }
}

/// `unregistered-emission` — the `EMISSION_FILES` registry is derived
/// facts, not trust: every file-writing call site found in library code
/// must live in a registered file (direction A), and on a complete sweep
/// every registered file must still contain at least one write site
/// (direction B, staleness).
fn check_unregistered_emission(
    files: &[SourceFile],
    g: &SymbolGraph,
    complete: bool,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "unregistered-emission";
    let mut live_entries: BTreeSet<&str> = BTreeSet::new();
    for f in &g.fns {
        let file = &files[f.file];
        if !is_library(file) || f.write_sites.is_empty() {
            continue;
        }
        let path = file.meta.path.as_str();
        if let Some(entry) = EMISSION_FILES.iter().find(|e| **e == path) {
            live_entries.insert(entry);
            continue;
        }
        for ws in &f.write_sites {
            push(out, f.file, RULE, ws.line, ws.col, format!(
                "{} writes a file, but {path} is not in the EMISSION_FILES registry: register it so emission invariants cover this output",
                ws.callee
            ));
        }
    }
    if complete {
        for entry in EMISSION_FILES {
            if !live_entries.contains(entry) {
                out.push(SemanticFinding {
                    anchor: Anchor::Path((*entry).to_string()),
                    finding: Finding {
                        rule: RULE,
                        line: 1,
                        col: 1,
                        message: format!(
                            "EMISSION_FILES entry `{entry}` has no file-writing call sites: the writes moved or the entry is stale"
                        ),
                    },
                });
            }
        }
    }

    // Env-derived artifact names: bench and gate binaries that resolve an
    // output path through `env::var("…")` with a `.json` literal default
    // must name an artifact the EMISSION_OUTPUTS registry (and therefore
    // CI's artifact uploads) knows about. Library emissions are covered
    // above by file path; these binaries are covered by artifact name.
    let mut live_outputs: BTreeSet<&str> = BTreeSet::new();
    for f in &g.fns {
        let file = &files[f.file];
        if !matches!(file.meta.kind, FileKind::Bin | FileKind::Bench) || f.write_sites.is_empty() {
            continue;
        }
        for site in &f.artifact_sites {
            let Some(default) = &site.default else {
                continue;
            };
            if !default.ends_with(".json") {
                continue;
            }
            match EMISSION_OUTPUTS.iter().find(|e| *e == default) {
                Some(entry) => {
                    live_outputs.insert(entry);
                }
                None => push(out, f.file, RULE, site.line, site.col, format!(
                    "env-derived artifact `{default}` (via {}) is not in the EMISSION_OUTPUTS registry: register it so CI uploads cover this output",
                    site.env
                )),
            }
        }
    }
    if complete {
        for entry in EMISSION_OUTPUTS {
            if !live_outputs.contains(entry) {
                out.push(SemanticFinding {
                    anchor: Anchor::Path((*entry).to_string()),
                    finding: Finding {
                        rule: RULE,
                        line: 1,
                        col: 1,
                        message: format!(
                            "EMISSION_OUTPUTS entry `{entry}` has no env-derived write site: the artifact moved or the entry is stale"
                        ),
                    },
                });
            }
        }
    }
}

/// Why a function counts as an emission/persistence sink, if it does.
fn sink_reason(f: &FnNode) -> Option<String> {
    if f.impl_trait.as_deref() == Some("Persist") {
        return Some(format!(
            "the Persist impl of `{}`",
            f.impl_type.as_deref().unwrap_or("?")
        ));
    }
    if !f.write_sites.is_empty() {
        return Some(format!("file-writing function `{}`", f.name));
    }
    for prefix in ["write_", "emit_", "export_", "render_"] {
        if f.name.starts_with(prefix) {
            return Some(format!("emission function `{}`", f.name));
        }
    }
    // Vantage-fusion and the shard executor's reduce fold feed detection
    // input, checkpoints and reports: hash-ordered iteration there leaks
    // roster/scheduling order into all three.
    for prefix in ["fuse_", "merge_", "reduce_"] {
        if f.name.starts_with(prefix) {
            return Some(format!("ordered-merge function `{}`", f.name));
        }
    }
    // The passive signal's ledgers and seasonal predictions feed both the
    // version-4 checkpoint bytes and the ibr_signal.csv emission:
    // hash-ordered iteration in either would leak into persisted state.
    for prefix in ["ibr_", "predict_"] {
        if f.name.starts_with(prefix) {
            return Some(format!("passive-signal function `{}`", f.name));
        }
    }
    None
}

/// `nondet-collection-flow` — `HashMap`/`HashSet` iteration order is
/// randomized per process, so any such collection inside a function
/// *transitively* reachable from an encode/write/emit surface can leak
/// nondeterministic order into persisted or emitted bytes. PR 5 checked
/// one call-graph hop; the fixed-point closure in [`crate::dataflow`]
/// closes the gap a two-hop helper chain used to slip through.
fn check_nondet_collection_flow(
    files: &[SourceFile],
    g: &SymbolGraph,
    flow: &Flow,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "nondet-collection-flow";
    let mut reported: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    for (i, f) in g.fns.iter().enumerate() {
        if !is_library(&files[f.file]) || f.hash_sites.is_empty() {
            continue;
        }
        let Some(context) = flow.sink_context(g, i) else {
            continue;
        };
        for h in &f.hash_sites {
            if reported.insert((f.file, h.line, h.col)) {
                push(out, f.file, RULE, h.line, h.col, format!(
                    "{} inside {context}: iteration order can leak into persisted/emitted bytes; use BTreeMap/BTreeSet or sort at the boundary",
                    h.collection
                ));
            }
        }
    }
}

/// `shard-merge-order` — ROADMAP item 1's merge-determinism gate. Values
/// produced by sharded/fan-out iteration (`par_iter`, `spawn`, `shard_*`)
/// arrive in scheduling order; if they reach a persistence/emission/merge
/// sink without passing a deterministic ordering step (`sort*`,
/// `BTreeMap` collection, `ordered_*`/`roster_*`), shard timing leaks
/// into bytes the determinism contract pins. The taint pass runs inside
/// every library fn body; "is this call a sink?" consults both the
/// sink-name vocabulary and the workspace call graph (a call to any fn
/// that can reach a sink counts).
fn check_shard_merge_order(
    files: &[SourceFile],
    g: &SymbolGraph,
    flow: &Flow,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "shard-merge-order";
    // Names of workspace fns that can reach a sink: calling one of them
    // hands the (possibly unordered) value to the emission surface.
    let mut sinkish: BTreeSet<&str> = BTreeSet::new();
    for (i, f) in g.fns.iter().enumerate() {
        if flow.sink_reach[i].is_some() {
            sinkish.insert(f.name.as_str());
        }
    }
    let is_sink_call = |name: &str| -> bool {
        if crate::dataflow::is_order_step(name) {
            // A deterministic ordering step is the launder this rule asks
            // for — handing a fan-out result *into* one is the required
            // fix, not a violation, even when the step itself feeds a
            // sink (it delivers its caller a slot-ordered value).
            return false;
        }
        if sinkish.contains(name) || name == "persist" {
            return true;
        }
        [
            "write_", "emit_", "export_", "render_", "fuse_", "merge_", "reduce_", "ibr_",
            "predict_",
        ]
        .iter()
        .any(|p| name.starts_with(p))
    };
    for f in &g.fns {
        if !is_library(&files[f.file]) {
            continue;
        }
        let Some(body) = f.body else { continue };
        for t in shard_taint(&files[f.file], body, &is_sink_call) {
            // fbs-lint: allow(shard-merge-order) shard_taint is this analyzer's own single-threaded pass, name-matched as a source; findings arrive in body order
            push(out, f.file, RULE, t.line, t.col, format!(
                "results of `{}` reach sink `{}` without a deterministic ordering step: shard scheduling order would leak into persisted/emitted bytes; sort or roster-order them first",
                t.source, t.sink
            ));
        }
    }
}

/// `rng-domain-collision` — the world-RNG determinism contract says every
/// noise stream is addressed by a *distinct, literal* domain string. This
/// rule checks the whole contract against the [`RNG_DOMAINS`] registry:
///
/// * a `domain(<computed>)` argument cannot be audited for uniqueness —
///   flagged unless excused by a pragma explaining the subdomain scheme;
/// * a literal not listed in `RNG_DOMAINS` is unregistered;
/// * the same literal at two or more live call sites correlates two
///   subsystems' draws — every colliding site is flagged;
/// * on a complete sweep, a registry entry with no live call site is
///   stale (anchored at the registry's own file, pragma-exempt).
///
/// Sites inside `#[cfg(test)]` regions are skipped at collection time:
/// tests may legitimately re-draw a production domain to reproduce its
/// stream, and must not count as collisions against the live site.
fn check_rng_domain_collision(
    files: &[SourceFile],
    g: &SymbolGraph,
    complete: bool,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "rng-domain-collision";
    // literal → every live call site, in graph order.
    let mut sites: BTreeMap<String, Vec<(usize, u32, u32)>> = BTreeMap::new();
    for f in &g.fns {
        let file = &files[f.file];
        if !is_library(file) {
            continue;
        }
        for d in &f.domain_sites {
            if file.in_test_region(d.line) {
                continue;
            }
            let Some(lit) = d.literal.as_deref() else {
                push(out, f.file, RULE, d.line, d.col, format!(
                    "`{}` derives an RNG domain from a computed value: domain strings must be auditable literals from the RNG_DOMAINS registry, or carry a pragma explaining the subdomain scheme",
                    f.name
                ));
                continue;
            };
            if !RNG_DOMAINS.contains(&lit) {
                push(out, f.file, RULE, d.line, d.col, format!(
                    "RNG domain \"{lit}\" is not in the RNG_DOMAINS registry: register it so the domain namespace stays collision-checked"
                ));
            }
            sites
                .entry(lit.to_string())
                .or_default()
                .push((f.file, d.line, d.col));
        }
    }
    for (lit, locs) in &sites {
        if locs.len() < 2 {
            continue;
        }
        for &(fi, line, col) in locs {
            let others: Vec<String> = locs
                .iter()
                .filter(|&&(of, ol, _)| (of, ol) != (fi, line))
                .map(|&(of, ol, _)| format!("{}:{ol}", files[of].meta.path))
                .collect();
            push(out, fi, RULE, line, col, format!(
                "RNG domain \"{lit}\" is also drawn at {}: two call sites sharing a domain correlate their noise streams; derive the stream once and pass it down",
                others.join(", ")
            ));
        }
    }
    if complete {
        for entry in RNG_DOMAINS {
            if !sites.contains_key(*entry) {
                out.push(SemanticFinding {
                    anchor: Anchor::Path(format!("RNG_DOMAINS[\"{entry}\"]")),
                    finding: Finding {
                        rule: RULE,
                        line: 1,
                        col: 1,
                        message: format!(
                            "RNG_DOMAINS entry \"{entry}\" has no live call site: the draw moved or the entry is stale"
                        ),
                    },
                });
            }
        }
    }
}

/// `shared-mutable-in-shard-path` — the round loop is the surface ROADMAP
/// item 1 shards. Any interior mutability, lock, `static mut`, or relaxed
/// atomic in a function transitively reachable from `measure_round` /
/// `apply_round` makes per-round results depend on thread scheduling the
/// moment rounds run in parallel — before that it is merely latent, which
/// is exactly when it is cheap to fix.
fn check_shared_mutable_in_shard_path(
    files: &[SourceFile],
    g: &SymbolGraph,
    flow: &Flow,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "shared-mutable-in-shard-path";
    let mut roots = Vec::new();
    for (i, f) in g.fns.iter().enumerate() {
        if is_library(&files[f.file]) && matches!(f.name.as_str(), "measure_round" | "apply_round")
        {
            roots.push(i);
        }
    }
    if roots.is_empty() {
        return;
    }
    let reach = flow.cg.reach_from(&roots);
    for (i, f) in g.fns.iter().enumerate() {
        if !is_library(&files[f.file]) || f.shared_sites.is_empty() {
            continue;
        }
        let Some(ri) = reach[i] else { continue };
        let root = &g.fns[roots[ri]];
        let context = if roots[ri] == i {
            format!("round entrypoint `{}`", f.name)
        } else {
            format!(
                "`{}`, transitively reachable from round entrypoint `{}`",
                f.name, root.name
            )
        };
        for s in &f.shared_sites {
            push(out, f.file, RULE, s.line, s.col, format!(
                "`{}` inside {context}: shared mutable state makes round results depend on thread scheduling once the round loop shards; thread it through round state or justify with a pragma",
                s.what
            ));
        }
    }
}

/// `float-reduction-order` — float addition is not associative, so a
/// `.sum::<f64>()` / additive fold computes different bytes under
/// different accumulation orders. Inside a function reachable from an
/// emission/persistence surface that order *is* the wire format; the
/// sharded engine must either pin it (accumulate in roster order) or the
/// site must carry a pragma recording why the current order is stable.
fn check_float_reduction_order(
    files: &[SourceFile],
    g: &SymbolGraph,
    flow: &Flow,
    out: &mut Vec<SemanticFinding>,
) {
    const RULE: &str = "float-reduction-order";
    for (i, f) in g.fns.iter().enumerate() {
        if !is_library(&files[f.file]) || f.float_folds.is_empty() {
            continue;
        }
        let Some(context) = flow.sink_context(g, i) else {
            continue;
        };
        for ff in &f.float_folds {
            push(out, f.file, RULE, ff.line, ff.col, format!(
                "order-sensitive `{}` inside {context}: float accumulation order changes emitted bytes; accumulate in a pinned (roster) order or justify with a pragma",
                ff.shape
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileMeta, SourceFile};
    use crate::graph::build;

    fn analyze(path: &str, src: &str) -> SourceFile {
        SourceFile::analyze(FileMeta::infer(path), src.as_bytes().to_vec())
    }

    fn run(files: &[SourceFile]) -> Vec<SemanticFinding> {
        let g = build(files);
        check_workspace(files, &g, false)
    }

    fn rules_of(findings: &[SemanticFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.finding.rule).collect()
    }

    #[test]
    fn symmetric_struct_codec_is_clean() {
        let f = analyze(
            "crates/types/src/x.rs",
            "pub struct P { a: u32, b: u64 }\n\
             impl Persist for P {\n\
                 fn persist(&self, w: &mut W) { w.put_u32(self.a); w.put_u64(self.b); }\n\
                 fn restore(r: &mut R) -> Result<Self> {\n\
                     Ok(P { a: r.get_u32()?, b: r.get_u64()? })\n\
                 }\n\
             }\n",
        );
        assert!(rules_of(&run(std::slice::from_ref(&f))).is_empty());
    }

    #[test]
    fn missing_decode_field_is_drift() {
        let g = analyze(
            "crates/types/src/y.rs",
            "pub struct Q { a: u32, b: u64 }\n\
             impl Persist for Q {\n\
                 fn persist(&self, w: &mut W) { w.put_u32(self.a); w.put_u64(self.b); }\n\
                 fn restore(r: &mut R) -> Result<Self> { Ok(Q { a: r.get_u32()? }) }\n\
             }\n",
        );
        let findings = run(std::slice::from_ref(&g));
        assert_eq!(rules_of(&findings), ["persist-field-drift"]);
        assert!(findings[0].finding.message.contains("`b`"));
        assert_eq!(findings[0].finding.line, 2);
    }

    #[test]
    fn field_order_mismatch_is_drift() {
        let f = analyze(
            "crates/types/src/x.rs",
            "pub struct P { a: u32, b: u64 }\n\
             impl Persist for P {\n\
                 fn persist(&self, w: &mut W) { w.put_u64(self.b); w.put_u32(self.a); }\n\
                 fn restore(r: &mut R) -> Result<Self> {\n\
                     Ok(P { a: r.get_u32()?, b: r.get_u64()? })\n\
                 }\n\
             }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(rules_of(&findings), ["persist-field-drift"]);
        assert!(findings[0].finding.message.contains("different orders"));
    }

    #[test]
    fn asymmetric_enum_codec_is_drift_but_index_style_is_clean() {
        let asym = analyze(
            "crates/types/src/x.rs",
            "pub enum K { A, B }\n\
             impl Persist for K {\n\
                 fn persist(&self, w: &mut W) { w.put_u8(self.index()); }\n\
                 fn restore(r: &mut R) -> Result<Self> {\n\
                     Ok(match r.get_u8()? { 0 => K::A, _ => K::B })\n\
                 }\n\
             }\n",
        );
        let findings = run(std::slice::from_ref(&asym));
        assert_eq!(
            rules_of(&findings),
            ["persist-field-drift", "persist-field-drift"]
        );
        let index_both = analyze(
            "crates/types/src/x.rs",
            "pub enum K { A, B }\n\
             impl Persist for K {\n\
                 fn persist(&self, w: &mut W) { w.put_u8(self.index()); }\n\
                 fn restore(r: &mut R) -> Result<Self> { Self::from_index(r.get_u8()?) }\n\
             }\n",
        );
        assert!(rules_of(&run(std::slice::from_ref(&index_both))).is_empty());
    }

    #[test]
    fn cross_file_impl_resolves_to_definition() {
        let def = analyze(
            "crates/types/src/def.rs",
            "pub struct P { a: u32, b: u64 }\n",
        );
        let imp = analyze(
            "crates/core/src/imp.rs",
            "impl Persist for P {\n\
                 fn persist(&self, w: &mut W) { w.put_u32(self.a); }\n\
                 fn restore(r: &mut R) -> Result<Self> { Ok(P { a: r.get_u32()? }) }\n\
             }\n",
        );
        let findings = run(&[def, imp]);
        assert_eq!(
            rules_of(&findings),
            ["persist-field-drift", "persist-field-drift"]
        );
    }

    #[test]
    fn orphan_field_type_is_flagged_at_its_definition() {
        let f = analyze(
            "crates/types/src/x.rs",
            "pub struct Inner { x: u8 }\n\
             pub struct Outer { inner: Inner }\n\
             impl Persist for Outer {\n\
                 fn persist(&self, w: &mut W) { w.put(self.inner); }\n\
                 fn restore(r: &mut R) -> Result<Self> { Ok(Outer { inner: r.get()? }) }\n\
             }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(rules_of(&findings), ["persist-orphan"]);
        assert_eq!(findings[0].finding.line, 2);
        assert!(findings[0].finding.message.contains("`Inner`"));
    }

    #[test]
    fn unregistered_write_site_fires_and_registry_file_does_not() {
        let rogue = analyze(
            "crates/core/src/rogue.rs",
            "fn dump(p: &Path, b: &[u8]) { std::fs::write(p, b).ok(); }\n",
        );
        let findings = run(std::slice::from_ref(&rogue));
        assert_eq!(rules_of(&findings), ["unregistered-emission"]);
        let registered = analyze(
            "crates/feeds/src/quarantine.rs",
            "fn dump(p: &Path, b: &[u8]) { std::fs::write(p, b).ok(); }\n",
        );
        assert!(rules_of(&run(std::slice::from_ref(&registered))).is_empty());
    }

    #[test]
    fn stale_registry_entry_fires_only_on_complete_sweeps() {
        let f = analyze("crates/core/src/quiet.rs", "fn nothing() {}\n");
        let g = build(std::slice::from_ref(&f));
        let partial = check_workspace(std::slice::from_ref(&f), &g, false);
        assert!(partial.is_empty());
        let complete = check_workspace(std::slice::from_ref(&f), &g, true);
        // Every EMISSION_FILES, EMISSION_OUTPUTS, and RNG_DOMAINS entry is
        // stale when the only analyzed file contains no writes or draws.
        assert_eq!(
            complete.len(),
            EMISSION_FILES.len() + EMISSION_OUTPUTS.len() + RNG_DOMAINS.len()
        );
        assert!(complete
            .iter()
            .all(|sf| matches!(sf.anchor, Anchor::Path(_))));
    }

    #[test]
    fn hash_two_hops_below_an_emitter_is_flagged_transitively() {
        let f = analyze(
            "crates/geodb/src/x.rs",
            "fn emit_series(out: &mut O) { shape(out); }\n\
             fn shape(out: &mut O) { refine(out); }\n\
             fn refine(out: &mut O) { let m: HashMap<u8, u8> = HashMap::new(); }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(
            rules_of(&findings),
            ["nondet-collection-flow", "nondet-collection-flow"]
        );
        assert!(findings.iter().all(|sf| sf.finding.line == 3));
        assert!(findings[0]
            .finding
            .message
            .contains("transitively reachable"));
    }

    #[test]
    fn unordered_shard_results_reaching_an_emitter_fire_merge_order() {
        let f = analyze(
            "crates/core/src/x.rs",
            "fn collect_rounds(shards: &[S], out: &mut O) {\n\
                 let results = shards.par_iter().map(run).collect::<Vec<_>>();\n\
                 for r in results {\n\
                     emit_row(&r, out);\n\
                 }\n\
             }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(rules_of(&findings), ["shard-merge-order"]);
        assert_eq!(findings[0].finding.line, 4);
        // Sorting first clears it.
        let sorted = analyze(
            "crates/core/src/x.rs",
            "fn collect_rounds(shards: &[S], out: &mut O) {\n\
                 let mut results = shards.par_iter().map(run).collect::<Vec<_>>();\n\
                 results.sort_by_key(|r| r.block);\n\
                 for r in results {\n\
                     emit_row(&r, out);\n\
                 }\n\
             }\n",
        );
        assert!(run(std::slice::from_ref(&sorted)).is_empty());
    }

    #[test]
    fn shard_results_into_a_workspace_fn_that_reaches_a_sink_are_caught() {
        // `store` carries no sink-ish name prefix, but the call graph knows
        // it writes a file — handing it unordered shard results counts.
        let f = analyze(
            "crates/core/src/x.rs",
            "fn collect(shards: &[S], p: &Path) {\n\
                 let results = shards.par_iter().map(run).collect::<Vec<_>>();\n\
                 store(results, p);\n\
             }\n\
             fn store(rows: Vec<R>, p: &Path) { std::fs::write(p, encode(rows)).ok(); }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert!(
            rules_of(&findings).contains(&"shard-merge-order"),
            "{findings:?}"
        );
    }

    #[test]
    fn computed_and_unregistered_rng_domains_are_flagged() {
        let f = analyze(
            "crates/netsim/src/x.rs",
            "fn a(rng: &WorldRng) { let r = rng.domain(\"not-registered\"); }\n\
             fn b(rng: &WorldRng, name: &str) { let r = rng.domain(name); }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(
            rules_of(&findings),
            ["rng-domain-collision", "rng-domain-collision"]
        );
        assert!(findings[0].finding.message.contains("not-registered"));
        assert!(findings[1].finding.message.contains("computed"));
    }

    #[test]
    fn duplicate_rng_domain_draws_collide_at_both_sites() {
        let a = analyze(
            "crates/core/src/a.rs",
            "fn seed_a(rng: &WorldRng) { let r = rng.domain(\"faults\"); }\n",
        );
        let b = analyze(
            "crates/netsim/src/b.rs",
            "fn seed_b(rng: &WorldRng) { let r = rng.domain(\"faults\"); }\n",
        );
        let findings = run(&[a, b]);
        assert_eq!(
            rules_of(&findings),
            ["rng-domain-collision", "rng-domain-collision"]
        );
        assert!(findings[0]
            .finding
            .message
            .contains("crates/netsim/src/b.rs:1"));
        assert!(findings[1]
            .finding
            .message
            .contains("crates/core/src/a.rs:1"));
    }

    #[test]
    fn registered_single_site_domain_is_clean_and_test_draws_do_not_collide() {
        let live = analyze(
            "crates/core/src/a.rs",
            "fn seed(rng: &WorldRng) { let r = rng.domain(\"faults\"); }\n",
        );
        let test_redraw = analyze(
            "crates/netsim/src/b.rs",
            "fn other() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn reproduce(rng: &WorldRng) { let r = rng.domain(\"faults\"); }\n\
             }\n",
        );
        assert!(run(&[live, test_redraw]).is_empty());
    }

    #[test]
    fn shared_state_below_the_round_loop_is_flagged() {
        let f = analyze(
            "crates/core/src/x.rs",
            "fn measure_round(w: &mut World) { probe(w); }\n\
             fn probe(w: &mut World) { let hits = Mutex::new(0u64); }\n\
             fn elsewhere() { let cache = Mutex::new(0u64); }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(rules_of(&findings), ["shared-mutable-in-shard-path"]);
        assert_eq!(findings[0].finding.line, 2);
        assert!(findings[0].finding.message.contains("`Mutex`"));
        assert!(findings[0].finding.message.contains("measure_round"));
    }

    #[test]
    fn float_sum_reachable_from_an_emitter_is_flagged() {
        let f = analyze(
            "crates/analysis/src/x.rs",
            "fn render_table(xs: &[f64], out: &mut O) { out.push(mean(xs)); }\n\
             fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() / xs.len() as f64 }\n\
             fn offline(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(rules_of(&findings), ["float-reduction-order"]);
        assert_eq!(findings[0].finding.line, 2);
        assert!(findings[0].finding.message.contains("sum::<f64>"));
    }

    #[test]
    fn hash_in_callee_of_emitter_is_flagged_one_hop_away() {
        let f = analyze(
            "crates/geodb/src/x.rs",
            "fn emit_series(out: &mut O) { shape(out); }\n\
             fn shape(out: &mut O) { let m: HashMap<u8, u8> = HashMap::new(); }\n\
             fn unrelated() { let m2: HashMap<u8, u8> = HashMap::new(); }\n",
        );
        let findings = run(std::slice::from_ref(&f));
        assert_eq!(
            rules_of(&findings),
            ["nondet-collection-flow", "nondet-collection-flow"]
        );
        assert!(findings.iter().all(|sf| sf.finding.line == 2));
    }

    #[test]
    fn passive_signal_functions_are_hash_sinks() {
        // `ibr_*` and `predict_*` feed checkpoint bytes and the
        // ibr_signal.csv emission — hash collections are banned there too.
        for name in ["ibr_signal_csv", "predict_volume"] {
            let f = analyze(
                "crates/core/src/x.rs",
                &format!("fn {name}() {{ let m: HashMap<u8, u8> = HashMap::new(); }}\n"),
            );
            let findings = run(std::slice::from_ref(&f));
            assert_eq!(
                rules_of(&findings),
                ["nondet-collection-flow", "nondet-collection-flow"],
                "{name}"
            );
        }
        // A neighbouring non-sink name stays clean.
        let f = analyze(
            "crates/core/src/x.rs",
            "fn tabulate() { let m: HashMap<u8, u8> = HashMap::new(); }\n",
        );
        assert!(run(std::slice::from_ref(&f)).is_empty());
    }
}
