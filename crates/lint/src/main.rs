//! CLI for the workspace invariant linter.
//!
//! ```text
//! fbs-lint --workspace             # lint the enclosing cargo workspace
//! fbs-lint --workspace --json     # machine-readable output
//! fbs-lint --list-rules           # what is enforced, and why
//! fbs-lint path/to/file.rs …      # lint specific files
//! fbs-lint schema --write-lock    # (re)generate SCHEMA.lock
//! fbs-lint schema --check         # fail if the extraction drifted
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use fbs_lint::{analyze_workspace, diff_schemas, extract, parse_lock, render_lock, EditKind};
use fbs_lint::{
    find_workspace_root, lint_sources, lint_workspace, render_json, FileMeta, LintRun, SourceFile,
    RULES, SEMANTIC_RULES,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
// Wall-clock timing is exactly what the `wall-clock` rule bans in library
// crates; a binary reporting its own runtime is the sanctioned use.
use std::time::Instant;

/// What `fbs-lint schema …` should do.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SchemaMode {
    /// Regenerate `SCHEMA.lock` from a fresh extraction.
    WriteLock,
    /// Diff a fresh extraction against `SCHEMA.lock`; violations exit 1.
    Check,
}

struct Args {
    workspace: bool,
    json: bool,
    list_rules: bool,
    /// The `schema` subcommand, when invoked.
    schema: Option<SchemaMode>,
    root: Option<PathBuf>,
    /// Write a `BENCH_lint.json` benchmark artifact here after the run.
    bench_json: Option<PathBuf>,
    /// Fail (exit 1) if the sweep takes longer than this many ms.
    budget_ms: Option<u128>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        list_rules: false,
        schema: None,
        root: None,
        bench_json: None,
        budget_ms: None,
        paths: Vec::new(),
    };
    let mut schema_subcommand = false;
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("schema") {
        it.next();
        schema_subcommand = true;
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--write-lock" if schema_subcommand => args.schema = Some(SchemaMode::WriteLock),
            "--check" if schema_subcommand => args.schema = Some(SchemaMode::Check),
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--bench-json" => {
                let path = it.next().ok_or("--bench-json requires a path argument")?;
                args.bench_json = Some(PathBuf::from(path));
            }
            "--budget-ms" => {
                let n = it.next().ok_or("--budget-ms requires a number argument")?;
                args.budget_ms = Some(
                    n.parse()
                        .map_err(|_| format!("--budget-ms: not a number: {n}"))?,
                );
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag: {flag}\n{USAGE}"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if schema_subcommand && args.schema.is_none() {
        return Err(format!("schema requires --write-lock or --check\n{USAGE}"));
    }
    if args.schema.is_none() && !args.workspace && !args.list_rules && args.paths.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(args)
}

const USAGE: &str = "usage: fbs-lint [--workspace] [--json] [--list-rules] [--root DIR] \
     [--bench-json PATH] [--budget-ms N] [FILES…]\n\
       fbs-lint schema (--write-lock | --check) [--root DIR] [--bench-json PATH] [--budget-ms N]";

fn list_rules() {
    let width = RULES
        .iter()
        .map(|r| r.name.len())
        .chain(SEMANTIC_RULES.iter().map(|r| r.name.len()))
        .max()
        .unwrap_or(0);
    println!("fbs-lint rules (suppress a line with `// fbs-lint: allow(<rule>) <why>`):");
    for rule in RULES {
        println!("  {:width$} {}", rule.name, rule.summary);
    }
    println!("semantic rules (cross-file, over the workspace symbol graph):");
    for rule in SEMANTIC_RULES {
        println!("  {:width$} {}", rule.name, rule.summary);
    }
}

/// Lints explicitly-listed files, classifying each by its path relative
/// to the workspace root when it sits under one. All listed files share
/// one symbol graph, so cross-file semantic rules see the whole set;
/// absence checks (registry staleness) stay off — this is not a sweep.
fn lint_paths(paths: &[PathBuf], root: &Path) -> Result<LintRun, String> {
    let mut files = Vec::new();
    for path in paths {
        let canon = path
            .canonicalize()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = canon
            .strip_prefix(root)
            .unwrap_or(&canon)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read(&canon).map_err(|e| format!("{}: {e}", path.display()))?;
        files.push(SourceFile::analyze(FileMeta::infer(&rel), src));
    }
    Ok(lint_sources(&files, false))
}

/// The `schema` subcommand: extract the wire schema from a fresh
/// workspace analysis, then either rewrite `SCHEMA.lock` (`--write-lock`)
/// or diff against it (`--check`). Check mode also emits a
/// `BENCH_schema.json` timing row when benchmarking is requested.
fn run_schema(mode: SchemaMode, args: &Args, root: &Path, started: Instant) -> ExitCode {
    let files = match analyze_workspace(root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("fbs-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let graph = fbs_lint::graph::build(&files);
    let schema = extract(&files, &graph);
    let lock_path = root.join("SCHEMA.lock");
    let versions = schema
        .all_versions()
        .iter()
        .map(|v| format!("v{v}"))
        .collect::<Vec<_>>()
        .join(" ");

    if mode == SchemaMode::WriteLock {
        let text = render_lock(&schema);
        if let Err(e) = std::fs::write(&lock_path, text) {
            eprintln!("fbs-lint: writing {}: {e}", lock_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "fbs-lint: wrote {} ({} impls, versions {versions})",
            lock_path.display(),
            schema.impl_count(),
        );
        return ExitCode::SUCCESS;
    }

    let mut violations: Vec<String> = Vec::new();
    match std::fs::read_to_string(&lock_path) {
        Err(e) => {
            eprintln!(
                "fbs-lint: reading {}: {e} (run `fbs-lint schema --write-lock` first)",
                lock_path.display()
            );
            return ExitCode::from(2);
        }
        Ok(lock_text) => match parse_lock(&lock_text) {
            Err(e) => violations.push(format!("SCHEMA.lock: [schema-lock-drift] {e}")),
            Ok(locked) => {
                for edit in diff_schemas(&locked, &schema) {
                    let rule = match edit.kind {
                        EditKind::Breaking => "frozen-version-edit",
                        EditKind::Additive => "schema-lock-drift",
                    };
                    violations.push(format!(
                        "{}:{}: [{rule}] {}: {}",
                        edit.path, edit.line, edit.type_name, edit.detail
                    ));
                }
                if violations.is_empty() && lock_text != render_lock(&schema) {
                    violations.push(
                        "SCHEMA.lock: [schema-lock-drift] lock text is not the canonical \
                         serialization; regenerate with `fbs-lint schema --write-lock`"
                            .to_string(),
                    );
                }
            }
        },
    }
    for v in &violations {
        println!("{v}");
    }
    let wall_ms = started.elapsed().as_millis();
    eprintln!(
        "fbs-lint: schema check, {} impls, versions {versions}, {} violation{} ({wall_ms} ms)",
        schema.impl_count(),
        violations.len(),
        if violations.len() == 1 { "" } else { "s" },
    );

    // The timing row lands next to BENCH_lint.json in CI; the default
    // path is env-overridable so local runs can redirect it.
    let bench_out = args.bench_json.clone().unwrap_or_else(|| {
        PathBuf::from(
            std::env::var("FBS_SCHEMA_BENCH_OUT").unwrap_or_else(|_| "BENCH_schema.json".into()),
        )
    });
    let want_bench = args.bench_json.is_some()
        || args.budget_ms.is_some()
        || std::env::var("FBS_SCHEMA_BENCH_OUT").is_ok();
    if want_bench {
        let bench = format!(
            "{{\"bench\":\"schema_check\",\"impls\":{},\"versioned\":{},\"versions\":{},\"violations\":{},\"wall_ms\":{wall_ms},\"budget_ms\":{}}}\n",
            schema.impl_count(),
            schema.versioned.len(),
            schema.all_versions().len(),
            violations.len(),
            args.budget_ms.map_or("null".to_string(), |b| b.to_string()),
        );
        if let Err(e) = std::fs::write(&bench_out, bench) {
            eprintln!("fbs-lint: writing {}: {e}", bench_out.display());
            return ExitCode::from(2);
        }
    }
    let over_budget = args.budget_ms.is_some_and(|b| wall_ms > b);
    if over_budget {
        eprintln!(
            "fbs-lint: schema check took {wall_ms} ms, over the --budget-ms {} budget",
            args.budget_ms.unwrap_or(0),
        );
    }
    if violations.is_empty() && !over_budget {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let started = Instant::now();
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("fbs-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match &args.root {
        Some(dir) => dir.clone(),
        None => find_workspace_root(&cwd).unwrap_or(cwd),
    };

    if let Some(mode) = args.schema {
        return run_schema(mode, &args, &root, started);
    }

    let run = if args.workspace {
        match lint_workspace(&root) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("fbs-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match lint_paths(&args.paths, &root) {
            Ok(run) => run,
            Err(msg) => {
                eprintln!("fbs-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    };

    let wall_ms = started.elapsed().as_millis();
    if args.json {
        print!("{}", render_json(&run));
    } else {
        for f in &run.findings {
            println!("{}", f.render());
        }
        eprintln!(
            "fbs-lint: {} file{} checked, {} violation{} ({wall_ms} ms)",
            run.files_checked,
            if run.files_checked == 1 { "" } else { "s" },
            run.findings.len(),
            if run.findings.len() == 1 { "" } else { "s" },
        );
    }
    if let Some(path) = &args.bench_json {
        let bench = format!(
            "{{\"bench\":\"lint_sweep\",\"files\":{},\"rules\":{},\"violations\":{},\"wall_ms\":{wall_ms},\"budget_ms\":{}}}\n",
            run.files_checked,
            RULES.len() + SEMANTIC_RULES.len(),
            run.findings.len(),
            args.budget_ms.map_or("null".to_string(), |b| b.to_string()),
        );
        if let Err(e) = std::fs::write(path, bench) {
            eprintln!("fbs-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let over_budget = args.budget_ms.is_some_and(|b| wall_ms > b);
    if over_budget {
        eprintln!(
            "fbs-lint: sweep took {wall_ms} ms, over the --budget-ms {} budget",
            args.budget_ms.unwrap_or(0),
        );
    }
    if run.is_clean() && !over_budget {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
