//! CLI for the workspace invariant linter.
//!
//! ```text
//! fbs-lint --workspace             # lint the enclosing cargo workspace
//! fbs-lint --workspace --json     # machine-readable output
//! fbs-lint --list-rules           # what is enforced, and why
//! fbs-lint path/to/file.rs …      # lint specific files
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use fbs_lint::{
    find_workspace_root, lint_sources, lint_workspace, render_json, FileMeta, LintRun, SourceFile,
    RULES, SEMANTIC_RULES,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
// Wall-clock timing is exactly what the `wall-clock` rule bans in library
// crates; a binary reporting its own runtime is the sanctioned use.
use std::time::Instant;

struct Args {
    workspace: bool,
    json: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    /// Write a `BENCH_lint.json` benchmark artifact here after the run.
    bench_json: Option<PathBuf>,
    /// Fail (exit 1) if the sweep takes longer than this many ms.
    budget_ms: Option<u128>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        list_rules: false,
        root: None,
        bench_json: None,
        budget_ms: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--bench-json" => {
                let path = it.next().ok_or("--bench-json requires a path argument")?;
                args.bench_json = Some(PathBuf::from(path));
            }
            "--budget-ms" => {
                let n = it.next().ok_or("--budget-ms requires a number argument")?;
                args.budget_ms = Some(
                    n.parse()
                        .map_err(|_| format!("--budget-ms: not a number: {n}"))?,
                );
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag: {flag}\n{USAGE}"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.workspace && !args.list_rules && args.paths.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(args)
}

const USAGE: &str = "usage: fbs-lint [--workspace] [--json] [--list-rules] [--root DIR] \
     [--bench-json PATH] [--budget-ms N] [FILES…]";

fn list_rules() {
    let width = RULES
        .iter()
        .map(|r| r.name.len())
        .chain(SEMANTIC_RULES.iter().map(|r| r.name.len()))
        .max()
        .unwrap_or(0);
    println!("fbs-lint rules (suppress a line with `// fbs-lint: allow(<rule>) <why>`):");
    for rule in RULES {
        println!("  {:width$} {}", rule.name, rule.summary);
    }
    println!("semantic rules (cross-file, over the workspace symbol graph):");
    for rule in SEMANTIC_RULES {
        println!("  {:width$} {}", rule.name, rule.summary);
    }
}

/// Lints explicitly-listed files, classifying each by its path relative
/// to the workspace root when it sits under one. All listed files share
/// one symbol graph, so cross-file semantic rules see the whole set;
/// absence checks (registry staleness) stay off — this is not a sweep.
fn lint_paths(paths: &[PathBuf], root: &Path) -> Result<LintRun, String> {
    let mut files = Vec::new();
    for path in paths {
        let canon = path
            .canonicalize()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = canon
            .strip_prefix(root)
            .unwrap_or(&canon)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read(&canon).map_err(|e| format!("{}: {e}", path.display()))?;
        files.push(SourceFile::analyze(FileMeta::infer(&rel), src));
    }
    Ok(lint_sources(&files, false))
}

fn main() -> ExitCode {
    let started = Instant::now();
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("fbs-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match &args.root {
        Some(dir) => dir.clone(),
        None => find_workspace_root(&cwd).unwrap_or(cwd),
    };

    let run = if args.workspace {
        match lint_workspace(&root) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("fbs-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match lint_paths(&args.paths, &root) {
            Ok(run) => run,
            Err(msg) => {
                eprintln!("fbs-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    };

    let wall_ms = started.elapsed().as_millis();
    if args.json {
        print!("{}", render_json(&run));
    } else {
        for f in &run.findings {
            println!("{}", f.render());
        }
        eprintln!(
            "fbs-lint: {} file{} checked, {} violation{} ({wall_ms} ms)",
            run.files_checked,
            if run.files_checked == 1 { "" } else { "s" },
            run.findings.len(),
            if run.findings.len() == 1 { "" } else { "s" },
        );
    }
    if let Some(path) = &args.bench_json {
        let bench = format!(
            "{{\"bench\":\"lint_sweep\",\"files\":{},\"rules\":{},\"violations\":{},\"wall_ms\":{wall_ms},\"budget_ms\":{}}}\n",
            run.files_checked,
            RULES.len() + SEMANTIC_RULES.len(),
            run.findings.len(),
            args.budget_ms.map_or("null".to_string(), |b| b.to_string()),
        );
        if let Err(e) = std::fs::write(path, bench) {
            eprintln!("fbs-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let over_budget = args.budget_ms.is_some_and(|b| wall_ms > b);
    if over_budget {
        eprintln!(
            "fbs-lint: sweep took {wall_ms} ms, over the --budget-ms {} budget",
            args.budget_ms.unwrap_or(0),
        );
    }
    if run.is_clean() && !over_budget {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
