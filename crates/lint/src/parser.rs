//! An item-level recursive-descent parser over the total lexer.
//!
//! The v1 rules were token-shape patterns; the semantic rules need to know
//! *what* the tokens form: which structs exist and with which fields,
//! which enums with which variants, which impl blocks carry which
//! functions, and where each function's body starts and ends. This parser
//! produces exactly that — an [`Ast`] of items whose bodies stay plain
//! token ranges — and nothing more: no expressions, no types beyond their
//! token spans, no name resolution.
//!
//! Like the lexer beneath it, the parser is **total**: it accepts any
//! token stream (valid Rust or not), never panics, and always terminates.
//! Anything it cannot shape into an item is skipped, so a garbage region
//! degrades to missing items, never to a crash. Both properties are
//! property-tested against arbitrary bytes and arbitrary token soups.
//!
//! Positions are carried as indices into the *significant* token list
//! (comments removed) that [`crate::context::SourceFile`] maintains, so a
//! rule can slice a function body out of the file and walk it with the
//! same token utilities the lexical rules use.

use crate::lexer::{Token, TokenKind};

/// A half-open range `[lo, hi)` of significant-token indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub lo: usize,
    pub hi: usize,
}

impl Span {
    /// The empty span at `at`.
    pub fn empty(at: usize) -> Span {
        Span { lo: at, hi: at }
    }

    /// Number of significant tokens covered.
    pub fn len(&self) -> usize {
        self.hi.saturating_sub(self.lo)
    }

    /// Whether the span covers no tokens.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

/// One named field of a struct (or an index-named tuple field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name; tuple fields are named `"0"`, `"1"`, ….
    pub name: String,
    /// Token span of the field's type.
    pub ty: Span,
    /// 1-based position of the field name (or the type, for tuple fields).
    pub line: u32,
    pub col: u32,
}

/// One variant of an enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    pub name: String,
    pub line: u32,
    pub col: u32,
}

/// A `struct` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructItem {
    pub name: String,
    pub fields: Vec<Field>,
    /// Whether this is a tuple struct (`struct X(A, B);`).
    pub tuple: bool,
    pub line: u32,
    pub col: u32,
}

/// An `enum` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumItem {
    pub name: String,
    pub variants: Vec<Variant>,
    pub line: u32,
    pub col: u32,
}

/// An `fn` item (free, or inside an impl).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    pub name: String,
    /// Body token span, `None` for bodiless declarations (`fn f();`).
    pub body: Option<Span>,
    pub line: u32,
    pub col: u32,
}

/// An `impl` block: inherent (`impl X`) or trait (`impl Tr for X`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplItem {
    /// Last path segment of the implemented trait, if any.
    pub trait_name: Option<String>,
    /// Last path segment of the self type (`crate::Round` → `Round`,
    /// `Vec<T>` → `Vec`). Empty when the type had no nameable head.
    pub type_name: String,
    pub fns: Vec<FnItem>,
    pub line: u32,
    pub col: u32,
}

/// Everything item-shaped found in one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ast {
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
    pub impls: Vec<ImplItem>,
    /// Free functions, including those inside inline `mod` blocks.
    pub fns: Vec<FnItem>,
}

impl Ast {
    /// The struct with the given name, if this file defines one.
    pub fn struct_named(&self, name: &str) -> Option<&StructItem> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// The enum with the given name, if this file defines one.
    pub fn enum_named(&self, name: &str) -> Option<&EnumItem> {
        self.enums.iter().find(|e| e.name == name)
    }
}

struct Parser<'a> {
    src: &'a [u8],
    tokens: &'a [Token],
    sig: &'a [usize],
    ast: Ast,
}

/// Parses the significant tokens of one file into an [`Ast`].
///
/// `sig` holds indices into `tokens` of the non-comment tokens, exactly as
/// [`crate::context::SourceFile`] builds them. Total: never panics and
/// always terminates, whatever the token stream.
pub fn parse(src: &[u8], tokens: &[Token], sig: &[usize]) -> Ast {
    let mut p = Parser {
        src,
        tokens,
        sig,
        ast: Ast::default(),
    };
    p.items(0, sig.len(), false);
    p.ast
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&ti| &self.tokens[ti])
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_ident(self.src, name))
    }

    fn is_punct(&self, i: usize, sp: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(self.src, sp))
    }

    fn ident_text(&self, i: usize) -> Option<String> {
        let t = self.tok(i)?;
        if t.kind == TokenKind::Ident {
            Some(String::from_utf8_lossy(t.bytes(self.src)).into_owned())
        } else {
            None
        }
    }

    fn pos_of(&self, i: usize) -> (u32, u32) {
        self.tok(i).map(|t| (t.line, t.col)).unwrap_or((1, 1))
    }

    /// Skips a balanced `open`…`close` delimiter run starting at `i`
    /// (which must sit on `open`); returns the index one past the matching
    /// close, or `hi` when unbalanced. All three bracket kinds nest.
    fn skip_balanced(&self, mut i: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        while i < hi {
            if let Some(t) = self.tok(i) {
                if t.kind == TokenKind::Punct {
                    match t.bytes(self.src) {
                        b"(" | b"[" | b"{" => depth += 1,
                        b")" | b"]" | b"}" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                }
            }
            i += 1;
        }
        hi
    }

    /// Skips a generics list starting at `i` (on `<`); returns one past
    /// the matching `>`. The lexer joins shifts, so `<<`/`>>` count twice.
    /// Bails at `;`, `{`, or EOF so broken input cannot swallow the file.
    fn skip_angles(&self, mut i: usize, hi: usize) -> usize {
        let mut depth = 0i64;
        while i < hi {
            let Some(t) = self.tok(i) else { break };
            if t.kind == TokenKind::Punct {
                match t.bytes(self.src) {
                    b"<" => depth += 1,
                    b"<<" => depth += 2,
                    b">" => depth -= 1,
                    b">>" => depth -= 2,
                    b";" | b"{" => return i,
                    b"(" | b"[" => {
                        i = self.skip_balanced(i, hi);
                        continue;
                    }
                    _ => {}
                }
            }
            i += 1;
            if depth <= 0 {
                return i;
            }
        }
        i.min(hi)
    }

    /// Skips attributes (`#[…]` / `#![…]`) and visibility (`pub`,
    /// `pub(crate)`, `pub(in path)`) at `i`.
    fn skip_decoration(&self, mut i: usize, hi: usize) -> usize {
        loop {
            if self.is_punct(i, "#") {
                let mut j = i + 1;
                if self.is_punct(j, "!") {
                    j += 1;
                }
                if self.is_punct(j, "[") {
                    i = self.skip_balanced(j, hi);
                    continue;
                }
                return i;
            }
            if self.is_ident(i, "pub") {
                i += 1;
                if self.is_punct(i, "(") {
                    i = self.skip_balanced(i, hi);
                }
                continue;
            }
            return i;
        }
    }

    /// Parses the items in `[lo, hi)`. `in_impl` switches the accepted
    /// item set (impl bodies hold fns and assoc consts/types, not new
    /// structs). The loop always advances.
    fn items(&mut self, lo: usize, hi: usize, in_impl: bool) {
        let mut i = lo;
        while i < hi {
            let before = i;
            i = self.skip_decoration(i, hi);
            if i >= hi {
                break;
            }
            // Modifier run before an item keyword.
            while self.is_ident(i, "unsafe")
                || self.is_ident(i, "async")
                || self.is_ident(i, "const") && self.is_ident(i + 1, "fn")
                || self.is_ident(i, "default")
                || self.is_ident(i, "extern")
                    && self.tok(i + 1).is_some_and(|t| t.kind == TokenKind::Str)
            {
                i += 1;
                if self.tok(i).is_some_and(|t| t.kind == TokenKind::Str) {
                    i += 1; // the ABI string of `extern "C"`
                }
            }
            if i >= hi {
                break;
            }
            if self.is_ident(i, "struct") && !in_impl {
                i = self.parse_struct(i, hi);
            } else if self.is_ident(i, "enum") && !in_impl {
                i = self.parse_enum(i, hi);
            } else if self.is_ident(i, "impl") && !in_impl {
                i = self.parse_impl(i, hi);
            } else if self.is_ident(i, "fn") {
                let (next, item) = self.parse_fn(i, hi);
                if let Some(f) = item {
                    self.ast.fns.push(f);
                }
                i = next;
            } else if self.is_ident(i, "mod") && !in_impl {
                // `mod name { items }` recurses; `mod name;` skips.
                let mut j = i + 1;
                while j < hi && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                    j += 1;
                }
                if self.is_punct(j, "{") {
                    let end = self.skip_balanced(j, hi);
                    self.items(j + 1, end.saturating_sub(1), false);
                    i = end;
                } else {
                    i = j + 1;
                }
            } else if self.is_ident(i, "macro_rules") {
                // `macro_rules ! name { opaque }` — the body is pattern
                // language, not items; skip it whole.
                let mut j = i + 1;
                while j < hi
                    && !self.is_punct(j, "{")
                    && !self.is_punct(j, "(")
                    && !self.is_punct(j, "[")
                    && !self.is_punct(j, ";")
                {
                    j += 1;
                }
                i = if j < hi && !self.is_punct(j, ";") {
                    self.skip_balanced(j, hi)
                } else {
                    j + 1
                };
            } else if self.is_ident(i, "trait") {
                // Trait bodies hold method *declarations* (and defaults);
                // skip to the body and recurse for any default fn bodies.
                let mut j = i + 1;
                while j < hi && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                    if self.is_punct(j, "(") || self.is_punct(j, "[") {
                        j = self.skip_balanced(j, hi);
                        continue;
                    }
                    j += 1;
                }
                if self.is_punct(j, "{") {
                    let end = self.skip_balanced(j, hi);
                    self.items(j + 1, end.saturating_sub(1), true);
                    i = end;
                } else {
                    i = j + 1;
                }
            } else if self.is_ident(i, "use")
                || self.is_ident(i, "static")
                || self.is_ident(i, "type")
                || self.is_ident(i, "const")
                || self.is_ident(i, "extern")
            {
                i = self.skip_to_semi(i + 1, hi);
            } else {
                i += 1;
            }
            if i <= before {
                // Belt-and-braces: the loop must advance on any input.
                i = before + 1;
            }
        }
    }

    /// Skips to one past the next `;` at delimiter depth zero (balanced
    /// brackets of any kind are skipped whole), or to `hi`.
    fn skip_to_semi(&self, mut i: usize, hi: usize) -> usize {
        while i < hi {
            if self.is_punct(i, "(") || self.is_punct(i, "[") || self.is_punct(i, "{") {
                i = self.skip_balanced(i, hi);
                continue;
            }
            if self.is_punct(i, ";") {
                return i + 1;
            }
            i += 1;
        }
        hi
    }

    /// `struct Name …` — unit, tuple, or named-field body.
    fn parse_struct(&mut self, i: usize, hi: usize) -> usize {
        let Some(name) = self.ident_text(i + 1) else {
            return i + 1;
        };
        let (line, col) = self.pos_of(i + 1);
        let mut j = i + 2;
        if self.is_punct(j, "<") {
            j = self.skip_angles(j, hi);
        }
        // `where` clause before the body.
        let mut fields = Vec::new();
        let mut tuple = false;
        let mut end = j;
        while end < hi
            && !self.is_punct(end, "{")
            && !self.is_punct(end, "(")
            && !self.is_punct(end, ";")
        {
            end += 1;
        }
        if self.is_punct(end, "(") {
            tuple = true;
            let close = self.skip_balanced(end, hi);
            self.tuple_fields(end + 1, close.saturating_sub(1), &mut fields);
            end = self.skip_to_semi(close, hi);
        } else if self.is_punct(end, "{") {
            let close = self.skip_balanced(end, hi);
            self.named_fields(end + 1, close.saturating_sub(1), &mut fields);
            end = close;
        } else {
            end = (end + 1).min(hi); // unit struct `;`
        }
        self.ast.structs.push(StructItem {
            name,
            fields,
            tuple,
            line,
            col,
        });
        end
    }

    /// Parses `name: Type, …` field lists into `out`.
    fn named_fields(&self, mut i: usize, hi: usize, out: &mut Vec<Field>) {
        while i < hi {
            i = self.skip_decoration(i, hi);
            let Some(name) = self.ident_text(i) else {
                // Not a field start; resync at the next comma.
                i = self.next_comma(i, hi);
                continue;
            };
            if !self.is_punct(i + 1, ":") {
                i = self.next_comma(i, hi);
                continue;
            }
            let (line, col) = self.pos_of(i);
            let ty_lo = i + 2;
            let ty_hi = self.next_comma_bound(ty_lo, hi);
            out.push(Field {
                name,
                ty: Span {
                    lo: ty_lo,
                    hi: ty_hi,
                },
                line,
                col,
            });
            i = ty_hi + 1; // past the comma
        }
    }

    /// Parses tuple-struct field types, naming them by position.
    fn tuple_fields(&self, mut i: usize, hi: usize, out: &mut Vec<Field>) {
        let mut index = 0usize;
        while i < hi {
            i = self.skip_decoration(i, hi);
            if i >= hi {
                break;
            }
            let (line, col) = self.pos_of(i);
            let ty_hi = self.next_comma_bound(i, hi);
            if ty_hi > i {
                out.push(Field {
                    name: index.to_string(),
                    ty: Span { lo: i, hi: ty_hi },
                    line,
                    col,
                });
                index += 1;
            }
            i = ty_hi + 1;
        }
    }

    /// Index of the next top-level `,` in `[i, hi)`, or `hi`. Brackets
    /// and generics nest (shift tokens count double).
    fn next_comma_bound(&self, mut i: usize, hi: usize) -> usize {
        let mut angle = 0i64;
        while i < hi {
            if let Some(t) = self.tok(i) {
                if t.kind == TokenKind::Punct {
                    match t.bytes(self.src) {
                        b"(" | b"[" | b"{" => {
                            i = self.skip_balanced(i, hi);
                            continue;
                        }
                        b"<" => angle += 1,
                        b"<<" => angle += 2,
                        b">" => angle = (angle - 1).max(0),
                        b">>" => angle = (angle - 2).max(0),
                        b"," if angle == 0 => return i,
                        _ => {}
                    }
                }
            }
            i += 1;
        }
        hi
    }

    fn next_comma(&self, i: usize, hi: usize) -> usize {
        let at = self.next_comma_bound(i, hi);
        (at + 1).min(hi)
    }

    /// `enum Name { Variant, Variant(..), Variant { .. }, … }`.
    fn parse_enum(&mut self, i: usize, hi: usize) -> usize {
        let Some(name) = self.ident_text(i + 1) else {
            return i + 1;
        };
        let (line, col) = self.pos_of(i + 1);
        let mut j = i + 2;
        if self.is_punct(j, "<") {
            j = self.skip_angles(j, hi);
        }
        while j < hi && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            j += 1;
        }
        let mut variants = Vec::new();
        let end = if self.is_punct(j, "{") {
            let close = self.skip_balanced(j, hi);
            let mut k = j + 1;
            let body_hi = close.saturating_sub(1);
            while k < body_hi {
                k = self.skip_decoration(k, body_hi);
                if let Some(vname) = self.ident_text(k) {
                    let (vline, vcol) = self.pos_of(k);
                    variants.push(Variant {
                        name: vname,
                        line: vline,
                        col: vcol,
                    });
                }
                k = self.next_comma(k, body_hi);
            }
            close
        } else {
            (j + 1).min(hi)
        };
        self.ast.enums.push(EnumItem {
            name,
            variants,
            line,
            col,
        });
        end
    }

    /// `impl [<..>] [Trait for] Type [where ..] { items }`.
    fn parse_impl(&mut self, i: usize, hi: usize) -> usize {
        let (line, col) = self.pos_of(i);
        let mut j = i + 1;
        if self.is_punct(j, "<") {
            j = self.skip_angles(j, hi);
        }
        // Scan the header: everything up to the body `{` (or `;`/EOF),
        // tracking the last plain ident of the current path and whether a
        // `for` split the header into trait and self type.
        let mut first_head: Option<String> = None; // last ident before `for`
        let mut head: Option<String> = None; // last ident of current path
        let mut saw_for = false;
        while j < hi {
            if self.is_punct(j, "{") || self.is_punct(j, ";") {
                break;
            }
            if self.is_ident(j, "where") {
                // Bounds may mention types; stop collecting the head.
                while j < hi && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                    if self.is_punct(j, "(") || self.is_punct(j, "[") {
                        j = self.skip_balanced(j, hi);
                        continue;
                    }
                    j += 1;
                }
                break;
            }
            if self.is_ident(j, "for") {
                first_head = head.take();
                saw_for = true;
                j += 1;
                continue;
            }
            if self.is_punct(j, "<") || self.is_punct(j, "<<") {
                j = self.skip_angles(j, hi);
                continue;
            }
            if self.is_punct(j, "(") || self.is_punct(j, "[") {
                // `impl Trait for (A, B)` / `[T; N]` — no nameable head.
                head = None;
                j = self.skip_balanced(j, hi);
                continue;
            }
            if let Some(id) = self.ident_text(j) {
                if id != "dyn" && id != "mut" && id != "crate" && id != "super" && id != "self" {
                    head = Some(id);
                }
            }
            j += 1;
        }
        let (trait_name, type_name) = if saw_for {
            (first_head, head.unwrap_or_default())
        } else {
            (None, head.unwrap_or_default())
        };
        if !self.is_punct(j, "{") {
            self.ast.impls.push(ImplItem {
                trait_name,
                type_name,
                fns: Vec::new(),
                line,
                col,
            });
            return (j + 1).min(hi);
        }
        let close = self.skip_balanced(j, hi);
        let mut fns = Vec::new();
        self.impl_fns(j + 1, close.saturating_sub(1), &mut fns);
        self.ast.impls.push(ImplItem {
            trait_name,
            type_name,
            fns,
            line,
            col,
        });
        close
    }

    /// Collects the `fn` items of an impl (or trait) body.
    fn impl_fns(&self, mut i: usize, hi: usize, out: &mut Vec<FnItem>) {
        while i < hi {
            let before = i;
            i = self.skip_decoration(i, hi);
            while self.is_ident(i, "unsafe")
                || self.is_ident(i, "async")
                || self.is_ident(i, "default")
                || (self.is_ident(i, "const") && self.is_ident(i + 1, "fn"))
            {
                i += 1;
            }
            if self.is_ident(i, "fn") {
                let (next, item) = self.parse_fn(i, hi);
                if let Some(f) = item {
                    out.push(f);
                }
                i = next;
            } else if self.is_ident(i, "const")
                || self.is_ident(i, "type")
                || self.is_ident(i, "use")
            {
                i = self.skip_to_semi(i + 1, hi);
            } else {
                i += 1;
            }
            if i <= before {
                i = before + 1;
            }
        }
    }

    /// `fn name [<..>] ( params ) [-> ty] [where ..] { body }` or `;`.
    /// Returns (index past the item, the parsed item if the name parsed).
    fn parse_fn(&self, i: usize, hi: usize) -> (usize, Option<FnItem>) {
        let Some(name) = self.ident_text(i + 1) else {
            return (i + 1, None);
        };
        let (line, col) = self.pos_of(i + 1);
        let mut j = i + 2;
        if self.is_punct(j, "<") {
            j = self.skip_angles(j, hi);
        }
        if self.is_punct(j, "(") {
            j = self.skip_balanced(j, hi);
        }
        // Return type / where clause: scan to the body or `;`, skipping
        // nested brackets (closures in const generics are out of scope).
        while j < hi && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            if self.is_punct(j, "(") || self.is_punct(j, "[") {
                j = self.skip_balanced(j, hi);
                continue;
            }
            if self.is_punct(j, "<") || self.is_punct(j, "<<") {
                j = self.skip_angles(j, hi);
                continue;
            }
            j += 1;
        }
        if self.is_punct(j, "{") {
            let close = self.skip_balanced(j, hi);
            let body = Span {
                lo: j + 1,
                hi: close.saturating_sub(1),
            };
            (
                close,
                Some(FnItem {
                    name,
                    body: Some(body),
                    line,
                    col,
                }),
            )
        } else {
            (
                (j + 1).min(hi),
                Some(FnItem {
                    name,
                    body: None,
                    line,
                    col,
                }),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast_of(src: &str) -> Ast {
        let tokens = lex(src.as_bytes());
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        parse(src.as_bytes(), &tokens, &sig)
    }

    #[test]
    fn struct_fields_in_order() {
        let ast = ast_of(
            "pub struct BlockObs {\n\
                 /// doc\n\
                 pub responsive: u32,\n\
                 pub rtt_ns: u64,\n\
                 routed: bool,\n\
             }\n",
        );
        let s = ast.struct_named("BlockObs").expect("struct");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["responsive", "rtt_ns", "routed"]);
        assert_eq!(s.fields[0].line, 3);
    }

    #[test]
    fn generic_fields_do_not_split_on_inner_commas() {
        let ast =
            ast_of("struct S { a: BTreeMap<(Asn, MonthId), f64>, b: [Vec<FeedStatus>; 3], c: u8 }");
        let s = ast.struct_named("S").unwrap();
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn tuple_and_unit_structs() {
        let ast = ast_of("struct Round(pub u32);\nstruct Marker;\n");
        let r = ast.struct_named("Round").unwrap();
        assert!(r.tuple);
        assert_eq!(r.fields.len(), 1);
        assert_eq!(r.fields[0].name, "0");
        assert!(ast.struct_named("Marker").unwrap().fields.is_empty());
    }

    #[test]
    fn enum_variants_with_payloads() {
        let ast = ast_of(
            "enum FeedObs { NotDue, Accepted { retries: u32, q: Q }, Absent(u32), Last = 9 }",
        );
        let e = ast.enum_named("FeedObs").unwrap();
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["NotDue", "Accepted", "Absent", "Last"]);
    }

    #[test]
    fn impls_split_trait_and_type() {
        let ast = ast_of(
            "impl Persist for crate::Round { fn persist(&self) {} fn restore() -> u8 { 0 } }\n\
             impl<T: Persist> Persist for Vec<T> { fn persist(&self) {} }\n\
             impl Round { pub fn new() -> Self { Round(0) } }\n",
        );
        assert_eq!(ast.impls.len(), 3);
        assert_eq!(ast.impls[0].trait_name.as_deref(), Some("Persist"));
        assert_eq!(ast.impls[0].type_name, "Round");
        let fn_names: Vec<&str> = ast.impls[0].fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fn_names, ["persist", "restore"]);
        assert_eq!(ast.impls[1].type_name, "Vec");
        assert_eq!(ast.impls[2].trait_name, None);
        assert_eq!(ast.impls[2].type_name, "Round");
    }

    #[test]
    fn fn_bodies_are_token_ranges() {
        let src = "fn a() { one(); two() } fn decl();";
        let ast = ast_of(src);
        assert_eq!(ast.fns.len(), 2);
        let body = ast.fns[0].body.expect("body");
        assert!(body.len() >= 5);
        assert_eq!(ast.fns[1].body, None);
    }

    #[test]
    fn mods_recurse_and_macros_stay_opaque() {
        let ast = ast_of(
            "mod inner { pub struct Hidden { x: u8 } }\n\
             macro_rules! gen { ($t:ty) => { struct NotReal { y: $t } }; }\n\
             struct Real { z: u8 }\n",
        );
        assert!(ast.struct_named("Hidden").is_some());
        assert!(ast.struct_named("NotReal").is_none());
        assert!(ast.struct_named("Real").is_some());
    }

    #[test]
    fn where_clauses_and_shift_generics_survive() {
        let ast = ast_of(
            "struct W<T> where T: Into<Vec<Vec<u8>>> { field: T }\n\
             impl<T> W<T> where T: Clone { fn get(&self) -> T { self.field.clone() } }\n",
        );
        let s = ast.struct_named("W").unwrap();
        assert_eq!(s.fields.len(), 1);
        assert_eq!(s.fields[0].name, "field");
        assert_eq!(ast.impls[0].type_name, "W");
        assert_eq!(ast.impls[0].fns.len(), 1);
    }

    #[test]
    fn garbage_degrades_without_panicking() {
        for src in [
            "struct",
            "struct {",
            "impl for {",
            "enum E { , , }",
            "fn (",
            "struct S { x: , y }",
            "impl Tr for for for {}",
            "}}}}{{{{",
        ] {
            let _ = ast_of(src); // must not panic
        }
    }
}
