//! Running rules over files and walking the workspace.
//!
//! Two layers run over every file set: the per-file lexical rules
//! ([`crate::rules`]), then the workspace semantic rules
//! ([`crate::semantic`]) over the symbol graph assembled from all files
//! at once. A full `--workspace` sweep runs in *complete* mode, which
//! additionally checks registry staleness (absence is only meaningful
//! when every file was seen).

use crate::context::{FileMeta, SourceFile};
use crate::rules::{Finding, RULES};
use crate::semantic::{check_workspace, Anchor};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A finding bound to its file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFinding {
    /// Workspace-relative path.
    pub path: String,
    pub finding: Finding,
}

impl FileFinding {
    /// `path:line:col: [rule] message` — the human diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.finding.line, self.finding.col, self.finding.rule, self.finding.message
        )
    }
}

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct LintRun {
    pub files_checked: usize,
    pub findings: Vec<FileFinding>,
}

impl LintRun {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints one already-analyzed file: runs every applicable rule, then
/// filters by test regions and `allow` pragmas.
pub fn lint_source(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in RULES {
        if !(rule.applies)(file) {
            continue;
        }
        let mut raw = Vec::new();
        (rule.check)(file, &mut raw);
        for f in raw {
            if rule.skip_test_regions && file.in_test_region(f.line) {
                continue;
            }
            if file.is_allowed(f.rule, f.line) {
                continue;
            }
            findings.push(f);
        }
    }
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// Lints an analyzed file set: per-file lexical rules on each file, then
/// the workspace semantic rules over the symbol graph built from all of
/// them. `complete` marks a full workspace sweep (enables absence checks
/// like registry staleness). Semantic findings pass through the anchoring
/// file's test-region and pragma filters, same as lexical ones.
pub fn lint_sources(files: &[SourceFile], complete: bool) -> LintRun {
    lint_sources_with_lock(files, complete, None)
}

/// [`lint_sources`] plus the wire-schema compatibility gate: when the
/// `SCHEMA.lock` text is supplied, the extraction is diffed against it
/// and `frozen-version-edit` / `schema-lock-drift` findings join the run
/// (`unprobed-version` needs no lockfile and always runs).
pub fn lint_sources_with_lock(files: &[SourceFile], complete: bool, lock: Option<&str>) -> LintRun {
    let mut run = LintRun {
        files_checked: files.len(),
        findings: Vec::new(),
    };
    for file in files {
        for finding in lint_source(file) {
            run.findings.push(FileFinding {
                path: file.meta.path.clone(),
                finding,
            });
        }
    }
    let graph = crate::graph::build(files);
    let mut semantic = check_workspace(files, &graph, complete);
    semantic.extend(crate::schema::check_schema(files, &graph, lock));
    for sf in semantic {
        match sf.anchor {
            Anchor::File(i) => {
                let file = &files[i];
                if file.in_test_region(sf.finding.line)
                    || file.is_allowed(sf.finding.rule, sf.finding.line)
                {
                    continue;
                }
                run.findings.push(FileFinding {
                    path: file.meta.path.clone(),
                    finding: sf.finding,
                });
            }
            Anchor::Path(path) => run.findings.push(FileFinding {
                path,
                finding: sf.finding,
            }),
        }
    }
    run.findings.sort_by(|a, b| {
        (&a.path, a.finding.line, a.finding.col, a.finding.rule).cmp(&(
            &b.path,
            b.finding.line,
            b.finding.col,
            b.finding.rule,
        ))
    });
    run
}

/// Lints the bytes of one file at a workspace-relative path. Semantic
/// rules run over the single-file graph (staleness checks stay off).
pub fn lint_bytes(rel_path: &str, src: Vec<u8>) -> Vec<Finding> {
    let file = SourceFile::analyze(FileMeta::infer(rel_path), src);
    lint_sources(std::slice::from_ref(&file), false)
        .findings
        .into_iter()
        .map(|f| f.finding)
        .collect()
}

/// [`lint_bytes`] with a `SCHEMA.lock` text, so fixtures can exercise the
/// lockfile-dependent schema rules (`frozen-version-edit`,
/// `schema-lock-drift`) against a known frozen baseline.
pub fn lint_bytes_with_lock(rel_path: &str, src: Vec<u8>, lock: &str) -> Vec<Finding> {
    let file = SourceFile::analyze(FileMeta::infer(rel_path), src);
    lint_sources_with_lock(std::slice::from_ref(&file), false, Some(lock))
        .findings
        .into_iter()
        .map(|f| f.finding)
        .collect()
}

/// Directories never descended into. `fixtures` holds the linter's own
/// deliberate-violation corpus; `target` and VCS metadata are not source;
/// `vendor` holds offline stand-ins for third-party crates, which are not
/// subject to workspace invariants.
fn skip_dir(rel: &str, name: &str) -> bool {
    matches!(name, "target" | ".git" | ".github" | "node_modules")
        || (rel == "crates/lint" && name == "fixtures")
        || (rel.is_empty() && name == "vendor")
}

/// Collects every `.rs` file under `root` in deterministic (sorted) order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![(root.to_path_buf(), String::new())];
    while let Some((dir, rel)) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let child_rel = if rel.is_empty() {
                name.clone()
            } else {
                format!("{rel}/{name}")
            };
            if path.is_dir() {
                if !skip_dir(&rel, &name) {
                    stack.push((path, child_rel));
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every Rust source file under `root` (the workspace): all files
/// are analyzed up front so the semantic rules see the whole symbol
/// graph, and complete-sweep absence checks are enabled. When the root
/// carries a `SCHEMA.lock`, the wire-schema compatibility gate runs
/// against it.
pub fn lint_workspace(root: &Path) -> io::Result<LintRun> {
    let files = analyze_workspace(root)?;
    let lock = fs::read_to_string(root.join("SCHEMA.lock")).ok();
    Ok(lint_sources_with_lock(&files, true, lock.as_deref()))
}

/// Reads and analyzes every workspace source file (the shared front half
/// of [`lint_workspace`] and the `schema` CLI mode).
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read(&path)?;
        files.push(SourceFile::analyze(FileMeta::infer(&rel), src));
    }
    Ok(files)
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a run as a JSON document (hand-rolled: the linter is
/// dependency-free by design).
pub fn render_json(run: &LintRun) -> String {
    let mut out = String::from("{\n  \"files_checked\": ");
    out.push_str(&run.files_checked.to_string());
    out.push_str(",\n  \"violations\": [");
    for (i, f) in run.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.path),
            f.finding.line,
            f.finding.col,
            f.finding.rule,
            json_escape(&f.finding.message)
        ));
    }
    if !run.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_file_produces_no_findings() {
        let src = b"#![forbid(unsafe_code)]\npub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        assert!(lint_bytes("crates/core/src/lib.rs", src.to_vec()).is_empty());
    }

    #[test]
    fn pragma_suppresses_and_its_absence_fires() {
        let dirty = b"fn f() -> u32 { OPT.unwrap() }\n".to_vec();
        let hits = lint_bytes("crates/core/src/x.rs", dirty);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "panic-in-pipeline");

        let excused =
            b"fn f() -> u32 { OPT.unwrap() } // fbs-lint: allow(panic-in-pipeline) static\n"
                .to_vec();
        assert!(lint_bytes("crates/core/src/x.rs", excused).is_empty());
    }

    #[test]
    fn json_escapes_and_renders() {
        let mut run = LintRun {
            files_checked: 1,
            findings: vec![FileFinding {
                path: "a\"b.rs".into(),
                finding: crate::rules::Finding {
                    rule: "wall-clock",
                    line: 3,
                    col: 7,
                    message: "tab\there".into(),
                },
            }],
        };
        let json = render_json(&run);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("tab\\there"));
        run.findings.clear();
        assert!(render_json(&run).contains("\"violations\": []"));
    }
}
