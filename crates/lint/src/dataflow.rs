//! The dataflow substrate: transitive call-graph reachability and a
//! lightweight source→sink taint pass over function bodies.
//!
//! PR 5's semantic rules looked exactly one call-graph hop away from a
//! sink; the determinism rules the sharded campaign engine needs (see
//! ROADMAP item 1) are *transitive* properties: a `Mutex` three calls
//! below `measure_round` breaks bit-identical replay just as surely as
//! one inside it. This module turns the per-fn callee names collected by
//! [`crate::graph`] into resolved edges and computes fixed-point
//! reachability over them, once per lint run; every rule that asks
//! "can control flow get from A to B?" shares the same closure.
//!
//! The taint pass is the second layer: inside one body, values produced
//! by sharded/fan-out iteration (`par_iter`, `spawn`, `shard_*`) are
//! *tainted* until they pass a deterministic ordering step (`sort*`,
//! `BTreeMap`/`BTreeSet` collection, `ordered_*`/`roster_*` merges);
//! tainted values reaching a persistence/emission sink are findings.
//! Like everything below the engine, both passes are **total**: any
//! token stream produces an answer, never a panic, always terminating —
//! reachability visits each function at most once, and the taint scan
//! is a single forward walk with bounded lookahead.

use crate::context::SourceFile;
use crate::graph::{is_library, SymbolGraph};
use crate::lexer::TokenKind;
use crate::parser::Span;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Resolved call edges: `edges[i]` lists the indices (into
/// [`SymbolGraph::fns`]) of every library function a callee name of fn
/// `i` resolves to. Resolution is name-based, like the graph itself:
/// one name maps to every workspace function carrying it.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub edges: Vec<Vec<usize>>,
}

/// Builds the resolved call graph over library functions. Deterministic:
/// edges follow the graph's fn order and each target list is sorted.
pub fn build_call_graph(files: &[SourceFile], g: &SymbolGraph) -> CallGraph {
    let mut edges = Vec::with_capacity(g.fns.len());
    for f in &g.fns {
        let mut out: Vec<usize> = Vec::new();
        for callee in &f.callees {
            if let Some(indices) = g.fns_by_name.get(callee) {
                for &ci in indices {
                    if is_library(&files[g.fns[ci].file]) {
                        out.push(ci);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        edges.push(out);
    }
    CallGraph { edges }
}

impl CallGraph {
    /// Fixed-point forward reachability from `roots` (inclusive).
    ///
    /// Returns, for every function, the index *into `roots`* of the
    /// first root that reaches it, or `None`. Roots are seeded in the
    /// order given and expanded breadth-first, so attribution is
    /// deterministic: when two roots reach the same function, the
    /// earlier root wins. Each function is visited at most once, which
    /// is also the termination proof — cycles (recursion) are simply
    /// never re-entered.
    pub fn reach_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let n = self.edges.len();
        let mut owner: Vec<Option<usize>> = vec![None; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (ri, &fi) in roots.iter().enumerate() {
            if fi < n && owner[fi].is_none() {
                owner[fi] = Some(ri);
                queue.push_back(fi);
            }
        }
        while let Some(fi) = queue.pop_front() {
            let from = owner[fi];
            for &ti in &self.edges[fi] {
                if ti < n && owner[ti].is_none() {
                    owner[ti] = from;
                    queue.push_back(ti);
                }
            }
        }
        owner
    }
}

/// Call names that produce sharded / fan-out iteration: the values they
/// yield arrive in scheduling order, not a deterministic one.
pub const SHARD_SOURCES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_mut",
    "spawn",
    "join_all",
];

/// Function-name prefixes that mark a call as a shard fan-out.
pub const SHARD_PREFIXES: &[&str] = &["shard_", "fan_out"];

/// Names that constitute a deterministic ordering step: passing through
/// one of these launders shard-scheduling order back into a pinned one.
pub const ORDER_STEPS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "merge_ordered",
    "merge_sorted",
    "BTreeMap",
    "BTreeSet",
];

/// Function-name prefixes that mark a call as a deterministic ordering
/// step (`ordered_merge`, `roster_order`, …).
pub const ORDER_PREFIXES: &[&str] = &["ordered_", "roster_"];

/// Whether `name` is a shard/fan-out source call.
pub fn is_shard_source(name: &str) -> bool {
    SHARD_SOURCES.contains(&name) || SHARD_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Whether `name` is a deterministic ordering step.
pub fn is_order_step(name: &str) -> bool {
    ORDER_STEPS.contains(&name) || ORDER_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// One taint finding: shard-ordered data reached a sink un-ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintFinding {
    pub line: u32,
    pub col: u32,
    /// The fan-out call that produced the tainted value.
    pub source: String,
    /// The sink call the tainted value reached.
    pub sink: String,
}

/// Runs the shard-order taint pass over one function body.
///
/// `is_sink_call` decides which callee names count as persistence /
/// emission / merge sinks (the caller supplies it so the decision can
/// consult the call graph). The pass is a single forward walk:
///
/// * `let x = …;` — if the right-hand side contains a shard source (or
///   an already-tainted name) and no ordering step, `x` is tainted;
///   any ordering step in the binding clears it.
/// * `x.sort();`-style statements un-taint `x` in place.
/// * `for v in x { … }` taints the loop variable when the iterated
///   expression is tainted (or is itself a fan-out call).
/// * a sink call whose argument tokens contain a tainted name or a
///   direct shard-source call is a finding, anchored at the sink.
pub fn shard_taint(
    file: &SourceFile,
    span: Span,
    is_sink_call: &dyn Fn(&str) -> bool,
) -> Vec<TaintFinding> {
    let src = &file.src;
    let hi = span.hi.min(file.sig_len());
    let lo = span.lo.min(hi);
    let tok = |i: usize| file.sig_token(i);
    let ident_at = |i: usize| -> Option<String> {
        let t = tok(i);
        (t.kind == TokenKind::Ident).then(|| String::from_utf8_lossy(t.bytes(src)).into_owned())
    };

    // Tainted name → the source call that tainted it.
    let mut tainted: BTreeMap<String, String> = BTreeMap::new();
    let mut findings: Vec<TaintFinding> = Vec::new();
    let mut reported: BTreeSet<(u32, u32)> = BTreeSet::new();

    // A pending `let`: binders waiting for their statement to end.
    struct Pending {
        binders: Vec<String>,
        depth: i64,
        has_source: Option<String>,
        has_order: bool,
    }
    let mut pending: Option<Pending> = None;
    let mut depth: i64 = 0;

    /// Scans `[from, to)` for a tainted name or a direct source call;
    /// returns the source label of the first hit.
    fn scan_for_taint(
        file: &SourceFile,
        from: usize,
        to: usize,
        tainted: &BTreeMap<String, String>,
    ) -> Option<String> {
        let src = &file.src;
        for k in from..to {
            let t = file.sig_token(k);
            if t.kind != TokenKind::Ident {
                continue;
            }
            let name = String::from_utf8_lossy(t.bytes(src)).into_owned();
            if let Some(origin) = tainted.get(&name) {
                return Some(origin.clone());
            }
            if is_shard_source(&name) && k + 1 < to && file.sig_token(k + 1).is_punct(src, "(") {
                return Some(name);
            }
        }
        None
    }

    let mut i = lo;
    while i < hi {
        let t = tok(i);
        if t.kind == TokenKind::Punct {
            match t.bytes(src) {
                b"(" | b"[" | b"{" => depth += 1,
                b")" | b"]" | b"}" => depth -= 1,
                b";" if pending.as_ref().is_some_and(|p| depth <= p.depth) => {
                    if let Some(p) = pending.take() {
                        for b in p.binders {
                            if let (Some(srcname), false) = (&p.has_source, p.has_order) {
                                tainted.insert(b, srcname.clone());
                            } else {
                                tainted.remove(&b);
                            }
                        }
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = String::from_utf8_lossy(t.bytes(src)).into_owned();

        // `let` — collect binder idents until `:`/`=`/`;`.
        if name == "let" {
            let mut binders = Vec::new();
            let mut j = i + 1;
            while j < hi {
                let bt = tok(j);
                if bt.is_punct(src, "=") || bt.is_punct(src, ":") || bt.is_punct(src, ";") {
                    break;
                }
                if bt.kind == TokenKind::Ident {
                    let b = String::from_utf8_lossy(bt.bytes(src)).into_owned();
                    if b != "mut" && b != "ref" {
                        binders.push(b);
                    }
                }
                j += 1;
            }
            pending = Some(Pending {
                binders,
                depth,
                has_source: None,
                has_order: false,
            });
            i = j;
            continue;
        }

        // `for <pat> in <expr> {` — taint loop vars from the iterated expr.
        if name == "for" {
            let mut vars = Vec::new();
            let mut j = i + 1;
            while j < hi && !tok(j).is_punct(src, "{") {
                if tok(j).kind == TokenKind::Ident {
                    let v = String::from_utf8_lossy(tok(j).bytes(src)).into_owned();
                    if v == "in" {
                        j += 1;
                        break;
                    }
                    if v != "mut" && v != "ref" {
                        vars.push(v);
                    }
                }
                j += 1;
            }
            let expr_lo = j;
            while j < hi && !tok(j).is_punct(src, "{") && !tok(j).is_punct(src, ";") {
                j += 1;
            }
            if let Some(origin) = scan_for_taint(file, expr_lo, j, &tainted) {
                for v in vars {
                    tainted.insert(v, origin.clone());
                }
            }
            i = expr_lo.max(i + 1);
            continue;
        }

        let is_call = i + 1 < hi && tok(i + 1).is_punct(src, "(");

        // `x.sort()`-style in-place ordering un-taints the receiver.
        if is_call && is_order_step(&name) && i >= lo + 2 && tok(i - 1).is_punct(src, ".") {
            if let Some(recv) = ident_at(i - 2) {
                tainted.remove(&recv);
            }
        }

        // Ordering step inside a pending binding clears the taint.
        if is_order_step(&name) {
            if let Some(p) = &mut pending {
                p.has_order = true;
            }
        }

        // Shard source inside a pending binding taints its binders.
        if is_call && is_shard_source(&name) {
            if let Some(p) = &mut pending {
                if p.has_source.is_none() {
                    p.has_source = Some(name.clone());
                }
            }
        }

        // An already-tainted name used in a pending binding propagates.
        if let Some(origin) = tainted.get(&name).cloned() {
            if let Some(p) = &mut pending {
                if p.has_source.is_none() {
                    p.has_source = Some(origin);
                }
            }
        }

        // Sink call: scan its argument tokens for taint.
        if is_call && is_sink_call(&name) {
            let mut adepth = 0i64;
            let mut j = i + 1;
            let args_lo = i + 2;
            while j < hi {
                let at = tok(j);
                if at.kind == TokenKind::Punct {
                    match at.bytes(src) {
                        b"(" | b"[" | b"{" => adepth += 1,
                        b")" | b"]" | b"}" => {
                            adepth -= 1;
                            if adepth <= 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(origin) = scan_for_taint(file, args_lo, j.min(hi), &tainted) {
                if reported.insert((t.line, t.col)) {
                    findings.push(TaintFinding {
                        line: t.line,
                        col: t.col,
                        source: origin,
                        sink: name.clone(),
                    });
                }
            }
        }

        i += 1;
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileMeta, SourceFile};
    use crate::graph::build;

    fn analyze(path: &str, src: &str) -> SourceFile {
        SourceFile::analyze(FileMeta::infer(path), src.as_bytes().to_vec())
    }

    fn taint_of(src: &str) -> Vec<TaintFinding> {
        let f = analyze("crates/core/src/x.rs", src);
        let g = build(std::slice::from_ref(&f));
        let body = g.fns[0].body.expect("body");
        shard_taint(&f, body, &|name| name.starts_with("write_"))
    }

    #[test]
    fn reachability_is_transitive_and_attributes_the_first_root() {
        let f = analyze(
            "crates/core/src/x.rs",
            "fn a() { b(); }\n\
             fn b() { c(); }\n\
             fn c() {}\n\
             fn lone() {}\n",
        );
        let g = build(std::slice::from_ref(&f));
        let cg = build_call_graph(std::slice::from_ref(&f), &g);
        let a = g.fns_by_name["a"][0];
        let c = g.fns_by_name["c"][0];
        let lone = g.fns_by_name["lone"][0];
        let reach = cg.reach_from(&[a]);
        assert_eq!(reach[a], Some(0));
        assert_eq!(reach[c], Some(0), "two hops");
        assert_eq!(reach[lone], None);
    }

    #[test]
    fn reachability_terminates_on_recursion() {
        let f = analyze(
            "crates/core/src/x.rs",
            "fn ping() { pong(); }\nfn pong() { ping(); }\n",
        );
        let g = build(std::slice::from_ref(&f));
        let cg = build_call_graph(std::slice::from_ref(&f), &g);
        let reach = cg.reach_from(&[g.fns_by_name["ping"][0]]);
        assert!(reach.iter().all(Option::is_some));
    }

    #[test]
    fn non_library_targets_are_not_edges() {
        let lib = analyze("crates/core/src/x.rs", "fn entry() { helper(); }\n");
        let test = analyze("crates/core/tests/t.rs", "fn helper() {}\n");
        let files = [lib, test];
        let g = build(&files);
        let cg = build_call_graph(&files, &g);
        assert!(cg.edges[g.fns_by_name["entry"][0]].is_empty());
    }

    #[test]
    fn unordered_shard_results_reaching_a_sink_are_tainted() {
        let found = taint_of(
            "fn merge(shards: &[S], out: &mut O) {\n\
                 let results = shards.par_iter().map(run).collect::<Vec<_>>();\n\
                 for r in results {\n\
                     write_row(&r, out);\n\
                 }\n\
             }\n",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 4);
        assert_eq!(found[0].source, "par_iter");
        assert_eq!(found[0].sink, "write_row");
    }

    #[test]
    fn sorting_before_the_sink_clears_the_taint() {
        let found = taint_of(
            "fn merge(shards: &[S], out: &mut O) {\n\
                 let mut results = shards.par_iter().map(run).collect::<Vec<_>>();\n\
                 results.sort_by_key(|r| r.block);\n\
                 for r in results {\n\
                     write_row(&r, out);\n\
                 }\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn btree_collection_is_an_ordering_step() {
        let found = taint_of(
            "fn merge(shards: &[S], out: &mut O) {\n\
                 let results = shards.par_iter().map(run).collect::<BTreeMap<_, _>>();\n\
                 for r in results {\n\
                     write_row(&r, out);\n\
                 }\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn direct_source_in_sink_args_is_flagged() {
        let found = taint_of(
            "fn merge(shards: &[S], out: &mut O) {\n\
                 write_rows(shards.par_iter().map(run), out);\n\
             }\n",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn sequential_iteration_is_clean() {
        let found = taint_of(
            "fn merge(shards: &[S], out: &mut O) {\n\
                 let results: Vec<_> = shards.iter().map(run).collect();\n\
                 for r in results {\n\
                     write_row(&r, out);\n\
                 }\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn rebinding_clears_stale_taint() {
        let found = taint_of(
            "fn merge(shards: &[S], out: &mut O) {\n\
                 let results = shards.par_iter().map(run).collect::<Vec<_>>();\n\
                 let results = ordered_merge(results);\n\
                 for r in results {\n\
                     write_row(&r, out);\n\
                 }\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
