//! Compatibility-classifier tests: every edit family the wire-schema
//! gate distinguishes, asserted against exact `Additive` / `Breaking`
//! verdicts on minimal extraction pairs (`old` = the frozen lockfile
//! state, `new` = the edited source).

#![forbid(unsafe_code)]

use fbs_lint::{diff_schemas, extract, EditKind, FileMeta, SourceFile, WireSchema};

/// Extracts the wire schema of one virtual library file.
fn schema_of(src: &str) -> WireSchema {
    let files = vec![SourceFile::analyze(
        FileMeta::infer("crates/types/src/x.rs"),
        src.as_bytes().to_vec(),
    )];
    let g = fbs_lint::graph::build(&files);
    extract(&files, &g)
}

/// Diffs two sources and asserts exactly one edit with the expected
/// verdict and a detail mentioning `needle`.
fn assert_verdict(old: &str, new: &str, kind: EditKind, needle: &str) {
    let edits = diff_schemas(&schema_of(old), &schema_of(new));
    assert_eq!(edits.len(), 1, "expected one edit, got {edits:?}");
    assert_eq!(edits[0].kind, kind, "wrong verdict: {edits:?}");
    assert!(
        edits[0].detail.contains(needle),
        "detail `{}` does not mention `{needle}`",
        edits[0].detail
    );
}

const PAIR_OLD: &str = "impl Persist for Pair {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.a);
        w.put_u64(self.b);
    }
}
";

#[test]
fn reorder_in_a_frozen_struct_is_breaking() {
    let new = "impl Persist for Pair {
        fn persist(&self, w: &mut ByteWriter) {
            w.put_u64(self.b);
            w.put_u32(self.a);
        }
    }
    ";
    assert_verdict(PAIR_OLD, new, EditKind::Breaking, "field order changed");
}

#[test]
fn codec_change_of_a_frozen_field_is_breaking() {
    let new = "impl Persist for Pair {
        fn persist(&self, w: &mut ByteWriter) {
            w.put_u32(self.a);
            w.put_i64(self.b);
        }
    }
    ";
    assert_verdict(
        PAIR_OLD,
        new,
        EditKind::Breaking,
        "codec of `self.b` changed",
    );
}

#[test]
fn removal_of_a_frozen_field_is_breaking() {
    let new = "impl Persist for Pair {
        fn persist(&self, w: &mut ByteWriter) {
            w.put_u32(self.a);
        }
    }
    ";
    assert_verdict(PAIR_OLD, new, EditKind::Breaking, "removed");
}

#[test]
fn appending_a_field_to_a_frozen_struct_is_still_breaking() {
    // Appending without a version gate changes the frozen byte stream;
    // only a new version tag makes additions safe.
    let new = "impl Persist for Pair {
        fn persist(&self, w: &mut ByteWriter) {
            w.put_u32(self.a);
            w.put_u64(self.b);
            w.put_bool(self.c);
        }
    }
    ";
    assert_verdict(PAIR_OLD, new, EditKind::Breaking, "appended");
}

const VERSIONED_OLD: &str = "const V1: u32 = 1;
const V2: u32 = 2;
pub struct S { tail: Vec<u32> }
impl S {
    fn layout_version(&self) -> u32 {
        if self.tail.is_empty() {
            V1
        } else {
            V2
        }
    }
}
impl Persist for S {
    fn persist(&self, w: &mut ByteWriter) {
        let version = self.layout_version();
        w.put_u32(version);
        if version != V1 {
            self.tail.persist(w);
        }
    }
}
";

#[test]
fn a_new_version_tag_is_additive() {
    // The frozen v1/v2 layouts are untouched; v3 is a fresh tag carrying
    // the new section, which is exactly how wire evolution must ship.
    let new = "const V1: u32 = 1;
const V2: u32 = 2;
const V3: u32 = 3;
pub struct S { tail: Vec<u32>, extra: Vec<u32> }
impl S {
    fn layout_version(&self) -> u32 {
        if self.tail.is_empty() {
            V1
        } else if self.extra.is_empty() {
            V2
        } else {
            V3
        }
    }
}
impl Persist for S {
    fn persist(&self, w: &mut ByteWriter) {
        let version = self.layout_version();
        w.put_u32(version);
        if version != V1 {
            self.tail.persist(w);
        }
        if version == V3 {
            self.extra.persist(w);
        }
    }
}
";
    assert_verdict(
        VERSIONED_OLD,
        new,
        EditKind::Additive,
        "new version tag v3 of `S`",
    );
}

#[test]
fn editing_a_frozen_version_layout_is_breaking() {
    // Same version set, but v2 now writes its section in another order.
    let new = "const V1: u32 = 1;
const V2: u32 = 2;
pub struct S { tail: Vec<u32> }
impl S {
    fn layout_version(&self) -> u32 {
        if self.tail.is_empty() {
            V1
        } else {
            V2
        }
    }
}
impl Persist for S {
    fn persist(&self, w: &mut ByteWriter) {
        if self.layout_version() != V1 {
            self.tail.persist(w);
        }
        w.put_u32(self.layout_version());
    }
}
";
    let edits = diff_schemas(&schema_of(VERSIONED_OLD), &schema_of(new));
    assert!(
        !edits.is_empty() && edits.iter().all(|e| e.kind == EditKind::Breaking),
        "frozen-layout edit must be breaking: {edits:?}"
    );
}

const ENUM_OLD: &str = "impl Persist for Kind {
    fn persist(&self, w: &mut ByteWriter) {
        match self {
            Kind::A => w.put_u8(0),
            Kind::B(x) => {
                w.put_u8(1);
                x.persist(w);
            }
        }
    }
}
";

#[test]
fn enum_retag_is_breaking() {
    let new = "impl Persist for Kind {
        fn persist(&self, w: &mut ByteWriter) {
            match self {
                Kind::A => w.put_u8(0),
                Kind::B(x) => {
                    w.put_u8(2);
                    x.persist(w);
                }
            }
        }
    }
    ";
    assert_verdict(ENUM_OLD, new, EditKind::Breaking, "retagged: 1 → 2");
}

#[test]
fn enum_variant_on_a_fresh_tag_is_additive() {
    let new = "impl Persist for Kind {
        fn persist(&self, w: &mut ByteWriter) {
            match self {
                Kind::A => w.put_u8(0),
                Kind::B(x) => {
                    w.put_u8(1);
                    x.persist(w);
                }
                Kind::C => w.put_u8(7),
            }
        }
    }
    ";
    assert_verdict(ENUM_OLD, new, EditKind::Additive, "fresh tag");
}

#[test]
fn enum_variant_reusing_a_frozen_tag_is_breaking() {
    let new = "impl Persist for Kind {
        fn persist(&self, w: &mut ByteWriter) {
            match self {
                Kind::A => w.put_u8(0),
                Kind::B(x) => {
                    w.put_u8(1);
                    x.persist(w);
                }
                Kind::C => w.put_u8(1),
            }
        }
    }
    ";
    assert_verdict(ENUM_OLD, new, EditKind::Breaking, "reuses frozen tag 1");
}

#[test]
fn an_identical_extraction_produces_no_edits() {
    assert!(diff_schemas(&schema_of(VERSIONED_OLD), &schema_of(VERSIONED_OLD)).is_empty());
    assert!(diff_schemas(&schema_of(ENUM_OLD), &schema_of(ENUM_OLD)).is_empty());
}
