//! CLI-level tests: the `--list-rules` output is pinned to a golden
//! file, so a rule cannot ship (or change meaning) without the diff
//! showing up in review — and every registered rule must appear in it.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::Command;

fn list_rules_output() -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_fbs-lint"))
        .arg("--list-rules")
        .output()
        .expect("run fbs-lint --list-rules");
    assert!(out.status.success(), "--list-rules exited nonzero");
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn list_rules_matches_the_golden_file() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("list_rules.golden");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    let actual = list_rules_output();
    assert_eq!(
        actual, golden,
        "--list-rules drifted from tests/list_rules.golden; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn every_registered_rule_is_listed() {
    let actual = list_rules_output();
    let lexical = fbs_lint::RULES.iter().map(|r| r.name);
    let semantic = fbs_lint::SEMANTIC_RULES.iter().map(|r| r.name);
    for name in lexical.chain(semantic) {
        assert!(
            actual.lines().any(|l| l.trim_start().starts_with(name)),
            "rule `{name}` missing from --list-rules output"
        );
    }
}
