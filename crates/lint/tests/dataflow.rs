//! Transitive dataflow over a miniature two-crate workspace fixture: an
//! emitter crate whose report writer calls a data crate's shaping
//! helper, which calls a second helper holding a `HashMap`. The defect
//! sits two call-graph hops from the sink *and* in a different crate —
//! exactly the flow PR 5's one-hop checker could not see.

#![forbid(unsafe_code)]

use fbs_lint::graph::build;
use fbs_lint::{build_call_graph, lint_sources, FileMeta, SourceFile};
use std::path::Path;

fn fixture_file(name: &str, virtual_path: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("dataflow")
        .join(name);
    let src = std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    SourceFile::analyze(FileMeta::infer(virtual_path), src)
}

fn two_crate_set() -> Vec<SourceFile> {
    vec![
        fixture_file("emit_crate.rs", "crates/report/src/emit.rs"),
        fixture_file("data_crate.rs", "crates/data/src/shape.rs"),
    ]
}

#[test]
fn call_graph_reaches_across_crates_in_two_hops() {
    let files = two_crate_set();
    let g = build(&files);
    let cg = build_call_graph(&files, &g);
    let root = g.fns_by_name["write_report"][0];
    let shape = g.fns_by_name["shape_rows"][0];
    let bucket = g.fns_by_name["bucket"][0];
    assert_eq!(g.fns[root].file, 0, "sink root lives in the emitter crate");
    assert_eq!(g.fns[bucket].file, 1, "defect lives in the data crate");
    let reach = cg.reach_from(&[root]);
    assert_eq!(reach[shape], Some(0), "one hop");
    assert_eq!(reach[bucket], Some(0), "two hops, across crates");
}

#[test]
fn hash_two_hops_from_a_cross_crate_sink_is_a_finding() {
    let files = two_crate_set();
    let run = lint_sources(&files, false);
    let hits: Vec<_> = run
        .findings
        .iter()
        .filter(|f| f.finding.rule == "nondet-collection-flow")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", run.findings);
    assert_eq!(hits[0].path, "crates/data/src/shape.rs");
    assert_eq!(hits[0].finding.line, 9);
    assert!(hits[0].finding.message.contains("`bucket`"));
    assert!(hits[0]
        .finding
        .message
        .contains("transitively reachable from emission function `write_report`"));
}

#[test]
fn dropping_the_emitter_crate_clears_the_finding() {
    // The data crate alone has no sink surface: the very same HashMap is
    // clean, proving the finding flows from cross-crate reachability and
    // not from the map itself.
    let files = vec![fixture_file("data_crate.rs", "crates/data/src/shape.rs")];
    let run = lint_sources(&files, false);
    assert!(run.findings.is_empty(), "{:?}", run.findings);
}
