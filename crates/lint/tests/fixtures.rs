//! Fixture-driven rule tests: one firing and one non-firing case per rule.
//!
//! Every fixture under `fixtures/<rule>/` is linted as if it lived at a
//! chosen workspace-relative path — the path controls the file kind and
//! crate scoping, so positives are checked against the exact rule name
//! *and* line, and negatives (near-misses: comments, strings, test
//! regions, sanctioned idioms) must produce zero findings.

#![forbid(unsafe_code)]

use fbs_lint::{lint_bytes, lint_bytes_with_lock};
use std::path::Path;

fn fixture(rule: &str, which: &str) -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(format!("{which}.rs"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The frozen `SCHEMA.lock` baseline committed next to a lock-dependent
/// rule's fixture (`positive.lock` / `negative.lock`).
fn lock_fixture(rule: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(format!("{which}.lock"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Lints a fixture against its committed lock baseline, returning
/// `(rule, line)` pairs in diagnostic order.
fn lint_locked_fixture(rule: &str, which: &str, virtual_path: &str) -> Vec<(String, u32)> {
    let lock = lock_fixture(rule, which);
    lint_bytes_with_lock(virtual_path, fixture(rule, which), &lock)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

/// Lints a fixture as if it lived at `virtual_path`, returning
/// `(rule, line)` pairs in diagnostic order.
fn lint_fixture(rule: &str, which: &str, virtual_path: &str) -> Vec<(String, u32)> {
    lint_bytes(virtual_path, fixture(rule, which))
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn assert_fires(rule: &str, virtual_path: &str, expected_lines: &[u32]) {
    let got = lint_fixture(rule, "positive", virtual_path);
    let want: Vec<(String, u32)> = expected_lines
        .iter()
        .map(|&l| (rule.to_string(), l))
        .collect();
    assert_eq!(got, want, "positive fixture for {rule} at {virtual_path}");
}

fn assert_clean(rule: &str, virtual_path: &str) {
    let got = lint_fixture(rule, "negative", virtual_path);
    assert!(got.is_empty(), "negative fixture for {rule} fired: {got:?}");
}

#[test]
fn wall_clock_fires_on_library_instant_now() {
    assert_fires("wall-clock", "crates/geodb/src/fixture.rs", &[6]);
}

#[test]
fn wall_clock_ignores_comments_strings_and_tests() {
    assert_clean("wall-clock", "crates/geodb/src/fixture.rs");
}

#[test]
fn wall_clock_exempts_binaries() {
    // The same clock-reading code is sanctioned in a bin target (the
    // missing-forbid-unsafe finding is expected there: a file under
    // src/bin/ is a crate root, and the fixture omits the attribute).
    let got = lint_fixture("wall-clock", "positive", "crates/bench/src/bin/fixture.rs");
    assert!(
        !got.iter().any(|(rule, _)| rule == "wall-clock"),
        "bin target must be exempt from wall-clock, got {got:?}"
    );
}

#[test]
fn ambient_rng_fires_on_thread_rng() {
    assert_fires("ambient-rng", "crates/geodb/src/fixture.rs", &[4]);
}

#[test]
fn ambient_rng_ignores_world_rng_idiom() {
    assert_clean("ambient-rng", "crates/geodb/src/fixture.rs");
}

#[test]
fn unordered_persist_fires_on_hashmap_near_persist() {
    assert_fires("unordered-persist", "crates/geodb/src/fixture.rs", &[4, 7]);
}

#[test]
fn unordered_persist_accepts_btreemap() {
    assert_clean("unordered-persist", "crates/geodb/src/fixture.rs");
}

#[test]
fn unordered_persist_only_guards_persist_files() {
    // Without a Persist/ByteWriter mention the rule does not apply, so a
    // HashMap far from serialization is fine. Strip the `use ... Persist`
    // line to simulate that.
    let src = fixture("unordered-persist", "positive");
    let stripped: Vec<u8> = String::from_utf8(src)
        .unwrap()
        .lines()
        .filter(|l| !l.contains("Persist"))
        .flat_map(|l| l.bytes().chain([b'\n']))
        .collect();
    let got = lint_bytes("crates/geodb/src/fixture.rs", stripped);
    assert!(got.is_empty(), "rule over-applies: {got:?}");
}

#[test]
fn unordered_persist_guards_quarantine_report_writer() {
    // The feeds quarantine writer emits a report file, so it is on the
    // emission list: the rule applies there even with no Persist/ByteWriter
    // mention in the source.
    let src = fixture("unordered-persist", "positive");
    let stripped: Vec<u8> = String::from_utf8(src)
        .unwrap()
        .lines()
        .filter(|l| !l.contains("Persist"))
        .flat_map(|l| l.bytes().chain([b'\n']))
        .collect();
    let got = lint_bytes("crates/feeds/src/quarantine.rs", stripped);
    assert!(
        got.iter().any(|f| f.rule == "unordered-persist"),
        "quarantine writer must be covered by unordered-persist, got {got:?}"
    );
}

#[test]
fn panic_in_pipeline_fires_on_all_shapes() {
    // line 6: .unwrap(), line 7: m[&k] map indexing, line 11: panic!.
    assert_fires(
        "panic-in-pipeline",
        "crates/core/src/fixture.rs",
        &[6, 7, 11],
    );
}

#[test]
fn panic_in_pipeline_ignores_safe_idioms_and_tests() {
    assert_clean("panic-in-pipeline", "crates/core/src/fixture.rs");
}

#[test]
fn panic_in_pipeline_scopes_to_pipeline_crates() {
    // The same panicking code is out of scope in a non-pipeline crate.
    let got = lint_fixture(
        "panic-in-pipeline",
        "positive",
        "crates/geodb/src/fixture.rs",
    );
    assert!(got.is_empty(), "rule escaped its crates: {got:?}");
}

#[test]
fn nan_unsafe_cmp_fires_on_partial_cmp_unwrap_and_float_eq() {
    // line 4: partial_cmp().unwrap(), line 8: x == 0.0.
    assert_fires("nan-unsafe-cmp", "crates/analysis/src/fixture.rs", &[4, 8]);
}

#[test]
fn nan_unsafe_cmp_accepts_total_cmp_and_tolerances() {
    assert_clean("nan-unsafe-cmp", "crates/analysis/src/fixture.rs");
}

#[test]
fn missing_forbid_unsafe_fires_at_file_head() {
    assert_fires("missing-forbid-unsafe", "crates/geodb/src/lib.rs", &[1]);
}

#[test]
fn missing_forbid_unsafe_satisfied_by_attribute() {
    assert_clean("missing-forbid-unsafe", "crates/geodb/src/lib.rs");
}

#[test]
fn missing_forbid_unsafe_only_guards_crate_roots() {
    // A non-root module without the attribute is fine.
    let got = lint_fixture(
        "missing-forbid-unsafe",
        "positive",
        "crates/geodb/src/fixture.rs",
    );
    assert!(got.is_empty(), "rule fired off the crate root: {got:?}");
}

#[test]
fn persist_field_drift_fires_on_missing_restore_field() {
    assert_fires("persist-field-drift", "crates/geodb/src/fixture.rs", &[8]);
}

#[test]
fn persist_field_drift_accepts_symmetric_and_index_codecs() {
    assert_clean("persist-field-drift", "crates/geodb/src/fixture.rs");
}

#[test]
fn persist_field_drift_skips_non_library_files() {
    // The same asymmetric impl inside an integration test is out of scope.
    let got = lint_fixture(
        "persist-field-drift",
        "positive",
        "crates/geodb/tests/fixture.rs",
    );
    assert!(
        !got.iter().any(|(rule, _)| rule == "persist-field-drift"),
        "rule escaped library scope: {got:?}"
    );
}

#[test]
fn persist_orphan_fires_at_the_orphaned_field() {
    assert_fires("persist-orphan", "crates/geodb/src/fixture.rs", &[9]);
}

#[test]
fn persist_orphan_accepts_fields_whose_types_persist() {
    assert_clean("persist-orphan", "crates/geodb/src/fixture.rs");
}

#[test]
fn unregistered_emission_fires_on_rogue_write_site() {
    assert_fires("unregistered-emission", "crates/geodb/src/fixture.rs", &[7]);
}

#[test]
fn unregistered_emission_ignores_renderers_and_test_writes() {
    assert_clean("unregistered-emission", "crates/geodb/src/fixture.rs");
}

#[test]
fn unregistered_emission_accepts_registered_files() {
    // The very same write site is sanctioned inside a registry entry.
    let got = lint_fixture(
        "unregistered-emission",
        "positive",
        "crates/feeds/src/quarantine.rs",
    );
    assert!(
        !got.iter().any(|(rule, _)| rule == "unregistered-emission"),
        "registered file must be exempt, got {got:?}"
    );
}

#[test]
fn nondet_collection_flow_fires_one_hop_from_the_emitter() {
    assert_fires(
        "nondet-collection-flow",
        "crates/geodb/src/fixture.rs",
        &[11],
    );
}

#[test]
fn nondet_collection_flow_accepts_ordered_and_unreachable_maps() {
    assert_clean("nondet-collection-flow", "crates/geodb/src/fixture.rs");
}

#[test]
fn shard_merge_order_fires_at_the_unordered_sink_call() {
    assert_fires("shard-merge-order", "crates/core/src/fixture.rs", &[7]);
}

#[test]
fn shard_merge_order_accepts_sorted_sequential_and_merged_flows() {
    assert_clean("shard-merge-order", "crates/core/src/fixture.rs");
}

#[test]
fn rng_domain_collision_fires_on_all_three_shapes() {
    // line 5: unregistered literal, line 9: computed argument,
    // lines 13/17: the same literal at two live call sites.
    assert_fires(
        "rng-domain-collision",
        "crates/netsim/src/fixture.rs",
        &[5, 9, 13, 17],
    );
}

#[test]
fn rng_domain_collision_accepts_registered_pragmad_and_test_draws() {
    assert_clean("rng-domain-collision", "crates/netsim/src/fixture.rs");
}

#[test]
fn shared_mutable_fires_two_hops_below_the_round_loop() {
    assert_fires(
        "shared-mutable-in-shard-path",
        "crates/core/src/fixture.rs",
        &[13],
    );
}

#[test]
fn shared_mutable_accepts_owned_state_and_off_path_helpers() {
    assert_clean("shared-mutable-in-shard-path", "crates/core/src/fixture.rs");
}

#[test]
fn float_reduction_order_fires_on_sum_and_additive_fold() {
    // line 9: .sum::<f64>() in a helper the emitter calls, line 13: an
    // additive f64 fold one hop further.
    assert_fires(
        "float-reduction-order",
        "crates/core/src/fixture.rs",
        &[9, 13],
    );
}

#[test]
fn float_reduction_order_accepts_integer_max_and_pragmad_reductions() {
    assert_clean("float-reduction-order", "crates/core/src/fixture.rs");
}

#[test]
fn unprobed_version_fires_on_asymmetric_write_read_sets() {
    // Both findings anchor at the `impl Persist` line: the encoder can
    // write v3 the decoder never accepts, and the decoder accepts v9
    // nothing writes.
    assert_fires("unprobed-version", "crates/geodb/src/fixture.rs", &[29, 29]);
}

#[test]
fn unprobed_version_accepts_symmetric_version_sets() {
    assert_clean("unprobed-version", "crates/geodb/src/fixture.rs");
}

#[test]
fn frozen_version_edit_fires_on_reorders_against_the_lock() {
    // line 15: `Header` swapped its two field writes relative to the
    // frozen baseline; line 43: the frozen v2 layout of `Record` moved
    // `notes` ahead of `head`.
    let got = lint_locked_fixture(
        "frozen-version-edit",
        "positive",
        "crates/geodb/src/fixture.rs",
    );
    assert_eq!(
        got,
        [
            ("frozen-version-edit".to_string(), 15),
            ("frozen-version-edit".to_string(), 43),
        ]
    );
}

#[test]
fn frozen_version_edit_accepts_a_matching_lock() {
    let got = lint_locked_fixture(
        "frozen-version-edit",
        "negative",
        "crates/geodb/src/fixture.rs",
    );
    assert!(got.is_empty(), "negative fixture fired: {got:?}");
}

#[test]
fn schema_lock_drift_fires_on_an_unrecorded_new_type() {
    // line 26: `Extra` is extracted from the source but absent from the
    // frozen baseline — additive drift, not a frozen-version break.
    let got = lint_locked_fixture(
        "schema-lock-drift",
        "positive",
        "crates/geodb/src/fixture.rs",
    );
    assert_eq!(got, [("schema-lock-drift".to_string(), 26)]);
}

#[test]
fn schema_lock_drift_accepts_a_matching_lock() {
    let got = lint_locked_fixture(
        "schema-lock-drift",
        "negative",
        "crates/geodb/src/fixture.rs",
    );
    assert!(got.is_empty(), "negative fixture fired: {got:?}");
}

#[test]
fn every_rule_has_both_fixtures() {
    let lexical = fbs_lint::RULES.iter().map(|r| r.name);
    let semantic = fbs_lint::SEMANTIC_RULES.iter().map(|r| r.name);
    for name in lexical.chain(semantic) {
        for which in ["positive", "negative"] {
            let _ = fixture(name, which); // panics with the path if missing
        }
    }
}
