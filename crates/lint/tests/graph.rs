//! Symbol-graph assembly over a miniature two-file workspace fixture:
//! a types file defining `Record`/`Mode` plus a Persist impl, and a
//! store file that calls the codec and writes bytes out. Exercises the
//! cross-file links the semantic rules depend on — type definitions,
//! Persist impl bodies, callee edges, and write sites.

#![forbid(unsafe_code)]

use fbs_lint::graph::build;
use fbs_lint::{FileMeta, SourceFile};
use std::path::Path;

fn fixture_file(name: &str, virtual_path: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("graph")
        .join(name);
    let src = std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    SourceFile::analyze(FileMeta::infer(virtual_path), src)
}

#[test]
fn two_file_workspace_graph_links_types_impls_and_calls() {
    let files = [
        fixture_file("types_file.rs", "crates/types/src/record.rs"),
        fixture_file("store_file.rs", "crates/core/src/store.rs"),
    ];
    let g = build(&files);

    // Type definitions resolve to their files.
    let record = g.unique_struct("Record").expect("Record defined once");
    assert_eq!(record.file, 0);
    let mode = g.unique_enum("Mode").expect("Mode defined once");
    assert_eq!(files[mode.file].ast.enums[mode.item].variants.len(), 2);
    assert!(g.unique_struct("Store").is_some());

    // The Persist impl carries both codec bodies and registers the type.
    assert_eq!(g.persist_impls.len(), 1);
    let pi = &g.persist_impls[0];
    assert_eq!(pi.type_name, "Record");
    assert_eq!(pi.file, 0);
    assert!(pi.encode.is_some() && pi.decode.is_some());
    assert!(g.persist_types.contains("Record"));
    assert!(!g.persist_types.contains("Store"));

    // Callee edges cross files by name: Store::save → encode_record,
    // which exists as a function node in file 1 of the set.
    let save = &g.fns[g.fns_by_name["save"][0]];
    assert_eq!(save.file, 1);
    assert_eq!(save.impl_type.as_deref(), Some("Store"));
    assert!(save.callees.iter().any(|c| c == "encode_record"));
    let callee_idx = g.fns_by_name["encode_record"][0];
    assert_eq!(g.fns[callee_idx].file, 1);
    assert!(g.fns[callee_idx].callees.iter().any(|c| c == "persist"));

    // The write site is found in `save`, nowhere else.
    assert_eq!(save.write_sites.len(), 1);
    assert_eq!(save.write_sites[0].callee, "fs::write");
    let total_writes: usize = g.fns.iter().map(|f| f.write_sites.len()).sum();
    assert_eq!(total_writes, 1);
}
