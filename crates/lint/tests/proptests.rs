//! Property tests for the linter's lexer and pipeline.
//!
//! The lexer is the linter's trust boundary: it must be *total* — never
//! panic, always terminate, and account for every input byte — on
//! arbitrary bytes, not just valid Rust. The full lint pipeline inherits
//! the same obligation, since CI points it at whatever is on disk.

#![forbid(unsafe_code)]

use fbs_lint::graph::build;
use fbs_lint::lexer::{lex, TokenKind};
use fbs_lint::parser::parse;
use fbs_lint::{build_call_graph, lint_bytes, shard_taint, FileMeta, SourceFile};
use proptest::collection::vec;
use proptest::prelude::*;

/// Significant-token indices exactly as `SourceFile::analyze` builds them.
fn sig_of(tokens: &[fbs_lint::lexer::Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(src in vec(any::<u8>(), 0..512usize)) {
        // Terminates (no infinite loop) and never panics.
        let tokens = lex(&src);
        // Tokens are in order, within bounds, and never empty — the
        // guarantee that the scanner always advances.
        let mut pos = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= pos, "token moved backwards");
            prop_assert!(t.start < t.end, "empty token");
            prop_assert!(t.end <= src.len(), "token past end of input");
            pos = t.end;
        }
    }

    #[test]
    fn lexer_is_total_on_rust_like_soup(picks in vec(any::<u8>(), 0..24usize)) {
        // Adversarial near-Rust: unterminated strings, raw-string fences,
        // nested comment openers, lifetimes vs chars. Must still be total.
        const PIECES: &[&str] = &[
            "fn ", "let x = ", "\"str", "r#\"raw", "/* nest /* ed ",
            "// line\n", "'a'", "'life", "1.5e3", "0..n", "::", "#![",
            "unwrap()", ".expect(\"msg\")", "\\u{7f}", "\u{410}\u{431}",
        ];
        let src: Vec<u8> = picks
            .iter()
            .flat_map(|p| PIECES[*p as usize % PIECES.len()].bytes())
            .collect();
        let tokens = lex(&src);
        let covered: usize = tokens.iter().map(|t| t.end - t.start).sum();
        prop_assert!(covered <= src.len());
    }

    #[test]
    fn parser_is_total_on_arbitrary_bytes(src in vec(any::<u8>(), 0..512usize)) {
        // The parser inherits the lexer's totality obligation: any byte
        // soup must produce an AST (possibly empty) without panicking,
        // and every recorded body span must stay inside the token list.
        let tokens = lex(&src);
        let sig = sig_of(&tokens);
        let ast = parse(&src, &tokens, &sig);
        for f in ast.fns.iter().chain(ast.impls.iter().flat_map(|i| i.fns.iter())) {
            if let Some(body) = f.body {
                prop_assert!(body.lo <= body.hi, "inverted span");
                prop_assert!(body.hi <= sig.len(), "span past the token list");
            }
        }
    }

    #[test]
    fn parser_is_total_on_item_like_soup(picks in vec(any::<u8>(), 0..24usize)) {
        // Adversarial near-items: dangling keywords, unbalanced bodies,
        // generics with shift tokens, attribute fragments.
        const PIECES: &[&str] = &[
            "struct S", "enum E {", "impl Tr for ", "fn f(", "where T: ",
            "<Vec<Vec<u8>>>", ">>", "#[derive(", "pub(crate) ", "mod m {",
            "}, ", "macro_rules! g ", "trait T {", "a: B<", "; ", "for ",
        ];
        let src: Vec<u8> = picks
            .iter()
            .flat_map(|p| PIECES[*p as usize % PIECES.len()].bytes())
            .collect();
        let tokens = lex(&src);
        let sig = sig_of(&tokens);
        let _ = parse(&src, &tokens, &sig);
    }

    #[test]
    fn parser_is_total_on_unfiltered_token_streams(src in vec(any::<u8>(), 0..256usize)) {
        // The parser contract is over any (tokens, sig) pair, not just the
        // comment-filtered indices SourceFile produces: feed it the whole
        // token list, comments included.
        let tokens = lex(&src);
        let all: Vec<usize> = (0..tokens.len()).collect();
        let _ = parse(&src, &tokens, &all);
    }

    #[test]
    fn lint_pipeline_is_total_on_arbitrary_bytes(
        src in vec(any::<u8>(), 0..512usize),
        path_pick in 0usize..4,
    ) {
        // The whole pipeline (lex → classify → rules → pragma filter)
        // must hold the same no-panic guarantee the rules enforce.
        let path = [
            "crates/core/src/lib.rs",
            "crates/analysis/src/fuzz.rs",
            "crates/journal/src/wal.rs",
            "src/bin/fuzz.rs",
        ][path_pick];
        let _ = lint_bytes(path, src);
    }

    #[test]
    fn call_graph_fixed_point_terminates_on_arbitrary_call_topologies(
        calls in vec(vec(0u8..12, 0..4usize), 0..12usize),
    ) {
        // Generate a random fn-calls-fn topology (self-loops, cycles,
        // diamonds included), materialize it as source, and require the
        // closure to terminate with a well-formed, idempotent answer.
        let mut src = String::new();
        for (i, out) in calls.iter().enumerate() {
            src.push_str(&format!("fn f{i}() {{"));
            for c in out {
                src.push_str(&format!(" f{}();", *c as usize % calls.len().max(1)));
            }
            src.push_str(" }\n");
        }
        let file = SourceFile::analyze(FileMeta::infer("crates/core/src/gen.rs"), src.into_bytes());
        let files = [file];
        let g = build(&files);
        let cg = build_call_graph(&files, &g);
        let roots: Vec<usize> = (0..g.fns.len()).step_by(3).collect();
        let reach = cg.reach_from(&roots);
        prop_assert_eq!(reach.len(), g.fns.len());
        // Every root reaches itself; attribution indices stay in range.
        for (ri, &fi) in roots.iter().enumerate() {
            let owner = reach[fi];
            prop_assert!(owner.is_some(), "root {fi} unreached");
            prop_assert!(owner.unwrap() <= ri, "later root stole an earlier root's fn");
        }
        for owner in reach.iter().flatten() {
            prop_assert!(*owner < roots.len());
        }
        // Fixed point: running reachability again changes nothing.
        prop_assert_eq!(cg.reach_from(&roots), reach);
    }

    #[test]
    fn shard_taint_is_total_on_arbitrary_bytes(src in vec(any::<u8>(), 0..512usize)) {
        // The taint pass inherits the totality obligation of everything
        // below the engine: any byte soup, walked as a fn body, must
        // produce findings (possibly none) without panicking.
        let file = SourceFile::analyze(FileMeta::infer("crates/core/src/gen.rs"), src);
        let span = fbs_lint::parser::Span { lo: 0, hi: file.sig_len() };
        let _ = shard_taint(&file, span, &|name| name.starts_with("write_"));
    }

    #[test]
    fn shard_taint_is_total_on_statement_like_soup(picks in vec(any::<u8>(), 0..24usize)) {
        // Adversarial near-statements: dangling lets, unbalanced brackets,
        // sources and sinks in fragments — findings must stay anchored to
        // real token positions.
        const PIECES: &[&str] = &[
            "let x = ", "par_iter()", ".sort()", "for r in ", "write_row(",
            "spawn(", "; ", "} ", "{ ", ") ", "ordered_merge(", "x",
            "shard_all(", "BTreeMap>", "= vec!", "], ",
        ];
        let src: Vec<u8> = picks
            .iter()
            .flat_map(|p| PIECES[*p as usize % PIECES.len()].bytes())
            .collect();
        let file = SourceFile::analyze(FileMeta::infer("crates/core/src/gen.rs"), src);
        let span = fbs_lint::parser::Span { lo: 0, hi: file.sig_len() };
        for f in shard_taint(&file, span, &|name| name.starts_with("write_")) {
            prop_assert!(f.line >= 1, "line numbers are 1-based");
        }
    }
}
