//! Near-misses: shard results sorted before the sink, plain sequential
//! iteration, and a fan-out laundered through a roster-ordered merge.

pub fn collect_sorted(shards: &[Shard], out: &mut String) {
    let mut results = shards.par_iter().map(run_shard).collect::<Vec<_>>();
    results.sort_by_key(|r| r.round);
    for r in results {
        emit_row(&r, out);
    }
}

pub fn collect_sequential(shards: &[Shard], out: &mut String) {
    let results = shards.iter().map(run_shard).collect::<Vec<_>>();
    for r in results {
        emit_row(&r, out);
    }
}

pub fn collect_merged(shards: &[Shard], out: &mut String) {
    let raw = shards.par_iter().map(run_shard).collect::<Vec<_>>();
    let ordered = roster_merge(raw);
    for r in ordered {
        emit_row(&r, out);
    }
}
