//! Deliberate violation: sharded round results reach the emitter in
//! scheduling order — nothing sorts between `par_iter` and the sink.

pub fn collect_rounds(shards: &[Shard], out: &mut String) {
    let results = shards.par_iter().map(run_shard).collect::<Vec<_>>();
    for r in results {
        emit_row(&r, out);
    }
}
