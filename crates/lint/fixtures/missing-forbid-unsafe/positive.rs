//! Fixture: a crate root without the unsafe-code lockout (must fire).

pub fn id(x: u32) -> u32 {
    x
}
