//! Fixture: a crate root carrying `#![forbid(unsafe_code)]` (must NOT fire).

#![forbid(unsafe_code)]

pub fn id(x: u32) -> u32 {
    x
}
