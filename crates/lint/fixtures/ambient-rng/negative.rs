//! Fixture: seeded, coordinate-addressed randomness (must NOT fire).
//!
//! The world-RNG idiom: every random decision is derived from a named
//! domain of a fixed seed, so replays are bit-identical. The words
//! `thread_rng` and `OsRng` appear only in this comment and in a string.

pub struct WorldRng {
    seed: u64,
}

impl WorldRng {
    pub fn domain(&self, name: &str) -> u64 {
        let mut h = self.seed;
        for b in name.bytes() {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
        }
        h
    }
}

pub const WHY: &str = "thread_rng() and OsRng break resume determinism";
