//! Fixture: ambient randomness in library code (must fire).

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen::<f64>(&mut rng)
}
