//! Fixture: both wire types are recorded in `negative.lock` with the
//! exact layouts the source writes — no drift.

pub struct Point {
    x: u32,
    y: u32,
}

impl Persist for Point {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.x);
        w.put_u32(self.y);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let x = r.get_u32()?;
        let y = r.get_u32()?;
        Ok(Point { x, y })
    }
}

pub struct Extra {
    n: u64,
}

impl Persist for Extra {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u64(self.n);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let n = r.get_u64()?;
        Ok(Extra { n })
    }
}
