//! Near-misses: a registered literal drawn once, a pragma'd computed
//! subdomain, and a test-region redraw of a live domain.

pub fn seed(rng: &WorldRng) -> WorldRng {
    rng.domain("faults")
}

pub fn seed_vantage(rng: &WorldRng, name: &str) -> WorldRng {
    // fbs-lint: allow(rng-domain-collision) name-keyed subdomain under a registered root; roster names are unique
    rng.domain(name)
}

#[cfg(test)]
mod tests {
    fn reproduce_stream(rng: &WorldRng) -> WorldRng {
        rng.domain("faults")
    }
}
