//! Deliberate violations: an unregistered domain literal, a computed
//! domain argument, and one literal drawn at two live call sites.

pub fn seed_unregistered(rng: &WorldRng) -> WorldRng {
    rng.domain("not-in-registry")
}

pub fn seed_computed(rng: &WorldRng, name: &str) -> WorldRng {
    rng.domain(name)
}

pub fn seed_faults_wire(rng: &WorldRng) -> WorldRng {
    rng.domain("faults")
}

pub fn seed_faults_oracle(rng: &WorldRng) -> WorldRng {
    rng.domain("faults")
}
