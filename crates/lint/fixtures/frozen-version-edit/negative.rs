//! Fixture: the same wire types as the positive case, but
//! `negative.lock` records exactly the layouts the source writes — a
//! clean tree against its frozen baseline.

const V1: u32 = 1;
const V2: u32 = 2;

pub struct Header {
    id: u32,
    flags: u8,
}

impl Persist for Header {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.id);
        w.put_u8(self.flags);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let id = r.get_u32()?;
        let flags = r.get_u8()?;
        Ok(Header { id, flags })
    }
}

pub struct Record {
    head: Header,
    notes: Vec<u8>,
}

impl Record {
    fn layout_version(&self) -> u32 {
        if self.notes.is_empty() {
            V1
        } else {
            V2
        }
    }
}

impl Persist for Record {
    fn persist(&self, w: &mut ByteWriter) {
        let version = self.layout_version();
        w.put_u32(version);
        self.head.persist(w);
        if version != V1 {
            self.notes.persist(w);
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let version = r.get_u32()?;
        let head = Header::restore(r)?;
        let notes = match version {
            V1 => Vec::new(),
            V2 => Vec::<u8>::restore(r)?,
            other => return Err(FbsError::corrupt_snapshot(other.to_string())),
        };
        Ok(Record { head, notes })
    }
}
