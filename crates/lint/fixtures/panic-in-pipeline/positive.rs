//! Fixture: every panic shape the rule knows, in a pipeline crate.

use std::collections::BTreeMap;

pub fn lookup(m: &BTreeMap<u32, u32>, k: u32) -> u32 {
    let v = m.get(&k).unwrap();
    m[&k] + v
}

pub fn fail() -> u32 {
    panic!("boom")
}
