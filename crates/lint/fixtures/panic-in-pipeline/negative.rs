//! Fixture: panic-free idioms that must NOT fire.
//!
//! `unwrap_or` is not `unwrap`, slice indexing with a computed position
//! is not map indexing with a borrowed key, and test code is exempt.

use std::collections::BTreeMap;

pub fn safe(m: &BTreeMap<u32, u32>, k: u32) -> u32 {
    let v = m.get(&k).copied().unwrap_or(0);
    let arr = [1u32, 2, 3];
    arr[(k as usize) % 3] + v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let m: BTreeMap<u32, u32> = BTreeMap::new();
        let r: Result<u32, ()> = Ok(3);
        assert_eq!(r.unwrap() + safe(&m, 1), 4);
    }
}
