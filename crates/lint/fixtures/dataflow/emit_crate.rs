//! Miniature workspace, emitter crate: the report writer calls into the
//! data crate's shaping helper — the sink root of the closure.

pub fn write_report(rows: &Rows, out: &mut String) {
    for line in shape_rows(rows) {
        out.push_str(&line);
    }
}
