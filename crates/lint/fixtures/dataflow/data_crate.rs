//! Miniature workspace, data crate: shaping goes through a second hop
//! before the unordered map appears — invisible to a one-hop checker.

pub fn shape_rows(rows: &Rows) -> Vec<String> {
    bucket(rows)
}

fn bucket(rows: &Rows) -> Vec<String> {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    m.into_iter().map(|(k, v)| format!("{k}={v}")).collect()
}
