//! Fixture: a versioned wire root whose decoder accepts exactly the
//! versions its encoder can write — every tag is probed both ways.

const V1: u32 = 1;
const V2: u32 = 2;
const V3: u32 = 3;

pub struct Snapshot {
    base: u32,
    tail: Vec<u32>,
}

impl Snapshot {
    fn layout_version(&self) -> u32 {
        if self.tail.is_empty() {
            V1
        } else if self.base > 0 {
            V2
        } else {
            V3
        }
    }
}

impl Persist for Snapshot {
    fn persist(&self, w: &mut ByteWriter) {
        let version = self.layout_version();
        w.put_u32(version);
        w.put_u32(self.base);
        if version != V1 {
            self.tail.persist(w);
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let version = r.get_u32()?;
        let base = r.get_u32()?;
        let tail = match version {
            V1 => Vec::new(),
            V2 => Vec::<u32>::restore(r)?,
            V3 => Vec::<u32>::restore(r)?,
            other => return Err(FbsError::corrupt_snapshot(other.to_string())),
        };
        Ok(Snapshot { base, tail })
    }
}
