//! Near-misses: pure string rendering (no write site), and a scratch
//! write inside a test region — both excused.

pub fn render_debug(rows: &[u32]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!("{r}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_writes_are_test_only() {
        use std::io::Write;
        let mut buf = Vec::new();
        buf.write_all(b"scratch").unwrap();
    }
}
