//! Deliberate violation: a file-writing call site in a library file
//! that is not in the EMISSION_FILES registry.

use std::fs;

pub fn dump_debug(path: &std::path::Path, bytes: &[u8]) {
    fs::write(path, bytes).ok();
}
