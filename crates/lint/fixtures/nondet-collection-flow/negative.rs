//! Near-misses: ordered collections on the emission path, and a
//! HashMap in a helper no sink ever calls.

pub fn emit_rows(out: &mut String) {
    for (k, v) in tally() {
        out.push_str(&format!("{k}={v}\n"));
    }
}

fn tally() -> Tally {
    let mut m = BTreeMap::new();
    m.insert(1u32, 2u32);
    m
}

fn scratch_lookup() {
    let mut cache = HashMap::new();
    cache.insert(1u32, 2u32);
}
