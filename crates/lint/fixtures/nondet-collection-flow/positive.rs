//! Deliberate violation: a HashMap one call-graph hop away from an
//! emission function — iteration order leaks into emitted text.

pub fn emit_rows(out: &mut String) {
    for (k, v) in tally() {
        out.push_str(&format!("{k}={v}\n"));
    }
}

fn tally() -> Tally {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    m
}
