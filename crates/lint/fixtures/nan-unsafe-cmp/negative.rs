//! Fixture: NaN-safe ordering (must NOT fire).
//!
//! Defining `fn partial_cmp` in a trait impl is fine; calling
//! `total_cmp` is the sanctioned ordering; tolerance comparison replaces
//! float `==`.

use std::cmp::Ordering;

pub struct Ratio(pub f64);

impl PartialEq for Ratio {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

pub fn sort_ratios(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

pub fn near_zero(x: f64) -> bool {
    x.abs() < 1e-12
}
