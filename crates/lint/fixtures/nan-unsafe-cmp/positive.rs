//! Fixture: NaN-hostile comparisons in detector math (must fire).

pub fn sort_ratios(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn is_exactly_zero(x: f64) -> bool {
    x == 0.0
}
