//! Miniature workspace, file 2: a store that serializes `Record`
//! (defined in file 1) and writes the bytes out.

pub struct Store {
    path: PathBuf,
}

impl Store {
    pub fn save(&self, record: &Record) {
        let bytes = encode_record(record);
        std::fs::write(&self.path, bytes).ok();
    }
}

fn encode_record(record: &Record) -> Vec<u8> {
    let mut w = ByteWriter::new();
    record.persist(&mut w);
    w.into_bytes()
}
