//! Miniature workspace, file 1: type definitions and one Persist impl.

pub struct Record {
    pub round: u32,
    pub rtt_ns: u64,
}

pub enum Mode {
    Active,
    Paused,
}

impl Persist for Record {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.round);
        w.put_u64(self.rtt_ns);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Record {
            round: r.get_u32()?,
            rtt_ns: r.get_u64()?,
        })
    }
}
