//! Fixture: a library crate reading the wall clock (must fire).

use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let started = Instant::now();
    started.elapsed().as_millis()
}
