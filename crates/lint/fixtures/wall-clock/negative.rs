//! Fixture: near-misses that must NOT fire.
//!
//! Mentions `Instant::now()` only in comments and strings, stores an
//! `Instant` handed in by a caller, and defines its own `now` that is a
//! round counter, not wall time.

use std::time::Instant;

pub struct Stamped {
    pub at: Instant, // the *caller* read the clock; libraries only carry it
}

pub struct RoundClock {
    round: u64,
}

impl RoundClock {
    /// Simulated time, not `Instant::now()`.
    pub fn now(&self) -> u64 {
        self.round
    }
}

pub const HINT: &str = "never call SystemTime::now() in a library crate";

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
