//! Near-miss: the stored type carries its own Persist impl, so the
//! whole chain round-trips.

pub struct Inner {
    x: u8,
}

impl Persist for Inner {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u8(self.x);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Inner { x: r.get_u8()? })
    }
}

pub struct Holder {
    inner: Inner,
}

impl Persist for Holder {
    fn persist(&self, w: &mut ByteWriter) {
        self.inner.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Holder {
            inner: Persist::restore(r)?,
        })
    }
}
