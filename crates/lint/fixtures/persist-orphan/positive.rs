//! Deliberate violation: `Holder` persists, but its field stores
//! `Inner`, which has no Persist impl of its own.

pub struct Inner {
    x: u8,
}

pub struct Holder {
    inner: Inner,
}

impl Persist for Holder {
    fn persist(&self, w: &mut ByteWriter) {
        self.inner.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Holder {
            inner: Persist::restore(r)?,
        })
    }
}
