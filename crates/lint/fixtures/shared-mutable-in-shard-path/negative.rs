//! Near-misses: plain owned state on the round path, shared state in a
//! helper the round loop never reaches, and a non-Relaxed atomic.

pub fn measure_round(world: &mut World) {
    let mut hits = 0u64;
    hits += world.probe();
    world.record(hits);
}

pub fn offline_cache() {
    let cache = Mutex::new(Vec::new());
    cache.lock().push(1u32);
}

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::AcqRel)
}
