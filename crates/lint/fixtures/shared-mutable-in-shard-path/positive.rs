//! Deliberate violation: a Mutex two call-graph hops below the round
//! loop — latent now, scheduling-dependent once rounds shard.

pub fn measure_round(world: &mut World) {
    probe_targets(world);
}

fn probe_targets(world: &mut World) {
    tally_hits(world);
}

fn tally_hits(world: &mut World) {
    let hits = Mutex::new(0u64);
    world.record(hits);
}
