//! Deliberate violation: `b` is encoded in persist() but never restored.

pub struct Drifted {
    a: u32,
    b: u64,
}

impl Persist for Drifted {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.a);
        w.put_u64(self.b);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Drifted { a: r.get_u32()? })
    }
}
