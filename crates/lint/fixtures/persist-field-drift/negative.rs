//! Near-misses: a symmetric field codec, and a symmetric index-style
//! enum codec (neither side names variants) — both accepted.

pub struct Steady {
    a: u32,
    b: u64,
}

impl Persist for Steady {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.a);
        w.put_u64(self.b);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Steady {
            a: r.get_u32()?,
            b: r.get_u64()?,
        })
    }
}

pub enum Tagless {
    First,
    Second,
}

impl Persist for Tagless {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u8(self.index() as u8);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Self::from_index(r.get_u8()?)
    }
}
