//! Fixture: hash-ordered container in a persistence path (must fire).

use fbs_types::codec::Persist;
use std::collections::HashMap;

pub struct Tallies {
    pub per_block: HashMap<u32, u64>,
}
