//! Fixture: ordered containers in a persistence path (must NOT fire).
//!
//! `BTreeMap` iterates in key order, so the encoded bytes are a pure
//! function of content. The word HashMap appears only in this comment.

use fbs_types::codec::Persist;
use std::collections::BTreeMap;

pub struct Tallies {
    pub per_block: BTreeMap<u32, u64>,
}
