//! Deliberate violations: an f64 sum and an additive fold inside
//! helpers an emitter calls — accumulation order becomes report bytes.

pub fn emit_table(xs: &[f64], out: &mut String) {
    out.push_str(&format!("{} {}", mean(xs), total(xs)));
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn total(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}
