//! Near-misses: integer reductions, an order-free max-fold, a pragma'd
//! pinned-order sum, and a float sum no emission surface reaches.

pub fn emit_table(xs: &[u64], out: &mut String) {
    out.push_str(&format!("{} {} {}", count(xs), peak(xs), snr(xs)));
}

fn count(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}

fn peak(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0f64, f64::max)
}

fn snr(xs: &[f64]) -> f64 {
    // fbs-lint: allow(float-reduction-order) sequential sum over round-ordered input
    xs.iter().sum::<f64>()
}

fn offline_mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}
