//! Property tests for the lossy feed parsers.
//!
//! Two contracts, per format (BGP dump / geo snapshot / delegation file):
//!
//! 1. **Totality** — the lossy ingest path never panics and never errors
//!    on arbitrary bytes; whatever happens, the quarantine accounting is
//!    internally consistent.
//! 2. **Round-trip** — `parse_lossy ∘ serialize` over an arbitrary *valid*
//!    structure quarantines nothing, is accepted at the default tolerance,
//!    and preserves the record count.

use fbs_delegations::{DelegationFile, DelegationRecord, DelegationStatus};
use fbs_feeds::{ingest_bgp, ingest_delegations, ingest_geo, FeedQuarantine, LossyTolerance};
use fbs_geodb::{BlockGeo, GeoRegion, GeoSnapshot, RadiusKm};
use fbs_types::{Asn, BlockId, CivilDate, MonthId, Oblast, Prefix, ALL_OBLASTS};
use proptest::collection::vec;
use proptest::prelude::*;

/// Feed-ish garbage alphabet: digits, separators, newlines, comment
/// markers — the characters that steer the parsers' state machines.
const CHARSET: &[u8] = b"0123456789abcdefgUARU .|/:,-#\n\n|";

fn garble(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| CHARSET[*b as usize % CHARSET.len()] as char)
        .collect()
}

/// The invariants every quarantine summary must satisfy, no matter how
/// hostile the input.
fn check_accounting(q: &FeedQuarantine, text: &str) {
    let lines = text.lines().count();
    assert!(
        q.total_records() <= lines.max(q.total_records()),
        "more records than lines"
    );
    // A structural (line-0) entry weighs the whole payload; otherwise the
    // quarantined lines are a subset of the content.
    assert!(
        q.quarantined_bytes <= q.content_bytes,
        "quarantined {} of {} content bytes",
        q.quarantined_bytes,
        q.content_bytes
    );
    assert!(q.record_rate() >= 0.0 && q.record_rate() <= 1.0);
    assert!(q.byte_rate() >= 0.0 && q.byte_rate() <= 1.0);
    for r in &q.records {
        assert!(!r.reason.is_empty(), "quarantine entries carry a reason");
    }
}

proptest! {
    // ---- Totality: arbitrary bytes, both raw and parser-shaped. ----

    #[test]
    fn bgp_ingest_is_total(raw in vec(any::<u8>(), 0..600usize)) {
        for text in [String::from_utf8_lossy(&raw).into_owned(), garble(&raw)] {
            let r = ingest_bgp(&text, &LossyTolerance::default());
            check_accounting(&r.quarantine, &text);
            if r.accepted {
                assert!(r.quarantine.within(&LossyTolerance::default()));
            }
        }
    }

    #[test]
    fn geo_ingest_is_total(raw in vec(any::<u8>(), 0..600usize)) {
        for text in [String::from_utf8_lossy(&raw).into_owned(), garble(&raw)] {
            let r = ingest_geo(&text, &LossyTolerance::default());
            check_accounting(&r.quarantine, &text);
        }
    }

    #[test]
    fn delegations_ingest_is_total(raw in vec(any::<u8>(), 0..600usize)) {
        for text in [String::from_utf8_lossy(&raw).into_owned(), garble(&raw)] {
            let r = ingest_delegations(&text, &LossyTolerance::default());
            check_accounting(&r.quarantine, &text);
        }
    }

    // ---- Round-trips: serialize a valid structure, ingest it back. ----

    #[test]
    fn bgp_roundtrip_quarantines_nothing(
        spec in vec((any::<u8>(), any::<u8>(), 1u32..100_000, 1u32..100_000), 0..24usize),
    ) {
        let mut rib = fbs_bgp::Rib::new();
        for (b, c, transit, origin) in &spec {
            let prefix = Prefix::from_block(BlockId::from_octets(10, *b, *c));
            rib.announce(prefix, vec![Asn(*transit), Asn(*origin)]).expect("valid route");
        }
        let text = fbs_bgp::dump::to_string(&rib);
        let r = ingest_bgp(&text, &LossyTolerance::zero());
        assert!(r.accepted, "pristine dump rejected: {:?}", r.quarantine.records);
        assert!(r.quarantine.is_empty(), "{:?}", r.quarantine.records);
        assert_eq!(r.value.num_routes(), rib.num_routes());
    }

    #[test]
    fn geo_roundtrip_quarantines_nothing(
        spec in vec((any::<u8>(), any::<u8>(), 0usize..26, 1u16..200, any::<bool>()), 0..24usize),
        year in 2022i32..2026,
        month in 1u8..=12,
    ) {
        let records: Vec<BlockGeo> = spec
            .iter()
            .enumerate()
            .map(|(i, (b, c, oblast, count, foreign))| BlockGeo {
                // Index-keyed first octet keeps blocks unique by construction.
                block: BlockId::from_octets(20 + i as u8, *b, *c),
                asn: (*count % 3 != 0).then_some(Asn(64_000 + i as u32)),
                counts: if *foreign {
                    vec![
                        (GeoRegion::Ua(ALL_OBLASTS[*oblast % ALL_OBLASTS.len()]), *count),
                        (GeoRegion::foreign("PL"), 7),
                    ]
                } else {
                    vec![(GeoRegion::Ua(ALL_OBLASTS[*oblast % ALL_OBLASTS.len()]), *count)]
                },
                radius: RadiusKm::quantize(*count as f64),
            })
            .collect();
        let n = records.len();
        let (snap, dupes) = GeoSnapshot::from_records_lossy(MonthId::new(year, month), records);
        assert!(dupes.is_empty(), "generator produced duplicate blocks");
        let text = fbs_geodb::text::to_string(&snap);
        let r = ingest_geo(&text, &LossyTolerance::zero());
        assert!(r.accepted, "pristine snapshot rejected: {:?}", r.quarantine.records);
        assert!(r.quarantine.is_empty(), "{:?}", r.quarantine.records);
        assert_eq!(r.value.num_blocks(), n);
        assert_eq!(r.value.month, snap.month);
    }

    #[test]
    fn delegations_roundtrip_quarantines_nothing(
        spec in vec((any::<u8>(), 0u64..16, any::<bool>()), 0..24usize),
        day in 1u8..=28,
    ) {
        let date = CivilDate::new(2023, 6, day);
        let records: Vec<DelegationRecord> = spec
            .iter()
            .enumerate()
            .map(|(i, (b, size, assigned))| {
                let status = if *assigned {
                    DelegationStatus::Assigned
                } else {
                    DelegationStatus::Allocated
                };
                DelegationRecord::ipv4(
                    "UA",
                    std::net::Ipv4Addr::new(31, i as u8, *b, 0),
                    256 << (size % 5),
                    date,
                    status,
                )
            })
            .collect();
        let n = records.len();
        let file = DelegationFile::new("ripencc", date, records);
        let text = fbs_delegations::serialize_file(&file);
        let r = ingest_delegations(&text, &LossyTolerance::zero());
        assert!(r.accepted, "pristine file rejected: {:?}", r.quarantine.records);
        assert!(r.quarantine.is_empty(), "{:?}", r.quarantine.records);
        assert_eq!(r.value.records.len(), n);
        assert_eq!(r.value.registry, "ripencc");
    }
}

/// Oblast list sanity used by the geo generator (guards the `% len`).
#[test]
fn oblast_table_is_nonempty() {
    assert!(!ALL_OBLASTS.is_empty());
    assert!(Oblast::from_index(0).is_some());
}
