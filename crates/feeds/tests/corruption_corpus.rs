//! Walks the checked-in malformed-fixture corpus under
//! `fixtures/feed-corruption/` and asserts the lossy ingest path gives
//! every file the judgement its name promises (see the corpus README):
//! `quarantine_*` is accepted with a non-empty quarantine, `reject_*` is
//! rejected. Runs in CI so every new corpus entry is exercised.

use fbs_feeds::{ingest_bgp, ingest_delegations, ingest_geo, FeedQuarantine, LossyTolerance};
use std::path::PathBuf;

fn corpus_dir(format: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../fixtures/feed-corruption")
        .join(format)
}

/// Reads every `.txt` fixture in one format directory, sorted by name.
fn fixtures(format: &str) -> Vec<(String, String)> {
    let dir = corpus_dir(format);
    let mut out: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).unwrap();
            (name, text)
        })
        .collect();
    out.sort();
    assert!(
        out.len() >= 4,
        "corpus for {format} is too small ({} files) — it must cover \
         several damage classes",
        out.len()
    );
    out
}

/// Asserts one fixture's judgement matches its filename prefix, plus the
/// cross-checks every corpus entry must satisfy: strict parsing fails
/// whenever a real line was quarantined, and ingest is deterministic.
fn check<F>(format: &str, ingest: F, strict_fails: impl Fn(&str) -> bool)
where
    F: Fn(&str) -> (bool, FeedQuarantine),
{
    for (name, text) in fixtures(format) {
        let (accepted, quarantine) = ingest(&text);
        if name.starts_with("quarantine_") {
            assert!(accepted, "{format}/{name}: expected accepted, got rejected");
            assert!(
                !quarantine.is_empty(),
                "{format}/{name}: expected a non-empty quarantine"
            );
        } else if name.starts_with("reject_") {
            assert!(
                !accepted,
                "{format}/{name}: expected rejected, got accepted"
            );
        } else {
            panic!("{format}/{name}: fixture name must start with quarantine_ or reject_");
        }
        // Any quarantined content line (line 0 is the synthetic
        // completeness entry) must also fail the strict parser.
        if quarantine.records.iter().any(|r| r.line > 0) {
            assert!(
                strict_fails(&text),
                "{format}/{name}: lossy parse quarantined a line the strict \
                 parser accepts"
            );
        }
        // Same bytes, same judgement: the quarantine is deterministic.
        let (accepted2, quarantine2) = ingest(&text);
        assert_eq!(
            (accepted, format!("{quarantine:?}")),
            (accepted2, format!("{quarantine2:?}")),
            "{format}/{name}: ingest is not deterministic"
        );
    }
}

#[test]
fn bgp_corpus_judged_as_named() {
    check(
        "bgp",
        |text| {
            let r = ingest_bgp(text, &LossyTolerance::default());
            (r.accepted, r.quarantine)
        },
        |text| fbs_bgp::dump::from_str(text).is_err(),
    );
}

#[test]
fn geo_corpus_judged_as_named() {
    check(
        "geo",
        |text| {
            let r = ingest_geo(text, &LossyTolerance::default());
            (r.accepted, r.quarantine)
        },
        |text| fbs_geodb::text::from_str(text).is_err(),
    );
}

#[test]
fn delegations_corpus_judged_as_named() {
    check(
        "delegations",
        |text| {
            let r = ingest_delegations(text, &LossyTolerance::default());
            (r.accepted, r.quarantine)
        },
        |text| fbs_delegations::parse_file(text).is_err(),
    );
}
