//! The quarantine report writer.
//!
//! Quarantined records accumulate across a campaign; this module renders
//! them as one deterministic text report so two identical runs emit
//! byte-identical files (the workspace's byte-identity discipline — see
//! fbs-lint's `unordered-persist` rule, which covers this file). Entries
//! are explicitly sorted by `(round, feed, line)` before rendering; no
//! iteration order of any intermediate container reaches the output.

use crate::ingest::TaggedQuarantine;
use fbs_types::Result;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Renders the quarantine report, sorted by `(round, feed, line)`.
///
/// One summary line per delivery, then one indented line per quarantined
/// record (already line-ordered within a delivery).
pub fn render_report(entries: &[TaggedQuarantine]) -> String {
    let mut sorted: Vec<&TaggedQuarantine> = entries.iter().collect();
    sorted.sort_by_key(|e| (e.round, e.kind.index()));
    let mut out = String::new();
    let _ = writeln!(out, "# feed quarantine report");
    let _ = writeln!(
        out,
        "# deliveries with quarantined records: {}",
        sorted.len()
    );
    for e in sorted {
        let q = &e.quarantine;
        let _ = writeln!(
            out,
            "round {} feed {}: {} quarantined / {} records ({:.2}% records, {:.2}% bytes)",
            e.round.0,
            e.kind,
            q.records.len(),
            q.total_records(),
            q.record_rate() * 100.0,
            q.byte_rate() * 100.0,
        );
        let mut records: Vec<_> = q.records.iter().collect();
        records.sort_by(|a, b| (a.line, &a.reason, &a.input).cmp(&(b.line, &b.reason, &b.input)));
        for r in records {
            let _ = writeln!(out, "  {r}");
        }
    }
    out
}

/// Writes the report to `dir/feed_quarantine.txt`, returning the path.
pub fn write_report(dir: &Path, entries: &[TaggedQuarantine]) -> Result<PathBuf> {
    let path = dir.join("feed_quarantine.txt");
    std::fs::write(&path, render_report(entries)).map_err(|e| fbs_types::FbsError::Io {
        reason: format!("writing {}: {e}", path.display()),
    })?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::FeedQuarantine;
    use fbs_types::{FeedKind, QuarantinedRecord, Round};

    fn entry(round: u32, kind: FeedKind, lines: &[u32]) -> TaggedQuarantine {
        TaggedQuarantine {
            kind,
            round: Round(round),
            quarantine: FeedQuarantine {
                records: lines
                    .iter()
                    .map(|l| QuarantinedRecord::new(*l, "bad record", "x|y"))
                    .collect(),
                accepted_records: 10,
                content_bytes: 100,
                quarantined_bytes: lines.len() * 4,
            },
        }
    }

    #[test]
    fn report_is_sorted_and_deterministic() {
        let unordered = vec![
            entry(5, FeedKind::Geo, &[3, 1]),
            entry(2, FeedKind::Delegations, &[9]),
            entry(2, FeedKind::Bgp, &[4]),
        ];
        let a = render_report(&unordered);
        let mut reversed = unordered.clone();
        reversed.reverse();
        let b = render_report(&reversed);
        assert_eq!(a, b, "report must not depend on accumulation order");
        // Round 2 lines precede round 5; bgp precedes delegations.
        let r2_bgp = a.find("round 2 feed bgp").unwrap();
        let r2_del = a.find("round 2 feed delegations").unwrap();
        let r5_geo = a.find("round 5 feed geo").unwrap();
        assert!(r2_bgp < r2_del && r2_del < r5_geo);
        // Within a delivery, records sort by line.
        let l1 = a.find("line 1:").unwrap();
        let l3 = a.find("line 3:").unwrap();
        assert!(l1 < l3);
    }

    #[test]
    fn write_report_lands_on_disk() {
        let dir = std::env::temp_dir().join("fbs-feeds-quarantine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_report(&dir, &[entry(1, FeedKind::Bgp, &[2])]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("round 1 feed bgp"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
