//! Hardened ingest for the campaign's three external feeds.
//!
//! The paper's outage signals depend on three data sources the campaign
//! does not control: RouteViews-style RIB dumps, monthly geolocation
//! snapshots, and RIR delegation files. Three years of wartime collection
//! means gaps, partial exports, and registry lag — so ingest must degrade
//! per feed rather than fail the round. This crate layers that discipline
//! on top of the format crates' `parse_lossy` paths:
//!
//! * [`ingest`] — tolerance judgement: parse a delivered text lossily,
//!   quantify what was quarantined ([`FeedQuarantine`]), and accept or
//!   reject the delivery against record- and byte-level thresholds
//!   ([`LossyTolerance`]);
//! * [`health`] — the per-feed [`FeedHealth`] ledger: fresh / stale /
//!   missing / rejected counts and the current [`fbs_types::FeedStatus`];
//! * [`loader`] — [`FeedLoader`], a deterministic retry loop over an
//!   abstract [`FeedSource`] with an explicit backoff *budget* in virtual
//!   cost units (no wall clock, so replays are bit-identical);
//! * [`quarantine`] — the deterministic, sorted quarantine report writer.
//!
//! Strict parsing remains the default elsewhere in the workspace; this
//! crate is the only place lossy acceptance decisions are made.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod ingest;
pub mod loader;
pub mod quarantine;

pub use health::FeedHealth;
pub use ingest::{
    ingest_bgp, ingest_delegations, ingest_geo, FeedQuarantine, IngestResult, LossyTolerance,
    TaggedQuarantine,
};
pub use loader::{FeedLoader, FeedOutcome, FeedSource, RetryPolicy};
pub use quarantine::render_report;
