//! The per-feed health ledger.

use fbs_types::{FeedKind, FeedStatus};
use serde::{Deserialize, Serialize};

/// Running health of one feed across a campaign.
///
/// The ledger is pure bookkeeping — it never decides anything. The
/// carry-forward policy (what to do when a delivery is absent or
/// rejected) lives with the pipeline state; the acceptance policy lives
/// in [`crate::ingest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedHealth {
    /// Which feed this ledger tracks.
    pub kind: FeedKind,
    /// Rounds with a fresh, accepted delivery.
    pub fresh_rounds: u32,
    /// Rounds served by carried-forward (stale) data.
    pub stale_rounds: u32,
    /// Rounds with no data at all.
    pub missing_rounds: u32,
    /// Deliveries rejected by the tolerance judgement (these rounds also
    /// count as stale or missing, depending on carry-forward).
    pub rejected_deliveries: u32,
    /// Extra fetch attempts consumed by the retry loop.
    pub retries: u32,
    /// Longest run of consecutive non-fresh rounds seen so far.
    pub longest_gap: u32,
    /// Status as of the most recent recorded round.
    pub current: FeedStatus,
    gap_run: u32,
}

impl FeedHealth {
    /// A ledger with nothing recorded yet.
    pub fn new(kind: FeedKind) -> Self {
        FeedHealth {
            kind,
            fresh_rounds: 0,
            stale_rounds: 0,
            missing_rounds: 0,
            rejected_deliveries: 0,
            retries: 0,
            longest_gap: 0,
            current: FeedStatus::Missing,
            gap_run: 0,
        }
    }

    /// Records the status the pipeline settled on for one round.
    pub fn record(&mut self, status: FeedStatus) {
        match status {
            FeedStatus::Fresh => {
                self.fresh_rounds += 1;
                self.gap_run = 0;
            }
            FeedStatus::Stale(_) => {
                self.stale_rounds += 1;
                self.gap_run += 1;
            }
            FeedStatus::Missing => {
                self.missing_rounds += 1;
                self.gap_run += 1;
            }
        }
        self.longest_gap = self.longest_gap.max(self.gap_run);
        self.current = status;
    }

    /// Records a delivery the tolerance judgement rejected.
    pub fn record_rejection(&mut self) {
        self.rejected_deliveries += 1;
    }

    /// Records `n` extra fetch attempts.
    pub fn record_retries(&mut self, n: u32) {
        self.retries += n;
    }

    /// Total rounds recorded.
    pub fn rounds(&self) -> u32 {
        self.fresh_rounds + self.stale_rounds + self.missing_rounds
    }

    /// Fraction of rounds served fresh (1.0 for an empty ledger).
    pub fn availability(&self) -> f64 {
        let total = self.rounds();
        if total == 0 {
            1.0
        } else {
            self.fresh_rounds as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_counts_and_gap_tracking() {
        let mut h = FeedHealth::new(FeedKind::Bgp);
        assert_eq!(h.current, FeedStatus::Missing);
        assert_eq!(h.availability(), 1.0);
        for s in [
            FeedStatus::Fresh,
            FeedStatus::Stale(1),
            FeedStatus::Stale(2),
            FeedStatus::Fresh,
            FeedStatus::Stale(1),
            FeedStatus::Missing,
            FeedStatus::Stale(1),
            FeedStatus::Fresh,
        ] {
            h.record(s);
        }
        assert_eq!(h.fresh_rounds, 3);
        assert_eq!(h.stale_rounds, 4);
        assert_eq!(h.missing_rounds, 1);
        assert_eq!(h.rounds(), 8);
        assert_eq!(h.longest_gap, 3);
        assert_eq!(h.current, FeedStatus::Fresh);
        assert!((h.availability() - 3.0 / 8.0).abs() < 1e-12);
        h.record_rejection();
        h.record_retries(2);
        assert_eq!(h.rejected_deliveries, 1);
        assert_eq!(h.retries, 2);
    }
}
