//! Lossy-parse tolerance judgement.
//!
//! A lossy parser never fails — it returns whatever parsed plus a list of
//! quarantined records. Whether that delivery is *acceptable* is a policy
//! question answered here: a dump that lost 2% of its lines to corruption
//! is still far better than no dump, but one that lost half its lines
//! would silently erase half the routing table and must be rejected so the
//! pipeline carries forward the last good delivery instead.

use fbs_types::codec::{ByteReader, ByteWriter, Persist};
use fbs_types::{FeedKind, QuarantinedRecord, Round};
use serde::{Deserialize, Serialize};

/// Acceptance thresholds for a lossy delivery.
///
/// Both rates are fractions in `[0, 1]`, judged independently; exceeding
/// either rejects the delivery. The byte rate catches the case where few
/// records are quarantined but they carry most of the payload (a truncated
/// dump whose tail fused into one giant garbage line); the record rate
/// catches widespread line-level corruption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossyTolerance {
    /// Maximum quarantined fraction of parseable records (default 0.10).
    pub max_record_rate: f64,
    /// Maximum quarantined fraction of content bytes (default 0.25).
    pub max_byte_rate: f64,
}

impl Default for LossyTolerance {
    fn default() -> Self {
        LossyTolerance {
            max_record_rate: 0.10,
            max_byte_rate: 0.25,
        }
    }
}

impl LossyTolerance {
    /// A tolerance that rejects any quarantined record at all.
    pub fn zero() -> Self {
        LossyTolerance {
            max_record_rate: 0.0,
            max_byte_rate: 0.0,
        }
    }

    /// Validates the rates are finite fractions.
    pub fn validate(&self) -> fbs_types::Result<()> {
        for (name, v) in [
            ("max_record_rate", self.max_record_rate),
            ("max_byte_rate", self.max_byte_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(fbs_types::FbsError::config(format!(
                    "{name} must be within [0, 1], got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// What a lossy parse set aside, with enough context to judge severity.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedQuarantine {
    /// The quarantined records, in line order.
    pub records: Vec<QuarantinedRecord>,
    /// Records accepted by the parse (the denominator's healthy part).
    pub accepted_records: usize,
    /// Content bytes in the delivery (blank/comment lines excluded).
    pub content_bytes: usize,
    /// Content bytes belonging to quarantined lines.
    ///
    /// Computed from the raw line lengths, not the (truncated) stored
    /// inputs, so one fused multi-kilobyte garbage line weighs fully.
    pub quarantined_bytes: usize,
}

impl FeedQuarantine {
    /// Builds the quarantine summary for a delivery of `text` whose lossy
    /// parse accepted `accepted_records` and set aside `records`.
    pub fn measure(text: &str, accepted_records: usize, records: Vec<QuarantinedRecord>) -> Self {
        let mut content_bytes = 0usize;
        for line in text.lines() {
            let t = line.trim();
            if !t.is_empty() && !t.starts_with('#') {
                content_bytes += t.len();
            }
        }
        let mut quarantined_bytes = 0usize;
        {
            // Re-walk the text to weigh quarantined lines by their raw
            // length (stored inputs are truncated). Lines are 1-based.
            let mut want = records.iter().map(|r| r.line as usize).collect::<Vec<_>>();
            want.sort_unstable();
            let mut w = 0;
            for (lineno, line) in text.lines().enumerate() {
                while w < want.len() && want[w] == lineno + 1 {
                    quarantined_bytes += line.trim().len();
                    w += 1;
                }
            }
            // Synthetic entries (line 0, e.g. "missing header") have no
            // line of their own; weigh them as structural: whole payload.
            if records.iter().any(|r| r.line == 0) {
                quarantined_bytes = content_bytes;
            }
        }
        FeedQuarantine {
            records,
            accepted_records,
            content_bytes,
            quarantined_bytes,
        }
    }

    /// Total records seen by the parser.
    pub fn total_records(&self) -> usize {
        self.accepted_records + self.records.len()
    }

    /// Fraction of records quarantined (0 for an empty delivery).
    pub fn record_rate(&self) -> f64 {
        let total = self.total_records();
        if total == 0 {
            0.0
        } else {
            self.records.len() as f64 / total as f64
        }
    }

    /// Fraction of content bytes quarantined (0 for an empty delivery).
    pub fn byte_rate(&self) -> f64 {
        if self.content_bytes == 0 {
            0.0
        } else {
            self.quarantined_bytes as f64 / self.content_bytes as f64
        }
    }

    /// Whether the delivery stays within `tolerance`.
    pub fn within(&self, tolerance: &LossyTolerance) -> bool {
        self.record_rate() <= tolerance.max_record_rate
            && self.byte_rate() <= tolerance.max_byte_rate
    }

    /// Whether anything was quarantined.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Persist for FeedQuarantine {
    fn persist(&self, w: &mut ByteWriter) {
        self.records.persist(w);
        self.accepted_records.persist(w);
        self.content_bytes.persist(w);
        self.quarantined_bytes.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        Ok(FeedQuarantine {
            records: Vec::<QuarantinedRecord>::restore(r)?,
            accepted_records: usize::restore(r)?,
            content_bytes: usize::restore(r)?,
            quarantined_bytes: usize::restore(r)?,
        })
    }
}

/// Outcome of ingesting one delivered feed text.
#[derive(Debug, Clone)]
pub struct IngestResult<T> {
    /// The parsed value (partial under quarantine; meaningless if rejected).
    pub value: T,
    /// What was quarantined, and how much.
    pub quarantine: FeedQuarantine,
    /// Whether the delivery passed the tolerance judgement.
    pub accepted: bool,
}

/// One feed-tagged quarantine, as the report writer consumes it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaggedQuarantine {
    /// Which feed the delivery belonged to.
    pub kind: FeedKind,
    /// The round the delivery was for.
    pub round: Round,
    /// The quarantine summary.
    pub quarantine: FeedQuarantine,
}

impl Persist for TaggedQuarantine {
    fn persist(&self, w: &mut ByteWriter) {
        self.kind.persist(w);
        self.round.persist(w);
        self.quarantine.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        Ok(TaggedQuarantine {
            kind: FeedKind::restore(r)?,
            round: Round::restore(r)?,
            quarantine: FeedQuarantine::restore(r)?,
        })
    }
}

/// The record count a delivery declares about itself, if readable: the
/// `# routes: N` / `# blocks: N` comment for dumps and snapshots, the
/// header's count field for delegation files.
///
/// A count the corruption ate returns `None` — the completeness check
/// simply cannot run, and the per-record tolerance still governs.
fn declared_count(text: &str, kind: FeedKind) -> Option<usize> {
    let comment_count = |tag: &str| {
        text.lines()
            .map(str::trim)
            .find_map(|l| l.strip_prefix(tag))
            .and_then(|n| n.trim().parse::<usize>().ok())
    };
    match kind {
        FeedKind::Bgp => comment_count("# routes:"),
        FeedKind::Geo => comment_count("# blocks:"),
        FeedKind::Delegations => {
            // Version-2 exchange header: `2|registry|serial|count|...`.
            let header = text
                .lines()
                .map(str::trim)
                .find(|l| !l.is_empty() && !l.starts_with('#'))?;
            let fields: Vec<&str> = header.split('|').collect();
            if fields.len() >= 4 && fields[0] == "2" {
                fields[3].parse().ok()
            } else {
                None
            }
        }
    }
}

/// Judges a delivery against its own declared record count.
///
/// Truncation removes bytes; the lossy parser cannot quarantine lines
/// that never arrived, so record- and byte-rate tolerances alone would
/// wave a short dump through as a "clean" small one. When the delivery
/// declares a count and the parser saw fewer records (accepted plus
/// quarantined), a synthetic structural quarantine entry (line 0) weighs
/// the whole payload, which rejects the delivery.
fn check_completeness(quarantine: &mut FeedQuarantine, text: &str, kind: FeedKind) {
    let Some(declared) = declared_count(text, kind) else {
        return;
    };
    let seen = quarantine.total_records();
    if declared > seen {
        quarantine.records.push(QuarantinedRecord::new(
            0,
            format!("incomplete delivery: header declares {declared} records, parser saw {seen}"),
            "",
        ));
        quarantine.quarantined_bytes = quarantine.content_bytes;
    }
}

/// Ingests a BGP RIB dump: lossy parse plus tolerance judgement.
pub fn ingest_bgp(text: &str, tolerance: &LossyTolerance) -> IngestResult<fbs_bgp::Rib> {
    let (rib, records) = fbs_bgp::dump::parse_lossy(text);
    let mut quarantine = FeedQuarantine::measure(text, rib.num_routes(), records);
    check_completeness(&mut quarantine, text, FeedKind::Bgp);
    let accepted = quarantine.within(tolerance);
    IngestResult {
        value: rib,
        quarantine,
        accepted,
    }
}

/// Ingests a geolocation snapshot.
pub fn ingest_geo(text: &str, tolerance: &LossyTolerance) -> IngestResult<fbs_geodb::GeoSnapshot> {
    let (snap, records) = fbs_geodb::text::parse_lossy(text);
    let mut quarantine = FeedQuarantine::measure(text, snap.num_blocks(), records);
    check_completeness(&mut quarantine, text, FeedKind::Geo);
    let accepted = quarantine.within(tolerance);
    IngestResult {
        value: snap,
        quarantine,
        accepted,
    }
}

/// Ingests an RIR delegation file.
pub fn ingest_delegations(
    text: &str,
    tolerance: &LossyTolerance,
) -> IngestResult<fbs_delegations::DelegationFile> {
    let (file, records) = fbs_delegations::parse_lossy(text);
    let mut quarantine = FeedQuarantine::measure(text, file.records.len(), records);
    check_completeness(&mut quarantine, text, FeedKind::Delegations);
    let accepted = quarantine.within(tolerance);
    IngestResult {
        value: file,
        quarantine,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_dump_is_accepted_with_empty_quarantine() {
        let r = ingest_bgp(
            "10.0.0.0/24|65000\n10.0.1.0/24|65001\n",
            &LossyTolerance::default(),
        );
        assert!(r.accepted);
        assert!(r.quarantine.is_empty());
        assert_eq!(r.value.num_routes(), 2);
        assert_eq!(r.quarantine.record_rate(), 0.0);
        assert_eq!(r.quarantine.byte_rate(), 0.0);
    }

    #[test]
    fn light_corruption_is_accepted_heavy_rejected() {
        // 1 bad line out of 20: 5% < 10% default record tolerance.
        let mut light = String::new();
        for i in 0..19 {
            light.push_str(&format!("10.0.{i}.0/24|65000\n"));
        }
        light.push_str("garbage\n");
        let r = ingest_bgp(&light, &LossyTolerance::default());
        assert!(r.accepted);
        assert_eq!(r.quarantine.records.len(), 1);

        // Half bad: rejected, but the parsed half is still returned.
        let mut heavy = String::new();
        for i in 0..10 {
            heavy.push_str(&format!("10.0.{i}.0/24|65000\n"));
            heavy.push_str(&format!("garbage {i}\n"));
        }
        let r = ingest_bgp(&heavy, &LossyTolerance::default());
        assert!(!r.accepted);
        assert_eq!(r.value.num_routes(), 10);
        assert!((r.quarantine.record_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn byte_rate_catches_fused_garbage_tail() {
        // One quarantined record among many — fine by record rate — but it
        // holds most of the payload (a truncated dump's fused tail).
        let mut text = String::new();
        for i in 0..20 {
            text.push_str(&format!("10.0.{i}.0/24|65000\n"));
        }
        text.push_str(&"x".repeat(4096));
        text.push('\n');
        let r = ingest_bgp(&text, &LossyTolerance::default());
        assert!(r.quarantine.record_rate() < 0.10);
        assert!(r.quarantine.byte_rate() > 0.25);
        assert!(!r.accepted);
        // The quarantined input is stored truncated, but weighed fully.
        assert!(r.quarantine.records[0].input.len() <= fbs_types::QuarantinedRecord::MAX_INPUT);
        assert!(r.quarantine.quarantined_bytes >= 4096);
    }

    #[test]
    fn zero_tolerance_rejects_any_quarantine() {
        let r = ingest_bgp("10.0.0.0/24|65000\ngarbage\n", &LossyTolerance::zero());
        assert!(!r.accepted);
        let r = ingest_bgp("10.0.0.0/24|65000\n", &LossyTolerance::zero());
        assert!(r.accepted);
    }

    #[test]
    fn missing_header_weighs_as_structural_failure() {
        // A delegation file without its header parses records fine, but
        // the synthetic header quarantine weighs the whole payload.
        let r = ingest_delegations(
            "ripencc|UA|ipv4|91.237.4.0|512|20120601|allocated\n",
            &LossyTolerance::default(),
        );
        assert!(!r.accepted);
        assert!((r.quarantine.byte_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geo_ingest_judges_like_the_others() {
        let good = "geo|2022-03\n10.0.0.0/24|1|50|Kyiv:10\n";
        let r = ingest_geo(good, &LossyTolerance::default());
        assert!(r.accepted);
        assert_eq!(r.value.num_blocks(), 1);
        let r = ingest_geo("geo|2022-03\ngarbage\n", &LossyTolerance::default());
        assert!(!r.accepted, "100% of records quarantined");
    }

    #[test]
    fn truncated_dump_is_rejected_by_declared_count() {
        // A canonical dump declares its count; cutting its tail leaves
        // only well-formed lines, so no per-line quarantine fires and the
        // completeness check is the only honest detector.
        let mut rib = fbs_bgp::Rib::new();
        for i in 0..10 {
            rib.announce(
                format!("10.0.{i}.0/24").parse().unwrap(),
                vec![fbs_types::Asn(65000)],
            )
            .unwrap();
        }
        let full = fbs_bgp::dump::to_string(&rib);
        let r = ingest_bgp(&full, &LossyTolerance::default());
        assert!(r.accepted);
        assert!(r.quarantine.is_empty());

        let cut: String = full.lines().take(7).map(|l| format!("{l}\n")).collect();
        let r = ingest_bgp(&cut, &LossyTolerance::default());
        assert!(!r.accepted, "truncated dump must be rejected");
        assert!(r
            .quarantine
            .records
            .iter()
            .any(|q| q.line == 0 && q.reason.contains("incomplete delivery")));
        assert!(
            (r.quarantine.byte_rate() - 1.0).abs() < 1e-12,
            "structural weight"
        );
    }

    #[test]
    fn declared_count_covers_all_three_formats() {
        // Geo snapshots declare `# blocks: N`.
        let short = "geo|2022-03\n# blocks: 3\n10.0.0.0/24|1|50|Kyiv:10\n";
        let r = ingest_geo(short, &LossyTolerance::default());
        assert!(!r.accepted);
        let exact = "geo|2022-03\n# blocks: 1\n10.0.0.0/24|1|50|Kyiv:10\n";
        let r = ingest_geo(exact, &LossyTolerance::default());
        assert!(r.accepted);

        // Delegation files declare the count in header field 4.
        let short = "2|ripencc|1|2|19920101|1|+0000\n\
                     ripencc|UA|ipv4|91.237.4.0|512|20120601|allocated\n";
        let r = ingest_delegations(short, &LossyTolerance::default());
        assert!(!r.accepted);
        let exact = "2|ripencc|1|1|19920101|1|+0000\n\
                     ripencc|UA|ipv4|91.237.4.0|512|20120601|allocated\n";
        let r = ingest_delegations(exact, &LossyTolerance::default());
        assert!(r.accepted);
    }

    #[test]
    fn unreadable_count_skips_the_completeness_check() {
        // A mangled count comment cannot support the check; the delivery
        // is then judged on record/byte tolerance alone.
        let r = ingest_bgp(
            "# rtes: 999\n10.0.0.0/24|65000\n",
            &LossyTolerance::default(),
        );
        assert!(r.accepted);
        // Surplus (more records than declared, e.g. a mangled comment
        // turned into a quarantined line) never counts as a shortfall.
        let r = ingest_bgp(
            "# routes: 1\n10.0.0.0/24|65000\ngarbage\n",
            &LossyTolerance::zero(),
        );
        assert!(!r.accepted, "zero tolerance still rejects the garbage line");
        assert!(r.quarantine.records.iter().all(|q| q.line != 0));
    }

    #[test]
    fn quarantine_persist_roundtrips() {
        let r = ingest_bgp(
            "# routes: 3\n10.0.0.0/24|65000\ngarbage\n",
            &LossyTolerance::default(),
        );
        let tagged = TaggedQuarantine {
            kind: FeedKind::Bgp,
            round: Round(17),
            quarantine: r.quarantine,
        };
        let mut w = fbs_types::codec::ByteWriter::new();
        tagged.persist(&mut w);
        let bytes = w.into_bytes();
        let mut rd = fbs_types::codec::ByteReader::new(&bytes);
        let back = TaggedQuarantine::restore(&mut rd).unwrap();
        rd.expect_exhausted().unwrap();
        assert_eq!(back, tagged);
    }

    #[test]
    fn tolerance_validation() {
        assert!(LossyTolerance::default().validate().is_ok());
        assert!(LossyTolerance {
            max_record_rate: 1.5,
            max_byte_rate: 0.0
        }
        .validate()
        .is_err());
        assert!(LossyTolerance {
            max_record_rate: 0.1,
            max_byte_rate: f64::NAN
        }
        .validate()
        .is_err());
    }
}
