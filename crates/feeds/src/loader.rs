//! The deterministic feed-loading loop.
//!
//! [`FeedLoader`] drives an abstract [`FeedSource`] (an HTTP mirror in
//! production, the simulator's feed-fault layer in tests) through a
//! bounded retry loop, judges each delivery against the lossy tolerance,
//! and maintains the per-feed [`FeedHealth`] ledger. There is no wall
//! clock anywhere: backoff is an explicit *budget* of virtual cost units,
//! so a replayed campaign makes byte-identical decisions.

use crate::health::FeedHealth;
use crate::ingest::{
    ingest_bgp, ingest_delegations, ingest_geo, FeedQuarantine, IngestResult, LossyTolerance,
};
use fbs_types::{FeedKind, Round};
use serde::{Deserialize, Serialize};

/// Deterministic retry/backoff policy.
///
/// Attempt `i` (0-based) costs `base_cost << i` virtual units; attempts
/// stop once the cumulative cost would exceed `backoff_budget` or
/// `max_attempts` is reached. With the defaults (3 attempts, budget 7,
/// base 1) the classic 1+2+4 exponential ladder fits exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Hard cap on fetch attempts per feed per round.
    pub max_attempts: u32,
    /// Total virtual backoff budget per feed per round.
    pub backoff_budget: u64,
    /// Cost of the first attempt (doubles each retry).
    pub base_cost: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_budget: 7,
            base_cost: 1,
        }
    }
}

impl RetryPolicy {
    /// Attempts the budget affords (≥ 1 so a delivery is always tried).
    pub fn attempts_allowed(&self) -> u32 {
        let mut spent = 0u64;
        let mut n = 0u32;
        while n < self.max_attempts {
            let cost = self.base_cost.saturating_shl(n);
            if spent.saturating_add(cost) > self.backoff_budget {
                break;
            }
            spent = spent.saturating_add(cost);
            n += 1;
        }
        n.max(1)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        if n >= 64 || self > (u64::MAX >> n) {
            u64::MAX
        } else {
            self << n
        }
    }
}

/// Where feed texts come from. `attempt` is 0-based; returning `None`
/// means this attempt failed (timeout, transfer error, 404).
pub trait FeedSource {
    /// One fetch attempt for `kind`'s delivery for `round`.
    fn fetch(&mut self, kind: FeedKind, round: Round, attempt: u32) -> Option<String>;
}

impl<F> FeedSource for F
where
    F: FnMut(FeedKind, Round, u32) -> Option<String>,
{
    fn fetch(&mut self, kind: FeedKind, round: Round, attempt: u32) -> Option<String> {
        self(kind, round, attempt)
    }
}

/// Outcome of one feed load for one round.
#[derive(Debug, Clone)]
pub enum FeedOutcome<T> {
    /// A delivery arrived and passed the tolerance judgement.
    Accepted {
        /// The parsed value (partial if records were quarantined).
        value: T,
        /// What was quarantined (possibly empty).
        quarantine: FeedQuarantine,
    },
    /// A delivery arrived but exceeded the tolerance; carry forward.
    Rejected(FeedQuarantine),
    /// No delivery at all after the retry budget; carry forward.
    Absent,
}

impl<T> FeedOutcome<T> {
    /// The accepted value, if any.
    pub fn value(self) -> Option<T> {
        match self {
            FeedOutcome::Accepted { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Whether a usable delivery arrived.
    pub fn is_accepted(&self) -> bool {
        matches!(self, FeedOutcome::Accepted { .. })
    }
}

/// Drives a [`FeedSource`] with retries, tolerance judgement, and health
/// ledgers for all three feeds.
#[derive(Debug)]
pub struct FeedLoader<S> {
    source: S,
    policy: RetryPolicy,
    tolerance: LossyTolerance,
    health: [FeedHealth; 3],
}

impl<S: FeedSource> FeedLoader<S> {
    /// Builds a loader over `source` with the given policies.
    pub fn new(source: S, policy: RetryPolicy, tolerance: LossyTolerance) -> Self {
        FeedLoader {
            source,
            policy,
            tolerance,
            health: [
                FeedHealth::new(FeedKind::Bgp),
                FeedHealth::new(FeedKind::Geo),
                FeedHealth::new(FeedKind::Delegations),
            ],
        }
    }

    /// The health ledger for `kind`.
    pub fn health(&self, kind: FeedKind) -> &FeedHealth {
        &self.health[kind.index()]
    }

    /// Fetches with retries; records retry/rejection bookkeeping.
    fn fetch_judged<T>(
        &mut self,
        kind: FeedKind,
        round: Round,
        ingest: impl Fn(&str, &LossyTolerance) -> IngestResult<T>,
    ) -> FeedOutcome<T> {
        let attempts = self.policy.attempts_allowed();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.health[kind.index()].record_retries(1);
            }
            let Some(text) = self.source.fetch(kind, round, attempt) else {
                continue;
            };
            let r = ingest(&text, &self.tolerance);
            if r.accepted {
                return FeedOutcome::Accepted {
                    value: r.value,
                    quarantine: r.quarantine,
                };
            }
            // A delivery over tolerance is not retried: the mirror would
            // serve the same bytes again. Reject and carry forward.
            self.health[kind.index()].record_rejection();
            return FeedOutcome::Rejected(r.quarantine);
        }
        FeedOutcome::Absent
    }

    /// Loads the BGP RIB dump for `round`.
    pub fn load_bgp(&mut self, round: Round) -> FeedOutcome<fbs_bgp::Rib> {
        self.fetch_judged(FeedKind::Bgp, round, ingest_bgp)
    }

    /// Loads the geolocation snapshot for `round`.
    pub fn load_geo(&mut self, round: Round) -> FeedOutcome<fbs_geodb::GeoSnapshot> {
        self.fetch_judged(FeedKind::Geo, round, ingest_geo)
    }

    /// Loads the delegation file for `round`.
    pub fn load_delegations(
        &mut self,
        round: Round,
    ) -> FeedOutcome<fbs_delegations::DelegationFile> {
        self.fetch_judged(FeedKind::Delegations, round, ingest_delegations)
    }

    /// Records the round status the pipeline settled on (after its
    /// carry-forward decision) in the ledger.
    pub fn record_status(&mut self, kind: FeedKind, status: fbs_types::FeedStatus) {
        self.health[kind.index()].record(status);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_types::FeedStatus;

    #[test]
    fn retry_budget_is_deterministic() {
        assert_eq!(RetryPolicy::default().attempts_allowed(), 3);
        // Budget cuts the ladder short: 1 + 2 fits, + 4 does not.
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_budget: 3,
            base_cost: 1,
        };
        assert_eq!(p.attempts_allowed(), 2);
        // Always at least one attempt, even with a zero budget.
        let p = RetryPolicy {
            max_attempts: 3,
            backoff_budget: 0,
            base_cost: 1,
        };
        assert_eq!(p.attempts_allowed(), 1);
        // Huge shifts saturate instead of overflowing.
        let p = RetryPolicy {
            max_attempts: 200,
            backoff_budget: u64::MAX,
            base_cost: 1,
        };
        assert!(p.attempts_allowed() >= 63);
    }

    #[test]
    fn loader_retries_then_accepts() {
        // Fails twice, succeeds on the third attempt.
        let source = |_k: FeedKind, _r: Round, attempt: u32| {
            (attempt == 2).then(|| "10.0.0.0/24|65000\n".to_string())
        };
        let mut loader = FeedLoader::new(source, RetryPolicy::default(), LossyTolerance::default());
        let out = loader.load_bgp(Round(0));
        assert!(out.is_accepted());
        assert_eq!(loader.health(FeedKind::Bgp).retries, 2);
    }

    #[test]
    fn loader_gives_up_within_budget() {
        let source = |_k: FeedKind, _r: Round, _a: u32| None;
        let mut loader = FeedLoader::new(source, RetryPolicy::default(), LossyTolerance::default());
        assert!(matches!(loader.load_bgp(Round(0)), FeedOutcome::Absent));
        assert_eq!(loader.health(FeedKind::Bgp).retries, 2);
    }

    #[test]
    fn over_tolerance_delivery_is_rejected_not_retried() {
        let mut calls = 0u32;
        let source = |_k: FeedKind, _r: Round, _a: u32| {
            calls += 1;
            Some("garbage\nmore garbage\n".to_string())
        };
        // Scoped so the loader's borrow of `calls` ends before the read.
        {
            let mut loader =
                FeedLoader::new(source, RetryPolicy::default(), LossyTolerance::default());
            let out = loader.load_bgp(Round(7));
            assert!(matches!(out, FeedOutcome::Rejected(_)));
            assert_eq!(loader.health(FeedKind::Bgp).rejected_deliveries, 1);
        }
        assert_eq!(
            calls, 1,
            "rejection must not burn retries on the same bytes"
        );
    }

    #[test]
    fn ledger_reflects_recorded_statuses() {
        let source = |_k: FeedKind, _r: Round, _a: u32| None;
        let mut loader = FeedLoader::new(source, RetryPolicy::default(), LossyTolerance::default());
        loader.record_status(FeedKind::Geo, FeedStatus::Fresh);
        loader.record_status(FeedKind::Geo, FeedStatus::Stale(1));
        assert_eq!(loader.health(FeedKind::Geo).fresh_rounds, 1);
        assert_eq!(loader.health(FeedKind::Geo).stale_rounds, 1);
        assert_eq!(loader.health(FeedKind::Geo).current, FeedStatus::Stale(1));
    }
}
