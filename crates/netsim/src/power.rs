//! The power grid: strike campaigns and rolling blackouts.
//!
//! Ukrenergo's energy map (paper §3.2) reports per-day stabilization
//! outages; the paper counts 1,951 hours without electricity in 2024 and
//! correlates them with Internet outages (r = 0.725 in non-frontline
//! regions). This module models the grid as a calendar of scripted strike
//! events, each inducing a recovery period of rolling blackouts whose daily
//! depth decays as repairs progress. Blackout windows rotate through the
//! day per oblast — the "stabilization schedule" — so Internet effects show
//! the same staggered structure as the real reports.
//!
//! The Crimean peninsula (Crimea, Sevastopol) is attached to the Russian
//! grid since 2014 and never participates (the paper uses exactly this to
//! show the winter outages are power-driven).

use crate::rng::WorldRng;
use fbs_types::{CivilDate, Oblast, Round};
use serde::{Deserialize, Serialize};

/// One strike campaign day against the grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrikeEvent {
    /// Day of the attack.
    pub date: CivilDate,
    /// Severity in `0..=1`: fraction of the worst-case blackout depth.
    pub severity: f64,
    /// Days until the grid fully recovers.
    pub recovery_days: u32,
}

/// The compiled blackout calendar.
#[derive(Debug, Clone)]
pub struct PowerCalendar {
    rng: WorldRng,
    strikes: Vec<StrikeEvent>,
    /// Oblasts participating in the Ukrainian grid.
    affected: Vec<Oblast>,
}

/// Deepest modeled blackout: 16 of 24 hours (paper Fig. 10 shows up to
/// 18-hour days at the peak).
const MAX_DAILY_HOURS: f64 = 16.0;

impl PowerCalendar {
    /// Builds a calendar from strike events. `rng` should be the world's
    /// `"power"` domain.
    pub fn new(rng: WorldRng, mut strikes: Vec<StrikeEvent>) -> Self {
        strikes.sort_by_key(|s| s.date);
        PowerCalendar {
            rng,
            strikes,
            affected: fbs_types::ALL_OBLASTS
                .iter()
                .copied()
                .filter(|o| !o.is_crimean_peninsula())
                .collect(),
        }
    }

    /// The scripted strikes (sorted by date).
    pub fn strikes(&self) -> &[StrikeEvent] {
        &self.strikes
    }

    /// Blackout *rounds* (two-hour slots) for an oblast on a date, `0..=8`.
    fn off_slots(&self, oblast: Oblast, date: CivilDate) -> u32 {
        if oblast.is_crimean_peninsula() {
            return 0;
        }
        let day_index = date.to_epoch_days() as u64;
        let mut hours = 0.0f64;
        for s in &self.strikes {
            let delta = date.to_epoch_days() - s.date.to_epoch_days();
            if delta < 0 || delta >= s.recovery_days as i64 {
                continue;
            }
            let progress = delta as f64 / s.recovery_days as f64;
            // Repairs accelerate: deep outages early, long shallow tail.
            let depth = s.severity * MAX_DAILY_HOURS * (1.0 - progress).powf(1.5);
            // Stabilization schedules rotate across oblasts: on a given day
            // only part of the country is scheduled off, more of it while
            // the damage is fresh.
            let participation = (0.25 + 0.6 * s.severity * (1.0 - progress)).min(0.85);
            if !self
                .rng
                .chance3(participation, oblast.index() as u64, day_index, 31)
            {
                continue;
            }
            // Per-oblast modulation ±40%: strikes hit regions unevenly.
            let wobble = 0.6 + 0.8 * self.rng.uniform3(oblast.index() as u64, day_index, 17);
            hours += depth * wobble;
        }
        ((hours / 2.0).round() as u32).min(8)
    }

    /// Blackout hours for an oblast on a date (multiples of two hours, the
    /// scheduling resolution).
    pub fn daily_hours(&self, oblast: Oblast, date: CivilDate) -> f64 {
        self.off_slots(oblast, date) as f64 * 2.0
    }

    /// Whether a date falls in the *emergency phase* right after a strike
    /// (first three days): shutdowns are then simultaneous country-wide
    /// rather than scheduled per-oblast.
    pub fn emergency_phase(&self, date: CivilDate) -> bool {
        self.strikes.iter().any(|s| {
            let delta = date.to_epoch_days() - s.date.to_epoch_days();
            (0..3).contains(&delta) && s.severity >= 0.5
        })
    }

    /// Whether the oblast's power is out during the given round.
    ///
    /// The day's blackout slots form a contiguous rotating window. In
    /// normal stabilization mode the window's start rotates per oblast;
    /// during the emergency phase after a major strike the whole country
    /// sheds load simultaneously.
    pub fn is_off(&self, oblast: Oblast, round: Round) -> bool {
        let date = round.date();
        let slots = self.off_slots(oblast, date);
        if slots == 0 {
            return false;
        }
        let day_index = date.to_epoch_days() as u64;
        let oblast_coord = if self.emergency_phase(date) {
            99 // shared coordinate: synchronized shutdown
        } else {
            oblast.index() as u64
        };
        let start = self.rng.below3(12, oblast_coord, day_index, 23) as u32;
        let slot = round.hour() as u32 / 2;
        (slot + 12 - start) % 12 < slots
    }

    /// A day's per-oblast hours (index = [`Oblast::index`]).
    pub fn day_row(&self, date: CivilDate) -> [f64; Oblast::COUNT] {
        let mut row = [0.0; Oblast::COUNT];
        for o in &self.affected {
            row[o.index()] = self.daily_hours(*o, date);
        }
        row
    }

    /// The Ukrenergo-style report: per-day average hours across affected
    /// oblasts, restricted to days where more than half of the oblasts are
    /// affected (as the public dataset is), over an inclusive date range.
    pub fn ukrenergo_report(&self, from: CivilDate, to: CivilDate) -> Vec<(CivilDate, f64)> {
        let mut out = Vec::new();
        let mut d = from;
        while d <= to {
            let row = self.day_row(d);
            let affected = row.iter().filter(|&&h| h > 0.0).count();
            if affected * 2 > Oblast::COUNT {
                let mean: f64 = row.iter().sum::<f64>() / self.affected.len() as f64;
                out.push((d, mean));
            }
            d = d.plus_days(1);
        }
        out
    }

    /// Total blackout hours over an inclusive range, summed across oblasts
    /// (the paper's "1,951 hours in 2024" is the Ukrenergo-reported mean
    /// aggregate; we expose the raw sum and let callers normalize).
    pub fn total_hours(&self, from: CivilDate, to: CivilDate) -> f64 {
        let mut total = 0.0;
        let mut d = from;
        while d <= to {
            total += self.day_row(d).iter().sum::<f64>();
            d = d.plus_days(1);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_types::CAMPAIGN_START;

    fn calendar() -> PowerCalendar {
        PowerCalendar::new(
            WorldRng::new(42).domain("power"),
            vec![StrikeEvent {
                date: CivilDate::new(2022, 10, 10),
                severity: 0.9,
                recovery_days: 30,
            }],
        )
    }

    #[test]
    fn no_blackouts_before_strike() {
        let c = calendar();
        for o in fbs_types::ALL_OBLASTS {
            assert_eq!(c.daily_hours(o, CivilDate::new(2022, 9, 1)), 0.0);
        }
    }

    #[test]
    fn blackouts_decay_over_recovery() {
        let c = calendar();
        let early: f64 = c.day_row(CivilDate::new(2022, 10, 11)).iter().sum();
        let late: f64 = c.day_row(CivilDate::new(2022, 11, 5)).iter().sum();
        let after: f64 = c.day_row(CivilDate::new(2022, 11, 20)).iter().sum();
        assert!(early > 0.0);
        assert!(late < early, "late {late} should be below early {early}");
        assert_eq!(after, 0.0);
    }

    #[test]
    fn crimea_never_blacked_out() {
        let c = calendar();
        // Across the whole recovery window: Crimea stays dark-free while
        // mainland oblasts accumulate blackout hours (the rotating schedule
        // spares individual oblasts on individual days).
        let mut kyiv = 0.0;
        for day in 0..30 {
            let date = CivilDate::new(2022, 10, 10).plus_days(day);
            assert_eq!(c.daily_hours(Oblast::Crimea, date), 0.0);
            assert_eq!(c.daily_hours(Oblast::Sevastopol, date), 0.0);
            kyiv += c.daily_hours(Oblast::Kyiv, date);
        }
        assert!(kyiv > 0.0);
    }

    #[test]
    fn round_level_off_matches_daily_hours() {
        let c = calendar();
        let date = CivilDate::new(2022, 10, 12);
        for o in [Oblast::Kyiv, Oblast::Lviv, Oblast::Kherson] {
            // Count off rounds among the 12 rounds of this date.
            let mut off = 0;
            for r in Round::campaign_rounds() {
                if r.date() == date && c.is_off(o, r) {
                    off += 1;
                }
            }
            assert_eq!(off as f64 * 2.0, c.daily_hours(o, date));
        }
    }

    #[test]
    fn blackout_window_is_contiguous_modulo_day() {
        let c = calendar();
        let date = CivilDate::new(2022, 10, 12);
        // Collect the off-pattern across the date's 12 slots.
        let rounds: Vec<Round> = Round::campaign_rounds()
            .filter(|r| r.date() == date)
            .collect();
        assert_eq!(rounds.len(), 12);
        let pattern: Vec<bool> = rounds.iter().map(|r| c.is_off(Oblast::Kyiv, *r)).collect();
        // Count transitions in the circular pattern: a single contiguous
        // window has exactly 2 (or 0 if all-on/all-off).
        let transitions = (0..12)
            .filter(|&i| pattern[i] != pattern[(i + 1) % 12])
            .count();
        assert!(transitions == 2 || transitions == 0, "pattern {pattern:?}");
    }

    #[test]
    fn ukrenergo_report_filters_majority_days() {
        let c = calendar();
        let report = c.ukrenergo_report(CivilDate::new(2022, 10, 1), CivilDate::new(2022, 12, 1));
        assert!(!report.is_empty());
        // Every reported day is within the recovery window.
        for (d, mean) in &report {
            assert!(*d >= CivilDate::new(2022, 10, 10));
            assert!(*d < CivilDate::new(2022, 11, 10));
            assert!(*mean > 0.0);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = calendar();
        let b = calendar();
        let date = CivilDate::new(2022, 10, 15);
        for o in fbs_types::ALL_OBLASTS {
            assert_eq!(a.daily_hours(o, date), b.daily_hours(o, date));
        }
        let r = Round::containing(CAMPAIGN_START.plus_seconds(200 * 86_400)).unwrap();
        assert_eq!(a.is_off(Oblast::Sumy, r), b.is_off(Oblast::Sumy, r));
    }

    #[test]
    fn overlapping_strikes_accumulate() {
        let c = PowerCalendar::new(
            WorldRng::new(1).domain("power"),
            vec![
                StrikeEvent {
                    date: CivilDate::new(2024, 3, 22),
                    severity: 0.5,
                    recovery_days: 20,
                },
                StrikeEvent {
                    date: CivilDate::new(2024, 3, 29),
                    severity: 0.5,
                    recovery_days: 20,
                },
            ],
        );
        let single: f64 = c.day_row(CivilDate::new(2024, 3, 23)).iter().sum();
        let double: f64 = c.day_row(CivilDate::new(2024, 3, 30)).iter().sum();
        assert!(double > single, "double {double} vs single {single}");
    }
}
