//! World configuration: the AS and block population.

use fbs_types::{Asn, BlockId, Oblast, Prefix};
use serde::{Deserialize, Serialize};

/// Coarse world sizes. Scenario builders use these to scale the population
/// while preserving the paper's proportions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorldScale {
    /// A handful of ASes and blocks; unit/integration tests.
    Tiny,
    /// Hundreds of ASes, thousands of blocks; default for figures.
    Small,
    /// Paper-scale population (~2,000 ASes, ~40K blocks); slow but full.
    Paper,
}

impl WorldScale {
    /// Multiplier applied to per-oblast AS counts relative to `Paper`.
    pub fn as_fraction(self) -> f64 {
        match self {
            WorldScale::Tiny => 0.01,
            WorldScale::Small => 0.15,
            WorldScale::Paper => 1.0,
        }
    }
}

/// Behavioural archetype of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsProfile {
    /// A small provider serving (mostly) one oblast: stable geolocation,
    /// fixed-line responsiveness, possibly PON/generator-backed.
    Regional,
    /// A national ISP: blocks spread across oblasts, dynamic addressing,
    /// high churn, mobile-like responsiveness.
    National,
    /// A foreign AS announcing UA-delegated space (or absorbing reassigned
    /// space, e.g. Amazon).
    Foreign,
}

/// One /24 block of the world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSpec {
    /// The block.
    pub block: BlockId,
    /// Originating AS.
    pub owner: Asn,
    /// True home region at campaign start.
    pub home: Oblast,
    /// Responder-pool size at campaign start (ever-active addresses when
    /// fully healthy).
    pub base_responders: u16,
    /// Addresses of the block present in the geolocation database at
    /// campaign start (≥ responders; DB entries outnumber live hosts).
    pub geo_population: u16,
    /// Per-round response probability of a pool member under normal
    /// conditions.
    pub response_prob: f64,
    /// Whether the block's users exhibit day/night cycles.
    pub diurnal: bool,
    /// Fraction of responsiveness retained when the oblast's power is out
    /// (UPS/generator/PON coverage; 1.0 = immune, 0.0 = fully dependent).
    pub power_backup: f64,
    /// Annual responder-pool decay factor (the paper observes −18% replies
    /// over three years, faster on the frontline).
    pub annual_decay: f64,
}

impl BlockSpec {
    /// Responder-pool size `months` months into the campaign.
    pub fn responders_at(&self, months: u32) -> u16 {
        let factor = self.annual_decay.powf(months as f64 / 12.0);
        ((self.base_responders as f64) * factor).round() as u16
    }
}

/// One AS of the world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsSpec {
    /// AS number.
    pub asn: Asn,
    /// Organization name.
    pub name: String,
    /// Behavioural profile.
    pub profile: AsProfile,
    /// Headquarters oblast (None = foreign).
    pub hq: Option<Oblast>,
    /// Announced prefixes (each covers its blocks).
    pub prefixes: Vec<Prefix>,
    /// Baseline round-trip time from the vantage point, nanoseconds.
    pub base_rtt_ns: u64,
    /// Transit AS on the default path (used for rerouting bookkeeping).
    pub upstream: Asn,
}

/// The full world configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Root seed; all randomness derives from it.
    pub seed: u64,
    /// Scale tag (informational; the population is explicit below).
    pub scale: WorldScale,
    /// Number of campaign rounds simulated (≤ `Round::campaign_total()`).
    pub rounds: u32,
    /// The AS population.
    pub ases: Vec<AsSpec>,
    /// The block population.
    pub blocks: Vec<BlockSpec>,
}

impl WorldConfig {
    /// Basic structural validation: owners exist, blocks covered by owner
    /// prefixes, probabilities in range.
    pub fn validate(&self) -> fbs_types::Result<()> {
        use std::collections::BTreeSet;
        let asns: BTreeSet<Asn> = self.ases.iter().map(|a| a.asn).collect();
        if asns.len() != self.ases.len() {
            return Err(fbs_types::FbsError::config("duplicate ASN in population"));
        }
        let mut seen_blocks = BTreeSet::new();
        for b in &self.blocks {
            if !asns.contains(&b.owner) {
                return Err(fbs_types::FbsError::config(format!(
                    "block {} owned by unknown {}",
                    b.block, b.owner
                )));
            }
            if !seen_blocks.insert(b.block) {
                return Err(fbs_types::FbsError::config(format!(
                    "duplicate block {}",
                    b.block
                )));
            }
            if !(0.0..=1.0).contains(&b.response_prob)
                || !(0.0..=1.0).contains(&b.power_backup)
                || !(0.0..=1.5).contains(&b.annual_decay)
            {
                return Err(fbs_types::FbsError::config(format!(
                    "block {} has out-of-range parameters",
                    b.block
                )));
            }
            if b.base_responders > 256 || b.geo_population > 256 {
                return Err(fbs_types::FbsError::config(format!(
                    "block {} exceeds 256 addresses",
                    b.block
                )));
            }
        }
        Ok(())
    }

    /// Blocks owned by `asn`, in block order.
    pub fn blocks_of(&self, asn: Asn) -> impl Iterator<Item = &BlockSpec> {
        self.blocks.iter().filter(move |b| b.owner == asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(c: u8, owner: u32) -> BlockSpec {
        BlockSpec {
            block: BlockId::from_octets(10, 0, c),
            owner: Asn(owner),
            home: Oblast::Kherson,
            base_responders: 30,
            geo_population: 180,
            response_prob: 0.85,
            diurnal: false,
            power_backup: 0.3,
            annual_decay: 0.9,
        }
    }

    fn as_spec(asn: u32) -> AsSpec {
        AsSpec {
            asn: Asn(asn),
            name: format!("AS{asn}"),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: vec!["10.0.0.0/16".parse().unwrap()],
            base_rtt_ns: 40_000_000,
            upstream: Asn(3356),
        }
    }

    #[test]
    fn validation_accepts_consistent_config() {
        let cfg = WorldConfig {
            seed: 1,
            scale: WorldScale::Tiny,
            rounds: 100,
            ases: vec![as_spec(1)],
            blocks: vec![block(0, 1), block(1, 1)],
        };
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.blocks_of(Asn(1)).count(), 2);
        assert_eq!(cfg.blocks_of(Asn(2)).count(), 0);
    }

    #[test]
    fn validation_rejects_unknown_owner() {
        let cfg = WorldConfig {
            seed: 1,
            scale: WorldScale::Tiny,
            rounds: 100,
            ases: vec![as_spec(1)],
            blocks: vec![block(0, 2)],
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_duplicates_and_bad_params() {
        let dup = WorldConfig {
            seed: 1,
            scale: WorldScale::Tiny,
            rounds: 100,
            ases: vec![as_spec(1)],
            blocks: vec![block(0, 1), block(0, 1)],
        };
        assert!(dup.validate().is_err());

        let mut bad = block(0, 1);
        bad.response_prob = 1.5;
        let cfg = WorldConfig {
            seed: 1,
            scale: WorldScale::Tiny,
            rounds: 100,
            ases: vec![as_spec(1)],
            blocks: vec![bad],
        };
        assert!(cfg.validate().is_err());

        let dup_as = WorldConfig {
            seed: 1,
            scale: WorldScale::Tiny,
            rounds: 100,
            ases: vec![as_spec(1), as_spec(1)],
            blocks: vec![],
        };
        assert!(dup_as.validate().is_err());
    }

    #[test]
    fn responder_decay() {
        let b = block(0, 1);
        assert_eq!(b.responders_at(0), 30);
        // 0.9^3 ≈ 0.729 → ~22 after 36 months.
        let late = b.responders_at(36);
        assert!((21..=23).contains(&late), "got {late}");
    }

    #[test]
    fn scale_fractions_ordered() {
        assert!(WorldScale::Tiny.as_fraction() < WorldScale::Small.as_fraction());
        assert!(WorldScale::Small.as_fraction() < WorldScale::Paper.as_fraction());
    }
}
