//! The wire-path transport: real ICMP packets against the world.
//!
//! [`WorldTransport`] implements `fbs-prober`'s [`Transport`] for a single
//! probing round: the scanner's echo requests are parsed, looked up against
//! the round's responder bitmaps, and answered with checksummed echo
//! replies after the world's round-trip time. Per-block bitmaps are
//! computed lazily and cached, so scanning a block costs the same whether
//! it is probed address-by-address or not at all.

use crate::world::World;
use fbs_prober::packet::{self, ParsedReply};
use fbs_prober::{ResponderBitmap, Transport};
use fbs_types::{BlockId, Round};
use std::collections::{BTreeMap, BinaryHeap};

#[derive(Debug, PartialEq, Eq)]
struct Pending {
    arrival_ns: u64,
    bytes: Vec<u8>,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.arrival_ns.cmp(&self.arrival_ns) // min-heap
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One round's view of the world as a packet transport.
pub struct WorldTransport<'a> {
    world: &'a World,
    round: Round,
    queue: BinaryHeap<Pending>,
    bitmap_cache: BTreeMap<usize, ResponderBitmap>,
    /// Probes that reached no simulated host.
    pub unanswered: u64,
}

impl<'a> WorldTransport<'a> {
    /// Creates a transport for `round`.
    ///
    /// When the vantage point is offline this round, the transport drops
    /// everything (the scanner sees pure silence — the caller is expected
    /// to mark the round as a missing measurement instead of scanning).
    pub fn new(world: &'a World, round: Round) -> Self {
        WorldTransport {
            world,
            round,
            queue: BinaryHeap::new(),
            bitmap_cache: BTreeMap::new(),
            unanswered: 0,
        }
    }

    fn bitmap_for(&mut self, bi: usize) -> ResponderBitmap {
        let world = self.world;
        let round = self.round;
        *self
            .bitmap_cache
            .entry(bi)
            .or_insert_with(|| world.block_bitmap(round, bi))
    }
}

impl Transport for WorldTransport<'_> {
    fn send(&mut self, bytes: &[u8], now_ns: u64) {
        if !self.world.vantage_online(self.round) {
            return;
        }
        let Ok(req) = packet::parse(bytes) else {
            return;
        };
        let Some(bi) = self.world.block_index(BlockId::containing(req.dst)) else {
            self.unanswered += 1;
            return;
        };
        let host = BlockId::host_of(req.dst);
        if !self.bitmap_for(bi).get(host) {
            self.unanswered += 1;
            return;
        }
        let rtt = self.world.rtt_ns(self.round, bi);
        let reply = ParsedReply::reply_for(&req, 55);
        self.queue.push(Pending {
            arrival_ns: now_ns + rtt,
            bytes: reply,
        });
    }

    fn recv(&mut self, now_ns: u64, out: &mut Vec<(u64, Vec<u8>)>) {
        while let Some(head) = self.queue.peek() {
            if head.arrival_ns > now_ns {
                break;
            }
            let p = self.queue.pop().expect("peeked element exists");
            out.push((p.arrival_ns, p.bytes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{EventKind, EventTarget, Script, ScriptedEvent};
    use crate::spec::{AsProfile, AsSpec, BlockSpec, WorldConfig, WorldScale};
    use fbs_prober::{ScanConfig, Scanner, TargetSet};
    use fbs_types::{Asn, Oblast, Prefix, CAMPAIGN_START};

    fn world(script: Script) -> World {
        let prefix: Prefix = "193.151.240.0/23".parse().unwrap();
        let ases = vec![AsSpec {
            asn: Asn(25482),
            name: "Status".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: vec![prefix],
            base_rtt_ns: 40_000_000,
            upstream: Asn(6849),
        }];
        let blocks = prefix
            .blocks()
            .map(|b| BlockSpec {
                block: b,
                owner: Asn(25482),
                home: Oblast::Kherson,
                base_responders: 30,
                geo_population: 180,
                response_prob: 0.9,
                diurnal: false,
                power_backup: 0.5,
                annual_decay: 0.9,
            })
            .collect();
        World::new(
            WorldConfig {
                seed: 5,
                scale: WorldScale::Tiny,
                rounds: 600,
                ases,
                blocks,
            },
            script,
            vec![],
        )
        .unwrap()
    }

    fn scan(world: &World, round: Round) -> (fbs_prober::RoundObservations, fbs_prober::ScanStats) {
        let targets = TargetSet::from_blocks(world.blocks().iter().map(|b| b.block).collect());
        let scanner = Scanner::new(ScanConfig {
            rate_pps: 1_000_000,
            ..ScanConfig::default()
        });
        let mut transport = WorldTransport::new(world, round);
        scanner.scan_round(round, &targets, &mut transport)
    }

    #[test]
    fn scanner_observations_match_world_bitmaps() {
        let w = world(Script::new());
        let round = Round(5);
        let (obs, stats) = scan(&w, round);
        assert_eq!(stats.sent, 512);
        assert_eq!(stats.parse_errors, 0);
        assert_eq!(stats.invalid, 0);
        for (i, block_obs) in obs.blocks.iter().enumerate() {
            let truth = w.block_bitmap(round, i);
            assert_eq!(block_obs.responders, truth, "block {i} mismatch");
        }
        assert!(stats.valid > 40, "valid {}", stats.valid);
    }

    #[test]
    fn rtts_reflect_world_latency() {
        let w = world(Script::new());
        let (obs, _) = scan(&w, Round(3));
        for b in &obs.blocks {
            if let Some(mean) = b.rtt.mean_ns() {
                assert!(
                    (40_000_000..50_000_000).contains(&mean),
                    "rtt {mean} outside base+jitter band"
                );
            }
        }
    }

    #[test]
    fn vantage_offline_means_silence() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "vantage".into(),
            target: EventTarget::Country,
            kind: EventKind::VantageOutage,
            start: CAMPAIGN_START,
            end: Some(CAMPAIGN_START.plus_seconds(86_400)),
        });
        let w = world(s);
        let (obs, stats) = scan(&w, Round(2));
        assert_eq!(stats.valid, 0);
        assert_eq!(obs.total_responsive(), 0);
    }

    #[test]
    fn bgp_outage_silences_scan() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "cable".into(),
            target: EventTarget::As(Asn(25482)),
            kind: EventKind::BgpOutage,
            start: CAMPAIGN_START,
            end: Some(CAMPAIGN_START.plus_seconds(10 * 86_400)),
        });
        let w = world(s);
        let (obs, _) = scan(&w, Round(5));
        assert_eq!(obs.total_responsive(), 0);
        // After restoration the scan sees hosts again.
        let (obs, _) = scan(&w, Round(125));
        assert!(obs.total_responsive() > 0);
    }

    #[test]
    fn stray_probe_outside_world_unanswered() {
        let w = world(Script::new());
        let targets = TargetSet::from_blocks(vec![fbs_types::BlockId::from_octets(9, 9, 9)]);
        let scanner = Scanner::new(ScanConfig {
            rate_pps: 1_000_000,
            ..ScanConfig::default()
        });
        let mut transport = WorldTransport::new(&w, Round(0));
        let (obs, stats) = scanner.scan_round(Round(0), &targets, &mut transport);
        assert_eq!(obs.total_responsive(), 0);
        assert_eq!(stats.valid, 0);
        assert_eq!(transport.unanswered, 256);
    }
}
