//! Deterministic ground-truth world simulator.
//!
//! The paper's raw inputs — three years of wartime ICMP responsiveness,
//! RouteViews dumps, monthly IPinfo databases, RIPE delegation files and
//! Ukrenergo's power-outage calendar — cannot be re-collected. This crate
//! substitutes a *scriptable world*: a population of ASes and /24 blocks
//! with a home oblast, baseline responsiveness, diurnal behaviour and churn
//! trajectories, overlaid with scripted war events (cable cuts, BGP
//! withdrawals, rerouting, floods, seizures, strike campaigns against the
//! power grid) and vantage-point outages.
//!
//! Everything is a pure function of the configuration seed: the same
//! `(seed, round, block)` triple always yields the same truth, so every
//! experiment is exactly reproducible and the world never needs to be
//! stored — it is recomputed on the fly at ~50M block-rounds per second.
//!
//! Two consumption paths exist (see DESIGN.md):
//!
//! * the **wire path** — [`transport::WorldTransport`] answers real ICMP
//!   echo packets from `fbs-prober` according to per-round responder
//!   bitmaps ([`World::block_bitmap`]); used by tests, examples, and the
//!   packet-level benches;
//! * the **oracle path** — [`World::block_truth`] returns the per-round
//!   responsive count and RTT directly; used by the longitudinal campaign
//!   where 13,069 rounds × tens of thousands of blocks would make packet
//!   simulation pointless work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod feedfaults;
pub mod geo;
pub mod ibr;
pub mod power;
pub mod rng;
pub mod script;
pub mod shardfaults;
pub mod spec;
pub mod transport;
pub mod vantage;
pub mod world;

pub use faults::{FaultIntensity, FaultPlan, FaultStats, FaultWindow, FaultyTransport};
pub use feedfaults::{FeedFaultIntensity, FeedFaultPlan, FeedFaultWindow};
pub use ibr::{block_volume, ibr_domain, IbrConfig, IbrDarkWindow};
pub use power::{PowerCalendar, StrikeEvent};
pub use rng::WorldRng;
pub use script::{EventKind, EventTarget, Script, ScriptedEvent};
pub use shardfaults::{shards_domain, ShardFaultKind, ShardFaultPlan, ShardFaultWindow};
pub use spec::{AsProfile, AsSpec, BlockSpec, WorldConfig, WorldScale};
pub use transport::WorldTransport;
pub use vantage::{VantageSpec, VantageTransport};
pub use world::{BlockTruth, World};
