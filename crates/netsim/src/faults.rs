//! Fault injection: a hostile transport decorator and per-window plans.
//!
//! The paper's campaign ran through wartime network conditions — probe and
//! reply loss on the paths out of the vantage point, duplicated and
//! reordered packets on congested links, latency spikes under rerouting,
//! bit corruption, unsolicited/spoofed ICMP traffic, and per-source ICMP
//! rate limiting at target networks. [`WorldTransport`](crate::transport)
//! models none of that: it is a lossless ideal wire. This module supplies
//! the missing hostility:
//!
//! * [`FaultIntensity`] — the per-fault probabilities and magnitudes;
//! * [`FaultWindow`] / [`FaultPlan`] — serde-loadable schedules, so a
//!   scenario can declare *degraded* vantage windows (e.g. "the first two
//!   weeks of March ran at 15% reply loss") rather than only offline ones;
//! * [`FaultyTransport`] — a decorator over any [`Transport`] applying the
//!   faults deterministically, seeded from the world RNG: identical seed,
//!   plan and probe sequence ⇒ bit-identical observations.
//!
//! Determinism comes from the coordinate-addressable [`WorldRng`]: every
//! decision hashes `(round, packet sequence number, fault kind)`, so the
//! decorator holds no mutable RNG state and replaying a round replays its
//! faults exactly.

use crate::rng::WorldRng;
use fbs_prober::packet::{self, IcmpKind};
use fbs_prober::{QualityConfig, Transport};
use fbs_types::{Round, RoundQuality, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BinaryHeap};

/// Salts decorrelating the per-fault decision streams.
mod salt {
    pub const PROBE_LOSS: u64 = 0xFA01;
    pub const REPLY_LOSS: u64 = 0xFA02;
    pub const DUPLICATE: u64 = 0xFA03;
    pub const REORDER: u64 = 0xFA04;
    pub const SPIKE: u64 = 0xFA05;
    pub const CORRUPT: u64 = 0xFA06;
    pub const UNSOLICITED: u64 = 0xFA07;
    pub const THIN: u64 = 0xFA08;
}

/// Per-fault probabilities and magnitudes active during one window.
///
/// All probabilities are per-packet and independent; magnitudes are virtual
/// nanoseconds. The default is the null intensity (no faults), under which
/// [`FaultyTransport`] takes a zero-overhead forwarding path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultIntensity {
    /// Probability an outgoing probe is dropped before the wire.
    pub probe_loss: f64,
    /// Probability an incoming reply is dropped.
    pub reply_loss: f64,
    /// Probability a reply is delivered twice (the copy trails slightly).
    pub duplicate: f64,
    /// Probability a reply is held back by a random extra delay of up to
    /// [`reorder_jitter_ns`](Self::reorder_jitter_ns), reordering it past
    /// its neighbours.
    pub reorder: f64,
    /// Maximum extra delay applied to reordered replies.
    pub reorder_jitter_ns: u64,
    /// Probability a reply suffers a full latency spike of
    /// [`latency_spike_ns`](Self::latency_spike_ns).
    pub latency_spike: f64,
    /// Extra delay of a latency spike.
    pub latency_spike_ns: u64,
    /// Probability a reply is corrupted in flight (bit flip, truncation or
    /// a zero-length mangle, chosen pseudorandomly).
    pub corrupt: f64,
    /// Probability a probe triggers an unsolicited or spoofed reply —
    /// either raw garbage or a well-formed echo reply that fails stateless
    /// validation.
    pub unsolicited: f64,
    /// Per-source (/24) reply budget per round, modelling ICMP rate
    /// limiting at the target network; `0` = unlimited.
    pub icmp_reply_budget: u32,
}

impl Default for FaultIntensity {
    fn default() -> Self {
        FaultIntensity {
            probe_loss: 0.0,
            reply_loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_jitter_ns: 0,
            latency_spike: 0.0,
            latency_spike_ns: 0,
            corrupt: 0.0,
            unsolicited: 0.0,
            icmp_reply_budget: 0,
        }
    }
}

impl FaultIntensity {
    /// Whether every fault is off (the decorator forwards untouched).
    pub fn is_null(&self) -> bool {
        self.probe_loss == 0.0
            && self.reply_loss == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.latency_spike == 0.0
            && self.corrupt == 0.0
            && self.unsolicited == 0.0
            && self.icmp_reply_budget == 0
    }

    /// Validates that every probability lies in `0..=1`.
    pub fn validate(&self) -> fbs_types::Result<()> {
        for (name, p) in [
            ("probe_loss", self.probe_loss),
            ("reply_loss", self.reply_loss),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("latency_spike", self.latency_spike),
            ("corrupt", self.corrupt),
            ("unsolicited", self.unsolicited),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(fbs_types::FbsError::config(format!(
                    "fault probability {name}={p} outside 0..=1"
                )));
            }
        }
        Ok(())
    }

    /// Elementwise worst-case combination of two intensities: probabilities
    /// and delays take the maximum; reply budgets take the tighter
    /// (smaller nonzero) limit.
    pub fn combine(&self, other: &FaultIntensity) -> FaultIntensity {
        FaultIntensity {
            probe_loss: self.probe_loss.max(other.probe_loss),
            reply_loss: self.reply_loss.max(other.reply_loss),
            duplicate: self.duplicate.max(other.duplicate),
            reorder: self.reorder.max(other.reorder),
            reorder_jitter_ns: self.reorder_jitter_ns.max(other.reorder_jitter_ns),
            latency_spike: self.latency_spike.max(other.latency_spike),
            latency_spike_ns: self.latency_spike_ns.max(other.latency_spike_ns),
            corrupt: self.corrupt.max(other.corrupt),
            unsolicited: self.unsolicited.max(other.unsolicited),
            icmp_reply_budget: match (self.icmp_reply_budget, other.icmp_reply_budget) {
                (0, b) => b,
                (a, 0) => a,
                (a, b) => a.min(b),
            },
        }
    }

    /// Probability a single probe→reply attempt survives end to end.
    pub fn attempt_success(&self) -> f64 {
        (1.0 - self.probe_loss) * (1.0 - self.reply_loss) * (1.0 - self.corrupt)
    }

    /// Probability a responsive host yields at least one valid reply when
    /// the scanner probes it `retries + 1` times.
    pub fn delivery_rate(&self, retries: u32) -> f64 {
        1.0 - (1.0 - self.attempt_success()).powi(retries as i32 + 1)
    }

    /// The complement of [`delivery_rate`](Self::delivery_rate): the share
    /// of genuinely responsive hosts this intensity silences.
    pub fn expected_loss(&self, retries: u32) -> f64 {
        1.0 - self.delivery_rate(retries)
    }

    /// Oracle-path analogue of the wire faults: deterministically thins a
    /// block's true responsive count by the delivery rate (binomial, keyed
    /// on `(round, block)`) and applies the ICMP reply budget.
    ///
    /// `rng` must be the caller's fault domain (see
    /// [`FaultyTransport::fault_domain`]) so the wire and oracle paths
    /// draw decorrelated but equally deterministic faults.
    pub fn thin_responsive(
        &self,
        responsive: u32,
        retries: u32,
        rng: &WorldRng,
        round: u64,
        block: u64,
    ) -> u32 {
        if self.is_null() {
            return responsive;
        }
        let mut n = rng.binomial3(
            responsive,
            self.delivery_rate(retries),
            round,
            block,
            salt::THIN,
        );
        if self.icmp_reply_budget > 0 {
            n = n.min(self.icmp_reply_budget);
        }
        n
    }

    /// Oracle-path latency distortion: the extra RTT a block's replies see
    /// this round (a latency spike, when one strikes).
    pub fn extra_rtt_ns(&self, rng: &WorldRng, round: u64, block: u64) -> u64 {
        if self.latency_spike > 0.0 && rng.chance3(self.latency_spike, round, block, salt::SPIKE) {
            self.latency_spike_ns
        } else {
            0
        }
    }
}

/// One scheduled fault window: an intensity active between two timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Human-readable label ("march-shelling-loss").
    pub name: String,
    /// Window start (inclusive).
    pub start: Timestamp,
    /// Window end (exclusive); `None` = until the campaign ends.
    pub end: Option<Timestamp>,
    /// The faults active during the window.
    pub intensity: FaultIntensity,
}

impl FaultWindow {
    /// Builds a window covering a round range (test/scenario convenience).
    pub fn over_rounds(
        name: impl Into<String>,
        rounds: std::ops::Range<u32>,
        intensity: FaultIntensity,
    ) -> Self {
        FaultWindow {
            name: name.into(),
            start: Round(rounds.start).start(),
            end: Some(Round(rounds.end).start()),
            intensity,
        }
    }

    /// The rounds the window covers, clamped to `[0, total)`.
    pub fn round_range(&self, total: u32) -> std::ops::Range<u32> {
        let s = Round::first_at_or_after(self.start).0.min(total);
        let e = match self.end {
            Some(end) => Round::first_at_or_after(end).0.min(total),
            None => total,
        };
        s..e.max(s)
    }

    /// Whether the window covers `round`.
    pub fn covers(&self, round: Round, total: u32) -> bool {
        self.round_range(total).contains(&round.0)
    }
}

/// A serde-loadable schedule of fault intensities over the campaign.
///
/// The `baseline` applies to every round; `windows` layer additional
/// hostility over specific periods. Overlapping windows combine via
/// [`FaultIntensity::combine`] (worst case wins).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultPlan {
    /// Always-on fault intensity.
    pub baseline: FaultIntensity,
    /// Scheduled windows of additional faults.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan applying `intensity` to every round.
    pub fn constant(intensity: FaultIntensity) -> Self {
        FaultPlan {
            baseline: intensity,
            windows: Vec::new(),
        }
    }

    /// Whether the plan injects nothing anywhere.
    pub fn is_null(&self) -> bool {
        self.baseline.is_null() && self.windows.iter().all(|w| w.intensity.is_null())
    }

    /// Validates the baseline and every window.
    pub fn validate(&self) -> fbs_types::Result<()> {
        self.baseline.validate()?;
        for w in &self.windows {
            w.intensity.validate().map_err(|e| {
                fbs_types::FbsError::config(format!("fault window {:?}: {e}", w.name))
            })?;
        }
        Ok(())
    }

    /// The combined intensity active at `round` of a `total`-round campaign.
    pub fn intensity_at(&self, round: Round, total: u32) -> FaultIntensity {
        let mut acc = self.baseline;
        for w in &self.windows {
            if w.covers(round, total) {
                acc = acc.combine(&w.intensity);
            }
        }
        acc
    }

    /// Expected quality verdict for `round` given the scanner's retry
    /// budget — what a well-calibrated prober should conclude from its
    /// `ScanStats` under this plan.
    pub fn quality_at(
        &self,
        round: Round,
        total: u32,
        retries: u32,
        quality: &QualityConfig,
    ) -> RoundQuality {
        let i = self.intensity_at(round, total);
        if i.is_null() {
            return RoundQuality::Ok;
        }
        quality.from_loss(i.expected_loss(retries))
    }
}

/// Counters of what the decorator actually did to the traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Probes dropped before the wire.
    pub probes_dropped: u64,
    /// Replies dropped.
    pub replies_dropped: u64,
    /// Replies suppressed by the per-source ICMP budget.
    pub rate_limited: u64,
    /// Replies delivered twice.
    pub replies_duplicated: u64,
    /// Replies delayed (reordering or latency spike).
    pub replies_delayed: u64,
    /// Replies corrupted in flight.
    pub replies_corrupted: u64,
    /// Unsolicited/spoofed packets injected.
    pub unsolicited_injected: u64,
}

/// Reply scheduled for future delivery (min-heap by arrival time).
#[derive(Debug, PartialEq, Eq)]
struct Pending {
    arrival_ns: u64,
    bytes: Vec<u8>,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.arrival_ns.cmp(&self.arrival_ns) // reversed: min-heap
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic fault-injecting decorator over any [`Transport`].
///
/// Wraps the inner transport for one scan round. Every decision is a pure
/// hash of `(round, packet sequence, fault salt)` under the fault-domain
/// RNG, so two decorators built from the same seed, plan and round apply
/// byte-identical faults to an identical probe stream.
pub struct FaultyTransport<T> {
    inner: T,
    rng: WorldRng,
    intensity: FaultIntensity,
    /// `intensity.is_null()`, frozen at construction: the per-packet fast
    /// path must be one predictable branch, not eight float compares.
    null: bool,
    round: u64,
    /// What the decorator did so far this round.
    pub stats: FaultStats,
    probe_seq: u64,
    reply_seq: u64,
    budgets: BTreeMap<[u8; 3], u32>,
    delayed: BinaryHeap<Pending>,
    scratch: Vec<(u64, Vec<u8>)>,
}

/// Derives the wire-fault RNG domain from a world RNG (or any seed
/// source). This is the *only* place the domain string is drawn: the wire
/// path ([`FaultyTransport`]) and the oracle-path mirror in the pipeline
/// both route through it, so their draws stay the same stream by
/// construction rather than by keeping two literals in sync.
pub fn fault_domain(world_rng: WorldRng) -> WorldRng {
    world_rng.domain("faults")
}

impl<T: Transport> FaultyTransport<T> {
    /// Derives the fault RNG domain from a world RNG (or any seed source).
    pub fn fault_domain(world_rng: WorldRng) -> WorldRng {
        fault_domain(world_rng)
    }

    /// Wraps `inner` for `round` with a fixed intensity.
    ///
    /// `world_rng` is the *world* RNG (e.g. [`crate::World::rng`]); the
    /// fault domain is derived internally so fault draws never correlate
    /// with world truth draws.
    pub fn new(inner: T, world_rng: WorldRng, round: Round, intensity: FaultIntensity) -> Self {
        FaultyTransport {
            inner,
            rng: Self::fault_domain(world_rng),
            null: intensity.is_null(),
            intensity,
            round: round.0 as u64,
            stats: FaultStats::default(),
            probe_seq: 0,
            reply_seq: 0,
            budgets: BTreeMap::new(),
            delayed: BinaryHeap::new(),
            scratch: Vec::new(),
        }
    }

    /// Wraps `inner` for `round` with the intensity a plan schedules there.
    pub fn for_round(
        inner: T,
        world_rng: WorldRng,
        plan: &FaultPlan,
        round: Round,
        total_rounds: u32,
    ) -> Self {
        let intensity = plan.intensity_at(round, total_rounds);
        Self::new(inner, world_rng, round, intensity)
    }

    /// The active intensity.
    pub fn intensity(&self) -> &FaultIntensity {
        &self.intensity
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Crafts a deterministic unsolicited packet for probe `seq`: odd
    /// hashes produce raw garbage, even ones a spoofed echo reply from the
    /// probed address that fails stateless validation.
    fn unsolicited_packet(&self, probe_bytes: &[u8], seq: u64) -> Vec<u8> {
        let h = self.rng.hash3(self.round, seq, salt::UNSOLICITED ^ 0xBEEF);
        if h & 1 == 1 || packet::parse(probe_bytes).is_err() {
            // Raw garbage: 8–59 bytes of hash output.
            let len = 8 + (h >> 8) as usize % 52;
            (0..len)
                .map(|i| (self.rng.hash3(self.round, seq, i as u64) & 0xff) as u8)
                .collect()
        } else {
            // A well-formed spoofed reply with a bogus ident/seq pair: it
            // parses cleanly but must fail the keyed validation.
            let probe = packet::parse(probe_bytes).expect("checked above");
            packet::encode(
                probe.dst,
                probe.src,
                55,
                IcmpKind::EchoReply,
                (h >> 16) as u16,
                (h >> 32) as u16,
                probe.timestamp_ns,
            )
        }
    }

    /// Applies reply-side faults to one packet; pushes delayed/duplicate
    /// copies onto the heap and returns the packet if it passes through
    /// undelayed.
    fn filter_reply(&mut self, arrival_ns: u64, mut bytes: Vec<u8>) -> Option<(u64, Vec<u8>)> {
        self.reply_seq += 1;
        let seq = self.reply_seq;
        let i = self.intensity;

        // Per-source (/24) ICMP rate limiting: the replying network stops
        // answering after its budget, before any path effects apply.
        if i.icmp_reply_budget > 0 && bytes.len() >= 16 {
            let key = [bytes[12], bytes[13], bytes[14]];
            let used = self.budgets.entry(key).or_insert(0);
            *used += 1;
            if *used > i.icmp_reply_budget {
                self.stats.rate_limited += 1;
                return None;
            }
        }
        if i.reply_loss > 0.0
            && self
                .rng
                .chance3(i.reply_loss, self.round, seq, salt::REPLY_LOSS)
        {
            self.stats.replies_dropped += 1;
            return None;
        }
        if i.corrupt > 0.0
            && !bytes.is_empty()
            && self.rng.chance3(i.corrupt, self.round, seq, salt::CORRUPT)
        {
            match self.rng.below3(3, self.round, seq, salt::CORRUPT ^ 0xC0) {
                0 => {
                    let pos =
                        self.rng
                            .below3(bytes.len() as u64, self.round, seq, salt::CORRUPT ^ 0xC1)
                            as usize;
                    bytes[pos] ^= 0xff;
                }
                1 => bytes.truncate(bytes.len() / 2),
                _ => bytes.clear(),
            }
            self.stats.replies_corrupted += 1;
        }
        if i.duplicate > 0.0
            && self
                .rng
                .chance3(i.duplicate, self.round, seq, salt::DUPLICATE)
        {
            self.delayed.push(Pending {
                arrival_ns: arrival_ns + 1, // the copy trails by 1 ns
                bytes: bytes.clone(),
            });
            self.stats.replies_duplicated += 1;
        }
        if i.latency_spike > 0.0
            && self
                .rng
                .chance3(i.latency_spike, self.round, seq, salt::SPIKE)
        {
            self.stats.replies_delayed += 1;
            self.delayed.push(Pending {
                arrival_ns: arrival_ns + i.latency_spike_ns,
                bytes,
            });
            return None;
        }
        if i.reorder > 0.0 && self.rng.chance3(i.reorder, self.round, seq, salt::REORDER) {
            let jitter = if i.reorder_jitter_ns > 0 {
                self.rng
                    .below3(i.reorder_jitter_ns, self.round, seq, salt::REORDER ^ 0xD0)
            } else {
                0
            };
            self.stats.replies_delayed += 1;
            self.delayed.push(Pending {
                arrival_ns: arrival_ns + 1 + jitter,
                bytes,
            });
            return None;
        }
        Some((arrival_ns, bytes))
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, bytes: &[u8], now_ns: u64) {
        if self.null {
            return self.inner.send(bytes, now_ns); // zero-overhead fast path
        }
        self.probe_seq += 1;
        let seq = self.probe_seq;
        if self.intensity.unsolicited > 0.0
            && self.rng.chance3(
                self.intensity.unsolicited,
                self.round,
                seq,
                salt::UNSOLICITED,
            )
        {
            let junk = self.unsolicited_packet(bytes, seq);
            self.stats.unsolicited_injected += 1;
            self.delayed.push(Pending {
                arrival_ns: now_ns + 1_000_000, // arrives ~1 ms later
                bytes: junk,
            });
        }
        if self.intensity.probe_loss > 0.0
            && self
                .rng
                .chance3(self.intensity.probe_loss, self.round, seq, salt::PROBE_LOSS)
        {
            self.stats.probes_dropped += 1;
            return;
        }
        self.inner.send(bytes, now_ns);
    }

    fn recv(&mut self, now_ns: u64, out: &mut Vec<(u64, Vec<u8>)>) {
        if self.null && self.delayed.is_empty() {
            return self.inner.recv(now_ns, out); // zero-overhead fast path
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.inner.recv(now_ns, &mut scratch);
        for (arrival_ns, bytes) in scratch.drain(..) {
            if let Some(delivered) = self.filter_reply(arrival_ns, bytes) {
                out.push(delivered);
            }
        }
        self.scratch = scratch;
        while let Some(head) = self.delayed.peek() {
            if head.arrival_ns > now_ns {
                break;
            }
            let p = self.delayed.pop().expect("peeked element exists");
            out.push((p.arrival_ns, p.bytes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_prober::scan::loopback::LoopbackTransport;
    use fbs_prober::{ScanConfig, Scanner, TargetSet};
    use fbs_types::Prefix;
    use std::net::Ipv4Addr;

    fn targets() -> TargetSet {
        TargetSet::from_prefixes(&["10.1.0.0/23".parse::<Prefix>().unwrap()])
    }

    fn loopback(hosts: u8) -> LoopbackTransport {
        let mut lo = LoopbackTransport::new();
        for h in 1..=hosts {
            lo.add_host(Ipv4Addr::new(10, 1, 0, h), 25_000_000);
            lo.add_host(Ipv4Addr::new(10, 1, 1, h), 25_000_000);
        }
        lo
    }

    fn scanner(retries: u32) -> Scanner {
        Scanner::new(ScanConfig {
            rate_pps: 1_000_000,
            retries,
            ..ScanConfig::default()
        })
    }

    fn scan_with(
        intensity: FaultIntensity,
        retries: u32,
        seed: u64,
    ) -> (
        fbs_prober::RoundObservations,
        fbs_prober::ScanStats,
        FaultStats,
    ) {
        let mut t = FaultyTransport::new(loopback(40), WorldRng::new(seed), Round(3), intensity);
        let (obs, stats) = scanner(retries).scan_round(Round(3), &targets(), &mut t);
        (obs, stats, t.stats)
    }

    #[test]
    fn null_intensity_is_transparent() {
        let (clean_obs, clean_stats) = {
            let mut lo = loopback(40);
            scanner(0).scan_round(Round(3), &targets(), &mut lo)
        };
        let (obs, stats, fstats) = scan_with(FaultIntensity::default(), 0, 11);
        assert_eq!(obs, clean_obs, "null faults must not change observations");
        assert_eq!(stats, clean_stats);
        assert_eq!(fstats, FaultStats::default());
    }

    #[test]
    fn reply_loss_silences_some_responders_and_retries_recover() {
        let intensity = FaultIntensity {
            reply_loss: 0.4,
            ..FaultIntensity::default()
        };
        let (obs0, stats0, f0) = scan_with(intensity, 0, 11);
        assert!(f0.replies_dropped > 0);
        assert!(
            obs0.total_responsive() < 80,
            "40% loss must silence someone out of 80"
        );
        assert!(stats0.is_conserved(), "{stats0:?}");
        let (obs2, stats2, _) = scan_with(intensity, 2, 11);
        assert!(
            obs2.total_responsive() > obs0.total_responsive(),
            "retries must recover responders: {} vs {}",
            obs2.total_responsive(),
            obs0.total_responsive()
        );
        assert!(stats2.is_conserved(), "{stats2:?}");
    }

    #[test]
    fn corruption_and_unsolicited_are_rejected_not_recorded() {
        let intensity = FaultIntensity {
            corrupt: 0.5,
            unsolicited: 0.3,
            ..FaultIntensity::default()
        };
        let (obs, stats, fstats) = scan_with(intensity, 0, 7);
        assert!(fstats.replies_corrupted > 0);
        assert!(fstats.unsolicited_injected > 0);
        assert!(
            stats.parse_errors > 0,
            "corruption must surface as parse errors"
        );
        assert!(
            stats.invalid > 0,
            "spoofed replies must surface as validation failures"
        );
        assert!(stats.is_conserved(), "{stats:?}");
        // Whatever was observed is a subset of the truth: corrupted or
        // spoofed packets never mark an address responsive.
        let clean = {
            let mut lo = loopback(40);
            scanner(0).scan_round(Round(3), &targets(), &mut lo).0
        };
        for (noisy, truth) in obs.blocks.iter().zip(clean.blocks.iter()) {
            let inter = noisy.responders.intersection(&truth.responders);
            assert_eq!(inter, noisy.responders, "phantom responder appeared");
        }
    }

    #[test]
    fn duplication_and_reordering_leave_aggregates_clean() {
        let intensity = FaultIntensity {
            duplicate: 0.5,
            reorder: 0.5,
            reorder_jitter_ns: 2_000_000,
            ..FaultIntensity::default()
        };
        let (obs, stats, fstats) = scan_with(intensity, 0, 13);
        assert!(fstats.replies_duplicated > 0);
        assert!(fstats.replies_delayed > 0);
        assert!(stats.duplicates > 0, "duplicates must be counted");
        assert!(stats.is_conserved(), "{stats:?}");
        // Every responder still counted exactly once; RTT aggregates hold
        // one sample per unique responder.
        assert_eq!(obs.total_responsive(), 80);
        let samples: u64 = obs.blocks.iter().map(|b| b.rtt.count).sum();
        assert_eq!(samples, 80);
    }

    #[test]
    fn icmp_budget_caps_per_block_replies() {
        let intensity = FaultIntensity {
            icmp_reply_budget: 10,
            ..FaultIntensity::default()
        };
        let (obs, stats, fstats) = scan_with(intensity, 0, 17);
        assert!(fstats.rate_limited > 0);
        for b in &obs.blocks {
            assert!(
                b.responders.count() <= 10,
                "budget exceeded: {}",
                b.responders.count()
            );
        }
        assert!(stats.is_conserved(), "{stats:?}");
    }

    #[test]
    fn identical_seeds_give_bit_identical_observations() {
        let intensity = FaultIntensity {
            probe_loss: 0.1,
            reply_loss: 0.15,
            duplicate: 0.2,
            reorder: 0.2,
            reorder_jitter_ns: 3_000_000,
            latency_spike: 0.05,
            latency_spike_ns: 400_000_000,
            corrupt: 0.1,
            unsolicited: 0.1,
            icmp_reply_budget: 25,
        };
        let (obs_a, stats_a, fstats_a) = scan_with(intensity, 1, 99);
        let (obs_b, stats_b, fstats_b) = scan_with(intensity, 1, 99);
        assert_eq!(obs_a, obs_b, "same seed+plan must replay identically");
        assert_eq!(stats_a, stats_b);
        assert_eq!(fstats_a, fstats_b);
        // A different seed perturbs the observations.
        let (obs_c, _, _) = scan_with(intensity, 1, 100);
        assert_ne!(obs_a, obs_c, "different seed must draw different faults");
    }

    #[test]
    fn plan_windows_schedule_intensity() {
        let calm = FaultIntensity::default();
        let rough = FaultIntensity {
            reply_loss: 0.3,
            ..calm
        };
        let worse = FaultIntensity {
            reply_loss: 0.1,
            corrupt: 0.2,
            icmp_reply_budget: 50,
            ..calm
        };
        let plan = FaultPlan {
            baseline: calm,
            windows: vec![
                FaultWindow::over_rounds("rough", 10..20, rough),
                FaultWindow::over_rounds("worse", 15..30, worse),
            ],
        };
        assert!(plan.validate().is_ok());
        assert!(!plan.is_null());
        assert!(plan.intensity_at(Round(5), 100).is_null());
        assert_eq!(plan.intensity_at(Round(12), 100).reply_loss, 0.3);
        // Overlap takes the worst case of both windows.
        let both = plan.intensity_at(Round(17), 100);
        assert_eq!(both.reply_loss, 0.3);
        assert_eq!(both.corrupt, 0.2);
        assert_eq!(both.icmp_reply_budget, 50);
        assert_eq!(plan.intensity_at(Round(25), 100).reply_loss, 0.1);
        assert!(plan.intensity_at(Round(40), 100).is_null());
    }

    #[test]
    fn plan_quality_hints_track_loss() {
        let q = fbs_prober::QualityConfig::default();
        let plan = FaultPlan::constant(FaultIntensity {
            reply_loss: 0.2,
            ..FaultIntensity::default()
        });
        assert_eq!(
            plan.quality_at(Round(0), 100, 0, &q),
            RoundQuality::Degraded
        );
        // Two retries push the compound delivery rate back above the bar.
        assert_eq!(plan.quality_at(Round(0), 100, 2, &q), RoundQuality::Ok);
        let brutal = FaultPlan::constant(FaultIntensity {
            reply_loss: 0.9,
            ..FaultIntensity::default()
        });
        assert_eq!(
            brutal.quality_at(Round(0), 100, 0, &q),
            RoundQuality::Unusable
        );
        assert_eq!(
            FaultPlan::none().quality_at(Round(0), 100, 0, &q),
            RoundQuality::Ok
        );
    }

    #[test]
    fn combine_and_validate_edges() {
        let a = FaultIntensity {
            probe_loss: 0.1,
            icmp_reply_budget: 0,
            ..FaultIntensity::default()
        };
        let b = FaultIntensity {
            probe_loss: 0.05,
            icmp_reply_budget: 30,
            ..FaultIntensity::default()
        };
        let c = a.combine(&b);
        assert_eq!(c.probe_loss, 0.1);
        assert_eq!(c.icmp_reply_budget, 30, "zero budget means unlimited");
        let bad = FaultIntensity {
            reply_loss: 1.5,
            ..FaultIntensity::default()
        };
        assert!(bad.validate().is_err());
        assert!(FaultIntensity::default().validate().is_ok());
        assert!(FaultIntensity::default().is_null());
        // Compound loss math: one attempt at 20% loss, three attempts
        // shrink the miss probability cubically.
        let l = FaultIntensity {
            reply_loss: 0.2,
            ..FaultIntensity::default()
        };
        assert!((l.expected_loss(0) - 0.2).abs() < 1e-12);
        assert!((l.expected_loss(2) - 0.008).abs() < 1e-12);
    }
}
