//! Shard-level fault injection for the supervised parallel executor.
//!
//! [`faults`](crate::faults) injects hostility into the *measured network*;
//! this module injects hostility into the *measurement machinery itself*.
//! The shard supervisor in `fbs-core` splits each round's per-block work
//! into deterministic shards and must survive a worker that crashes, wedges
//! past its deadline, or merely runs slow. Those failure modes cannot be
//! provoked on demand from real hardware, so the chaos matrix scripts them:
//!
//! * [`ShardFaultKind::Panic`] — the shard task panics outright and the
//!   supervisor must contain it with `catch_unwind`;
//! * [`ShardFaultKind::Stall`] — the shard's virtual execution cost is
//!   inflated past its deadline budget, tripping the watchdog;
//! * [`ShardFaultKind::Jitter`] — the shard runs slow but finishes inside
//!   its budget: no supervision action, just schedule skew, which the
//!   deterministic merge must absorb without changing a single byte.
//!
//! Determinism follows the same contract as every other noise source: each
//! trigger decision is a pure hash of `(round, shard, attempt)` under the
//! dedicated `"shards"` world-RNG domain (see [`shards_domain`]), so a
//! retried shard re-draws its fault exactly and a killed-and-resumed
//! campaign replays the same panics in the same places.

use crate::rng::WorldRng;
use fbs_types::Round;
use serde::{Deserialize, Serialize};

/// Salts decorrelating the shard-fault decision streams.
mod salt {
    pub const TRIGGER: u64 = 0x5A4D01;
}

/// What an injected shard fault does to the shard's attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardFaultKind {
    /// The shard task panics mid-flight; the supervisor must isolate the
    /// unwind and schedule a retry.
    Panic,
    /// The shard wedges: its virtual execution cost is inflated by
    /// `extra_ns`, pushing it past the per-shard deadline so the watchdog
    /// declares a timeout.
    Stall {
        /// Virtual nanoseconds added to the shard's execution cost.
        extra_ns: u64,
    },
    /// The shard runs slow but completes: `extra_ns` is added to its
    /// virtual cost without (by construction of the test plan) crossing
    /// the deadline. Exercises merge determinism under schedule skew.
    Jitter {
        /// Virtual nanoseconds added to the shard's execution cost.
        extra_ns: u64,
    },
}

/// One scripted shard-fault window: a fault striking specific shards over
/// a round range, for a bounded number of attempts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardFaultWindow {
    /// Human-readable label ("round-90-panic").
    pub name: String,
    /// First round the window covers (inclusive).
    pub start_round: u32,
    /// First round past the window (exclusive).
    pub end_round: u32,
    /// Shard slots the fault strikes; empty = every shard.
    #[serde(default)]
    pub shards: Vec<u32>,
    /// How many attempts the fault strikes before letting the shard run:
    /// `1` fails only the first try (a retry then succeeds), a value
    /// larger than the supervisor's retry budget exhausts it and loses
    /// the shard.
    #[serde(default = "one_attempt")]
    pub attempts: u32,
    /// Probability the fault strikes a covered `(round, shard, attempt)`
    /// coordinate, drawn from the `"shards"` RNG domain.
    #[serde(default = "always")]
    pub probability: f64,
    /// The fault injected while the window is striking.
    pub kind: ShardFaultKind,
}

fn one_attempt() -> u32 {
    1
}

fn always() -> f64 {
    1.0
}

impl ShardFaultWindow {
    /// Builds a deterministic always-striking window over a round range
    /// and shard set (test/scenario convenience).
    pub fn scripted(
        name: impl Into<String>,
        rounds: std::ops::Range<u32>,
        shards: Vec<u32>,
        attempts: u32,
        kind: ShardFaultKind,
    ) -> Self {
        ShardFaultWindow {
            name: name.into(),
            start_round: rounds.start,
            end_round: rounds.end,
            shards,
            attempts,
            probability: 1.0,
            kind,
        }
    }

    /// The rounds the window covers (half-open).
    pub fn rounds(&self) -> std::ops::Range<u32> {
        self.start_round..self.end_round
    }

    /// Whether the window covers `(round, shard, attempt)` before the
    /// probabilistic draw.
    fn covers(&self, round: Round, shard: u32, attempt: u32) -> bool {
        self.rounds().contains(&round.0)
            && attempt < self.attempts
            && (self.shards.is_empty() || self.shards.contains(&shard))
    }
}

/// A serde-loadable schedule of shard faults over the campaign.
///
/// The first window covering a `(round, shard, attempt)` coordinate wins,
/// so a plan can layer a broad low-probability jitter window under a
/// pinpoint scripted panic without the two compounding.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ShardFaultPlan {
    /// Scheduled fault windows, earliest-listed wins on overlap.
    pub windows: Vec<ShardFaultWindow>,
}

impl ShardFaultPlan {
    /// A plan injecting nothing anywhere.
    pub fn none() -> Self {
        ShardFaultPlan::default()
    }

    /// Whether the plan injects nothing anywhere.
    pub fn is_null(&self) -> bool {
        self.windows.is_empty()
    }

    /// Validates every window: probabilities in `0..=1`, at least one
    /// striking attempt, a non-empty round range.
    pub fn validate(&self) -> fbs_types::Result<()> {
        for w in &self.windows {
            if !(0.0..=1.0).contains(&w.probability) || !w.probability.is_finite() {
                return Err(fbs_types::FbsError::config(format!(
                    "shard fault window {:?}: probability {} outside 0..=1",
                    w.name, w.probability
                )));
            }
            if w.attempts == 0 {
                return Err(fbs_types::FbsError::config(format!(
                    "shard fault window {:?}: attempts=0 never strikes",
                    w.name
                )));
            }
            if w.rounds().is_empty() {
                return Err(fbs_types::FbsError::config(format!(
                    "shard fault window {:?}: empty round range {}..{}",
                    w.name, w.start_round, w.end_round
                )));
            }
        }
        Ok(())
    }

    /// The fault striking `(round, shard, attempt)`, if any.
    ///
    /// `rng` must be the `"shards"` domain (see [`shards_domain`]): the
    /// draw is a pure hash of the coordinate, so a retried shard and a
    /// resumed campaign re-derive the identical verdict.
    pub fn fault_at(
        &self,
        rng: &WorldRng,
        round: Round,
        shard: u32,
        attempt: u32,
    ) -> Option<ShardFaultKind> {
        for w in &self.windows {
            if !w.covers(round, shard, attempt) {
                continue;
            }
            if w.probability >= 1.0
                || rng.chance3(
                    w.probability,
                    round.0 as u64,
                    shard as u64,
                    salt::TRIGGER.wrapping_add(attempt as u64),
                )
            {
                return Some(w.kind);
            }
        }
        None
    }
}

/// Derives the shard-fault RNG domain from a world RNG. This is the *only*
/// place the `"shards"` domain string is drawn: the supervisor in
/// `fbs-core` and any test double route through it, so injected shard
/// faults stay decorrelated from wire faults, vantage faults and world
/// truth by construction.
pub fn shards_domain(world_rng: WorldRng) -> WorldRng {
    world_rng.domain("shards")
}

/// The panic a scripted [`ShardFaultKind::Panic`] raises inside the shard
/// task. Lives here (not in `fbs-core`) because the pipeline crates forbid
/// panics in library code; the netsim fault layer is the one place allowed
/// to blow up on purpose, and the supervisor must catch it.
pub fn injected_panic(window: &str, round: Round, shard: u32, attempt: u32) -> ! {
    panic!(
        "injected shard fault {window:?}: panic in shard {shard} attempt {attempt} of round {}",
        round.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::fault_domain;

    fn panic_plan() -> ShardFaultPlan {
        ShardFaultPlan {
            windows: vec![ShardFaultWindow::scripted(
                "w",
                10..20,
                vec![2],
                1,
                ShardFaultKind::Panic,
            )],
        }
    }

    #[test]
    fn scripted_window_strikes_exact_coordinates_only() {
        let rng = shards_domain(WorldRng::new(42));
        let plan = panic_plan();
        assert_eq!(
            plan.fault_at(&rng, Round(10), 2, 0),
            Some(ShardFaultKind::Panic)
        );
        assert_eq!(
            plan.fault_at(&rng, Round(19), 2, 0),
            Some(ShardFaultKind::Panic)
        );
        // Outside the round range, the wrong shard, or a later attempt:
        // nothing strikes.
        assert_eq!(plan.fault_at(&rng, Round(9), 2, 0), None);
        assert_eq!(plan.fault_at(&rng, Round(20), 2, 0), None);
        assert_eq!(plan.fault_at(&rng, Round(10), 1, 0), None);
        assert_eq!(plan.fault_at(&rng, Round(10), 2, 1), None, "retry is clean");
    }

    #[test]
    fn empty_shard_list_strikes_every_shard() {
        let rng = shards_domain(WorldRng::new(42));
        let plan = ShardFaultPlan {
            windows: vec![ShardFaultWindow::scripted(
                "all",
                5..6,
                Vec::new(),
                3,
                ShardFaultKind::Stall { extra_ns: 1 },
            )],
        };
        for shard in 0..8 {
            for attempt in 0..3 {
                assert!(plan.fault_at(&rng, Round(5), shard, attempt).is_some());
            }
            assert!(plan.fault_at(&rng, Round(5), shard, 3).is_none());
        }
    }

    #[test]
    fn first_matching_window_wins_on_overlap() {
        let rng = shards_domain(WorldRng::new(42));
        let plan = ShardFaultPlan {
            windows: vec![
                ShardFaultWindow::scripted("pin", 10..11, vec![0], 1, ShardFaultKind::Panic),
                ShardFaultWindow::scripted(
                    "broad",
                    0..100,
                    Vec::new(),
                    1,
                    ShardFaultKind::Jitter { extra_ns: 7 },
                ),
            ],
        };
        assert_eq!(
            plan.fault_at(&rng, Round(10), 0, 0),
            Some(ShardFaultKind::Panic),
            "the pinpoint window shadows the broad one"
        );
        assert_eq!(
            plan.fault_at(&rng, Round(10), 1, 0),
            Some(ShardFaultKind::Jitter { extra_ns: 7 })
        );
    }

    #[test]
    fn probabilistic_draws_are_deterministic_and_seed_sensitive() {
        let plan = ShardFaultPlan {
            windows: vec![ShardFaultWindow {
                name: "coin".into(),
                start_round: 0,
                end_round: 1000,
                shards: Vec::new(),
                attempts: 1,
                probability: 0.5,
                kind: ShardFaultKind::Panic,
            }],
        };
        let a = shards_domain(WorldRng::new(42));
        let b = shards_domain(WorldRng::new(42));
        let c = shards_domain(WorldRng::new(43));
        let draws = |rng: &WorldRng| -> Vec<bool> {
            (0..1000)
                .map(|r| plan.fault_at(rng, Round(r), 0, 0).is_some())
                .collect()
        };
        assert_eq!(draws(&a), draws(&b), "same seed must replay identically");
        assert_ne!(draws(&a), draws(&c), "different seed must differ");
        let hits = draws(&a).iter().filter(|h| **h).count();
        assert!((300..700).contains(&hits), "p=0.5 badly skewed: {hits}");
    }

    #[test]
    fn shards_domain_is_disjoint_from_the_wire_fault_domain() {
        let world = WorldRng::new(42);
        let shards = shards_domain(world);
        let wire = fault_domain(world);
        let stream = |rng: &WorldRng| -> Vec<u64> { (0..64).map(|i| rng.hash3(i, 1, 2)).collect() };
        assert_ne!(
            stream(&shards),
            stream(&wire),
            "shard faults must not correlate with wire faults"
        );
    }

    #[test]
    fn validate_rejects_bad_windows() {
        let mut plan = panic_plan();
        assert!(plan.validate().is_ok());
        plan.windows[0].probability = 1.5;
        assert!(plan.validate().is_err());
        plan.windows[0].probability = 1.0;
        plan.windows[0].attempts = 0;
        assert!(plan.validate().is_err());
        plan.windows[0].attempts = 1;
        plan.windows[0].start_round = 10;
        plan.windows[0].end_round = 10;
        assert!(plan.validate().is_err());
        assert!(ShardFaultPlan::none().validate().is_ok());
        assert!(ShardFaultPlan::none().is_null());
    }
}
