//! Deterministic, coordinate-addressable randomness.
//!
//! The world never draws from a stateful generator during simulation:
//! every random decision is a hash of `(seed, coordinates…)`, so truth
//! queries are order-independent — `block_truth(round, block)` returns the
//! same value whether the caller sweeps rounds first or blocks first, from
//! one thread or many. The mixer is SplitMix64's finalizer, which passes
//! PractRand at this use level and costs ~3 ns.

/// Coordinate-addressable random source.
#[derive(Debug, Clone, Copy)]
pub struct WorldRng {
    seed: u64,
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl WorldRng {
    /// Creates a source from the world seed.
    pub fn new(seed: u64) -> Self {
        WorldRng {
            seed: mix(seed ^ GOLDEN),
        }
    }

    /// A derived source for a named domain (e.g. "power", "geo"), so the
    /// same coordinates in different domains decorrelate.
    pub fn domain(&self, name: &str) -> WorldRng {
        let mut h = self.seed;
        for b in name.bytes() {
            h = mix(h ^ (b as u64).wrapping_mul(GOLDEN));
        }
        WorldRng { seed: h }
    }

    /// Raw 64-bit hash of up to three coordinates.
    #[inline]
    pub fn hash3(&self, a: u64, b: u64, c: u64) -> u64 {
        mix(self
            .seed
            .wrapping_add(a.wrapping_mul(GOLDEN))
            .wrapping_add(b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
            .wrapping_add(c.wrapping_mul(0x1656_67b1_9e37_79f9)))
    }

    /// Uniform `f64` in `[0, 1)` from three coordinates.
    #[inline]
    pub fn uniform3(&self, a: u64, b: u64, c: u64) -> f64 {
        (self.hash3(a, b, c) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` at the given coordinates.
    #[inline]
    pub fn chance3(&self, p: f64, a: u64, b: u64, c: u64) -> bool {
        self.uniform3(a, b, c) < p
    }

    /// Uniform integer in `[0, n)` (n ≥ 1) at the given coordinates.
    #[inline]
    pub fn below3(&self, n: u64, a: u64, b: u64, c: u64) -> u64 {
        debug_assert!(n >= 1);
        // Multiplicative range reduction; bias is < 2^-53 for our n ≤ 2^20.
        (self.uniform3(a, b, c) * n as f64) as u64
    }

    /// Standard-normal draw at the given coordinates (Box–Muller).
    #[inline]
    pub fn normal3(&self, a: u64, b: u64, c: u64) -> f64 {
        let u1 = self.uniform3(a, b, c.wrapping_mul(2)).max(1e-12);
        let u2 = self.uniform3(a, b, c.wrapping_mul(2) + 1);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Deterministic Binomial(n, p) sample at the given coordinates.
    ///
    /// Exact summation for small `n` (≤ 16); normal approximation with
    /// continuity clamp beyond — responder counts per block are ≤ 256 and
    /// the approximation error is far below the signal thresholds.
    pub fn binomial3(&self, n: u32, p: f64, a: u64, b: u64, c: u64) -> u32 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        if n <= 16 {
            let mut count = 0;
            for i in 0..n {
                if self.chance3(p, a, b, c.wrapping_mul(1_000_003).wrapping_add(i as u64)) {
                    count += 1;
                }
            }
            return count;
        }
        let z = self.normal3(a, b, c);
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        (mean + z * sd).round().clamp(0.0, n as f64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_independent() {
        let rng = WorldRng::new(42);
        let a = rng.hash3(1, 2, 3);
        let b = rng.hash3(9, 9, 9);
        assert_eq!(rng.hash3(1, 2, 3), a);
        assert_eq!(rng.hash3(9, 9, 9), b);
        assert_ne!(a, b);
        // A different seed decorrelates.
        assert_ne!(WorldRng::new(43).hash3(1, 2, 3), a);
    }

    #[test]
    fn domains_decorrelate() {
        let rng = WorldRng::new(7);
        let p = rng.domain("power").hash3(0, 0, 0);
        let g = rng.domain("geo").hash3(0, 0, 0);
        assert_ne!(p, g);
        // Same domain name, same stream.
        assert_eq!(rng.domain("power").hash3(0, 0, 0), p);
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let rng = WorldRng::new(1);
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let u = rng.uniform3(i, 0, 0);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let rng = WorldRng::new(2);
        let hits = (0..10_000).filter(|&i| rng.chance3(0.3, i, 1, 2)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let rng = WorldRng::new(3);
        let mut seen = [false; 10];
        for i in 0..1000 {
            let v = rng.below3(10, i, 0, 0) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn binomial_small_n_exact_mean() {
        let rng = WorldRng::new(4);
        let n_trials = 2000;
        let total: u64 = (0..n_trials)
            .map(|i| rng.binomial3(14, 0.85, i, 7, 7) as u64)
            .sum();
        let mean = total as f64 / n_trials as f64;
        assert!((mean - 11.9).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn binomial_large_n_approximation_reasonable() {
        let rng = WorldRng::new(5);
        let n_trials = 2000;
        let total: u64 = (0..n_trials)
            .map(|i| rng.binomial3(200, 0.5, i, 0, 0) as u64)
            .sum();
        let mean = total as f64 / n_trials as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
        // Every draw in bounds.
        for i in 0..200 {
            let v = rng.binomial3(200, 0.5, i, 1, 1);
            assert!(v <= 200);
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let rng = WorldRng::new(6);
        assert_eq!(rng.binomial3(0, 0.5, 1, 2, 3), 0);
        assert_eq!(rng.binomial3(10, 0.0, 1, 2, 3), 0);
        assert_eq!(rng.binomial3(10, 1.0, 1, 2, 3), 10);
        assert_eq!(rng.binomial3(10, -0.5, 1, 2, 3), 0);
        assert_eq!(rng.binomial3(10, 1.5, 1, 2, 3), 10);
    }
}
