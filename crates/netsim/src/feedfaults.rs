//! Feed-fault injection: hostile deliveries for the metadata feeds.
//!
//! The campaign's three external feeds — RouteViews RIB dumps, monthly
//! geolocation snapshots and RIR delegation files — failed in practice in
//! ways the wire faults of [`crate::faults`] never model: mirrors went
//! dark for days, transfers truncated mid-file, archives delivered
//! corrupted lines, and monthly snapshots arrived late or not at all.
//! This module supplies that hostility for the simulator:
//!
//! * [`FeedFaultIntensity`] — per-feed fault probabilities;
//! * [`FeedFaultWindow`] / [`FeedFaultPlan`] — serde-loadable schedules
//!   ("the BGP mirror is dark over rounds 200..260");
//! * [`deliver`] — the deterministic delivery function: given the pristine
//!   feed text for a round, returns what the fetch attempt actually sees
//!   (`None` = the attempt failed outright);
//! * pristine-text generators ([`bgp_dump_text`], [`geo_feed_text`],
//!   [`delegations_feed_text`]) deriving each feed's canonical serialized
//!   form from world truth.
//!
//! Determinism follows the same discipline as the wire faults: every
//! decision is a pure hash of `(round, line, fault salt)` under the world
//! RNG's `"feeds"` domain (further split per feed kind), so identical
//! seed + plan ⇒ byte-identical deliveries, independent of call order.
//!
//! Corruption is applied **per line and never adds or removes newlines**,
//! so line numbers in a lossy parse's quarantine map one-to-one onto the
//! pristine text — the pipeline uses that to know *which* records a
//! partially-accepted dump lost. Truncation only removes a suffix (and
//! half of the new last line), which preserves the numbering of every
//! surviving line.

use crate::geo;
use crate::rng::WorldRng;
use crate::world::World;
use fbs_delegations::{DelegationFile, DelegationRecord, DelegationStatus};
use fbs_types::{CivilDate, FeedKind, MonthId, Round};
use serde::{Deserialize, Serialize};

/// Salts decorrelating the per-fault decision streams (feeds use the
/// `0xFBxx` range; wire faults own `0xFAxx`).
mod salt {
    pub const DROP: u64 = 0xFB01;
    pub const CORRUPT: u64 = 0xFB02;
    pub const MANGLE: u64 = 0xFB03;
    pub const TRUNCATE: u64 = 0xFB04;
}

/// Per-feed fault probabilities active during one window.
///
/// The default is the null intensity, under which [`deliver`] forwards
/// the pristine text untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FeedFaultIntensity {
    /// Probability the whole delivery is dropped for the round: every
    /// fetch attempt fails (mirror dark, archive missing the file).
    pub drop: f64,
    /// Per-line probability a record is corrupted in the delivered text.
    pub corrupt_records: f64,
    /// Probability the delivery is truncated mid-file (a broken transfer:
    /// the tail is gone and the cut line is left half-written).
    pub truncate: f64,
    /// Number of leading fetch attempts that time out before one
    /// succeeds (delayed delivery). With the default retry budget of
    /// three attempts, `1` or `2` is recovered by retries; `3+` makes the
    /// round's delivery effectively absent.
    pub delay_attempts: u32,
}

impl Default for FeedFaultIntensity {
    fn default() -> Self {
        FeedFaultIntensity {
            drop: 0.0,
            corrupt_records: 0.0,
            truncate: 0.0,
            delay_attempts: 0,
        }
    }
}

impl FeedFaultIntensity {
    /// Whether every fault is off (deliveries pass through untouched).
    pub fn is_null(&self) -> bool {
        self.drop == 0.0
            && self.corrupt_records == 0.0
            && self.truncate == 0.0
            && self.delay_attempts == 0
    }

    /// Validates that every probability lies in `0..=1`.
    pub fn validate(&self) -> fbs_types::Result<()> {
        for (name, p) in [
            ("drop", self.drop),
            ("corrupt_records", self.corrupt_records),
            ("truncate", self.truncate),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(fbs_types::FbsError::config(format!(
                    "feed fault probability {name}={p} outside 0..=1"
                )));
            }
        }
        Ok(())
    }

    /// Elementwise worst-case combination (overlapping windows).
    pub fn combine(&self, other: &FeedFaultIntensity) -> FeedFaultIntensity {
        FeedFaultIntensity {
            drop: self.drop.max(other.drop),
            corrupt_records: self.corrupt_records.max(other.corrupt_records),
            truncate: self.truncate.max(other.truncate),
            delay_attempts: self.delay_attempts.max(other.delay_attempts),
        }
    }
}

/// One scheduled feed-fault window: an intensity active for one feed over
/// a round range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedFaultWindow {
    /// Human-readable label ("march-mirror-outage").
    pub name: String,
    /// Which feed the window afflicts.
    pub feed: FeedKind,
    /// First affected round (inclusive).
    pub start: u32,
    /// First unaffected round; `None` = until the campaign ends.
    pub end: Option<u32>,
    /// The faults active during the window.
    pub intensity: FeedFaultIntensity,
}

impl FeedFaultWindow {
    /// Builds a window covering a round range.
    pub fn over_rounds(
        name: impl Into<String>,
        feed: FeedKind,
        rounds: std::ops::Range<u32>,
        intensity: FeedFaultIntensity,
    ) -> Self {
        FeedFaultWindow {
            name: name.into(),
            feed,
            start: rounds.start,
            end: Some(rounds.end),
            intensity,
        }
    }

    /// Whether the window covers `round`.
    pub fn covers(&self, round: Round) -> bool {
        round.0 >= self.start && self.end.is_none_or(|e| round.0 < e)
    }
}

/// A serde-loadable schedule of feed faults over the campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FeedFaultPlan {
    /// Scheduled windows of feed hostility.
    pub windows: Vec<FeedFaultWindow>,
}

impl FeedFaultPlan {
    /// A plan with no feed faults at all.
    pub fn none() -> Self {
        FeedFaultPlan::default()
    }

    /// Whether the plan injects nothing anywhere.
    pub fn is_null(&self) -> bool {
        self.windows.iter().all(|w| w.intensity.is_null())
    }

    /// Validates every window.
    pub fn validate(&self) -> fbs_types::Result<()> {
        for w in &self.windows {
            w.intensity.validate().map_err(|e| {
                fbs_types::FbsError::config(format!("feed fault window {:?}: {e}", w.name))
            })?;
        }
        Ok(())
    }

    /// The combined intensity afflicting `kind` at `round` (worst case
    /// over covering windows).
    pub fn intensity_at(&self, kind: FeedKind, round: Round) -> FeedFaultIntensity {
        let mut acc = FeedFaultIntensity::default();
        for w in &self.windows {
            if w.feed == kind && w.covers(round) {
                acc = acc.combine(&w.intensity);
            }
        }
        acc
    }
}

/// Derives the feed-fault RNG domain from a world RNG, mirroring
/// [`crate::FaultyTransport::fault_domain`]: feed draws never correlate
/// with world truth or wire-fault draws.
pub fn feed_domain(world_rng: WorldRng) -> WorldRng {
    world_rng.domain("feeds")
}

/// One fetch attempt through the fault plan: what the mirror serves for
/// `kind` at `round`, given the pristine `text`.
///
/// `rng` must be the feed domain (see [`feed_domain`]). Returns `None`
/// when this attempt fails outright (dropped round or delayed delivery);
/// otherwise the delivered text, possibly truncated and/or corrupted.
/// The payload mutation is keyed on the round alone — retrying fetches
/// the **same bytes**, exactly as a real mirror would serve them.
pub fn deliver(
    plan: &FeedFaultPlan,
    rng: &WorldRng,
    kind: FeedKind,
    round: Round,
    attempt: u32,
    text: &str,
) -> Option<String> {
    let i = plan.intensity_at(kind, round);
    if i.is_null() {
        return Some(text.to_string());
    }
    // fbs-lint: allow(rng-domain-collision) kind-keyed subdomain under the registered "feeds" root; FeedKind names are a closed enum set
    let rng = rng.domain(kind.name());
    let r = round.0 as u64;
    if i.drop > 0.0 && rng.chance3(i.drop, r, 0, salt::DROP) {
        return None; // mirror dark for the round: all attempts fail
    }
    if attempt < i.delay_attempts {
        return None; // delayed delivery: the first attempts time out
    }
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    if i.truncate > 0.0 && rng.chance3(i.truncate, r, 0, salt::TRUNCATE) {
        // Keep a prefix (10–90% of the lines) and leave the cut line
        // half-written, as a broken transfer would.
        let frac = 0.1 + 0.8 * rng.uniform3(r, 1, salt::TRUNCATE);
        let keep = ((lines.len() as f64 * frac) as usize)
            .max(1)
            .min(lines.len());
        lines.truncate(keep);
        if let Some(last) = lines.last_mut() {
            let cut = floor_char_boundary(last, last.len() / 2);
            last.truncate(cut);
        }
    }
    if i.corrupt_records > 0.0 {
        for (idx, line) in lines.iter_mut().enumerate() {
            let lineno = idx as u64 + 1;
            if line.is_empty() || !rng.chance3(i.corrupt_records, r, lineno, salt::CORRUPT) {
                continue;
            }
            *line = mangle_line(line, &rng, r, lineno);
        }
    }
    let mut out = lines.join("\n");
    if text.ends_with('\n') && !out.is_empty() {
        out.push('\n');
    }
    Some(out)
}

/// Deterministically mangles one line. Every style keeps the line a
/// single line (no `\n` added or removed), so quarantine line numbers in
/// the delivered text map onto the pristine text.
fn mangle_line(line: &str, rng: &WorldRng, round: u64, lineno: u64) -> String {
    match rng.below3(4, round, lineno, salt::MANGLE) {
        // Field separators swapped: the shape survives, the parse fails.
        0 => line.replace('|', ";"),
        // Leading garbage fused onto the record.
        1 => format!("?corrupt?{line}"),
        // The line cut in half mid-field.
        2 => {
            let cut = floor_char_boundary(line, line.len() / 2);
            line[..cut].to_string()
        }
        // The record replaced wholesale by hash noise.
        _ => format!("{:016x}", rng.hash3(round, lineno, salt::MANGLE ^ 0xEE)),
    }
}

/// Largest char boundary at or below `at` (stable substitute for the
/// unstable `str::floor_char_boundary`).
fn floor_char_boundary(s: &str, at: usize) -> usize {
    let mut i = at.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// The pristine BGP RIB dump text for `round`: the world's scripted BGP
/// event log replayed to the round and serialized canonically.
pub fn bgp_dump_text(world: &World, round: Round) -> String {
    let mut replayer = world.bgp_log().replayer();
    fbs_bgp::dump::to_string(replayer.advance_to(round))
}

/// The pristine geolocation feed text for `month`.
pub fn geo_feed_text(world: &World, month: MonthId) -> String {
    fbs_geodb::text::to_string(&geo::geo_snapshot(world, month))
}

/// The pristine delegation file text: one IPv4 record per world block,
/// all delegated before the campaign (the world's blocks are its target
/// population by construction).
pub fn delegations_feed_text(world: &World) -> String {
    let date = CivilDate::new(2021, 12, 1);
    let records: Vec<DelegationRecord> = world
        .blocks()
        .iter()
        .map(|b| {
            DelegationRecord::ipv4(
                "UA",
                b.block.network(),
                256,
                date,
                DelegationStatus::Allocated,
            )
        })
        .collect();
    fbs_delegations::serialize_file(&DelegationFile::new("ripencc", date, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AsProfile, AsSpec, BlockSpec, WorldConfig, WorldScale};
    use crate::world::World;
    use fbs_types::{Asn, BlockId, Oblast, Prefix};

    fn tiny_world(seed: u64) -> World {
        let asn = Asn(77);
        let blocks: Vec<BlockSpec> = (0..4u8)
            .map(|c| BlockSpec {
                block: BlockId::from_octets(10, 7, c),
                owner: asn,
                home: Oblast::Kyiv,
                base_responders: 100,
                geo_population: 200,
                response_prob: 0.9,
                diurnal: false,
                power_backup: 1.0,
                annual_decay: 1.0,
            })
            .collect();
        let config = WorldConfig {
            seed,
            scale: WorldScale::Tiny,
            rounds: 60,
            ases: vec![AsSpec {
                asn,
                name: "feedsim".into(),
                profile: AsProfile::Regional,
                hq: Some(Oblast::Kyiv),
                prefixes: blocks.iter().map(|b| Prefix::from_block(b.block)).collect(),
                base_rtt_ns: 30_000_000,
                upstream: Asn(1),
            }],
            blocks,
        };
        World::new(config, crate::script::Script::new(), vec![]).expect("valid config")
    }

    fn corrupt_window(feed: FeedKind, p: f64) -> FeedFaultPlan {
        FeedFaultPlan {
            windows: vec![FeedFaultWindow::over_rounds(
                "test",
                feed,
                0..60,
                FeedFaultIntensity {
                    corrupt_records: p,
                    ..FeedFaultIntensity::default()
                },
            )],
        }
    }

    #[test]
    fn null_plan_passes_text_through_unchanged() {
        let rng = feed_domain(WorldRng::new(5));
        let text = "10.0.0.0/24|65000\n10.0.1.0/24|65001\n";
        let got = deliver(
            &FeedFaultPlan::none(),
            &rng,
            FeedKind::Bgp,
            Round(3),
            0,
            text,
        );
        assert_eq!(got.as_deref(), Some(text));
        // A plan whose windows miss the round is equally transparent.
        let far = FeedFaultPlan {
            windows: vec![FeedFaultWindow::over_rounds(
                "later",
                FeedKind::Bgp,
                50..60,
                FeedFaultIntensity {
                    drop: 1.0,
                    ..FeedFaultIntensity::default()
                },
            )],
        };
        assert_eq!(
            deliver(&far, &rng, FeedKind::Bgp, Round(3), 0, text).as_deref(),
            Some(text)
        );
        // And so is a window targeting a different feed.
        assert_eq!(
            deliver(&far, &rng, FeedKind::Geo, Round(55), 0, text).as_deref(),
            Some(text)
        );
    }

    #[test]
    fn dropped_rounds_fail_every_attempt() {
        let rng = feed_domain(WorldRng::new(5));
        let plan = FeedFaultPlan {
            windows: vec![FeedFaultWindow::over_rounds(
                "dark",
                FeedKind::Bgp,
                10..20,
                FeedFaultIntensity {
                    drop: 1.0,
                    ..FeedFaultIntensity::default()
                },
            )],
        };
        for attempt in 0..5 {
            assert_eq!(
                deliver(&plan, &rng, FeedKind::Bgp, Round(12), attempt, "x\n"),
                None
            );
        }
        assert!(deliver(&plan, &rng, FeedKind::Bgp, Round(20), 0, "x\n").is_some());
    }

    #[test]
    fn delayed_delivery_recovers_on_retry() {
        let rng = feed_domain(WorldRng::new(5));
        let plan = FeedFaultPlan {
            windows: vec![FeedFaultWindow::over_rounds(
                "slow",
                FeedKind::Geo,
                0..60,
                FeedFaultIntensity {
                    delay_attempts: 2,
                    ..FeedFaultIntensity::default()
                },
            )],
        };
        let text = "geo|2022-03\n";
        assert_eq!(deliver(&plan, &rng, FeedKind::Geo, Round(1), 0, text), None);
        assert_eq!(deliver(&plan, &rng, FeedKind::Geo, Round(1), 1, text), None);
        assert_eq!(
            deliver(&plan, &rng, FeedKind::Geo, Round(1), 2, text).as_deref(),
            Some(text)
        );
    }

    #[test]
    fn corruption_preserves_line_structure_and_is_deterministic() {
        let rng = feed_domain(WorldRng::new(9));
        let plan = corrupt_window(FeedKind::Bgp, 0.5);
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("10.0.{}.0/24|65000\n", i % 256));
        }
        let a = deliver(&plan, &rng, FeedKind::Bgp, Round(7), 0, &text).unwrap();
        let b = deliver(&plan, &rng, FeedKind::Bgp, Round(7), 0, &text).unwrap();
        assert_eq!(a, b, "same coordinates must serve the same bytes");
        // Retries see the same payload: the mangle is keyed on the round.
        let c = deliver(&plan, &rng, FeedKind::Bgp, Round(7), 3, &text).unwrap();
        assert_eq!(a, c);
        assert_eq!(
            a.lines().count(),
            text.lines().count(),
            "no lines added or removed"
        );
        let changed = a
            .lines()
            .zip(text.lines())
            .filter(|(got, want)| got != want)
            .count();
        assert!(
            changed > 50,
            "p=0.5 over 200 lines must mangle many: {changed}"
        );
        // A different round draws different corruption.
        let d = deliver(&plan, &rng, FeedKind::Bgp, Round(8), 0, &text).unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn truncation_keeps_a_prefix_with_a_half_written_cut_line() {
        let rng = feed_domain(WorldRng::new(11));
        let plan = FeedFaultPlan {
            windows: vec![FeedFaultWindow::over_rounds(
                "broken-transfer",
                FeedKind::Bgp,
                0..60,
                FeedFaultIntensity {
                    truncate: 1.0,
                    ..FeedFaultIntensity::default()
                },
            )],
        };
        let mut text = String::new();
        for i in 0..100 {
            text.push_str(&format!("10.1.{}.0/24|65000\n", i % 256));
        }
        let got = deliver(&plan, &rng, FeedKind::Bgp, Round(4), 0, &text).unwrap();
        let kept = got.lines().count();
        assert!(kept < 100, "tail must be gone: kept {kept}");
        assert!(kept >= 1);
        // Surviving full lines are byte-identical to the pristine prefix.
        for (g, w) in got.lines().take(kept - 1).zip(text.lines()) {
            assert_eq!(g, w);
        }
        let last = got.lines().last().unwrap();
        let pristine = text.lines().nth(kept - 1).unwrap();
        assert!(
            pristine.starts_with(last),
            "cut line must be a prefix of the original"
        );
        assert!(last.len() < pristine.len());
    }

    #[test]
    fn per_feed_domains_decorrelate() {
        let rng = feed_domain(WorldRng::new(21));
        let plan = FeedFaultPlan {
            windows: FeedKind::ALL
                .iter()
                .map(|k| {
                    FeedFaultWindow::over_rounds(
                        "half-drop",
                        *k,
                        0..60,
                        FeedFaultIntensity {
                            drop: 0.5,
                            ..FeedFaultIntensity::default()
                        },
                    )
                })
                .collect(),
        };
        // Over many rounds the three feeds must not drop in lockstep.
        let pattern = |kind| {
            (0..60u32)
                .map(|r| deliver(&plan, &rng, kind, Round(r), 0, "x\n").is_some())
                .collect::<Vec<_>>()
        };
        let bgp = pattern(FeedKind::Bgp);
        let geo = pattern(FeedKind::Geo);
        assert_ne!(bgp, geo, "feed kinds must draw decorrelated faults");
    }

    #[test]
    fn plan_validation_and_combination() {
        let bad = FeedFaultPlan {
            windows: vec![FeedFaultWindow::over_rounds(
                "bad",
                FeedKind::Bgp,
                0..10,
                FeedFaultIntensity {
                    drop: 1.5,
                    ..FeedFaultIntensity::default()
                },
            )],
        };
        assert!(bad.validate().is_err());
        assert!(FeedFaultPlan::none().validate().is_ok());
        assert!(FeedFaultPlan::none().is_null());
        // Overlapping windows combine worst-case.
        let plan = FeedFaultPlan {
            windows: vec![
                FeedFaultWindow::over_rounds(
                    "a",
                    FeedKind::Bgp,
                    0..20,
                    FeedFaultIntensity {
                        drop: 0.1,
                        delay_attempts: 2,
                        ..FeedFaultIntensity::default()
                    },
                ),
                FeedFaultWindow::over_rounds(
                    "b",
                    FeedKind::Bgp,
                    10..30,
                    FeedFaultIntensity {
                        drop: 0.4,
                        corrupt_records: 0.05,
                        ..FeedFaultIntensity::default()
                    },
                ),
            ],
        };
        let i = plan.intensity_at(FeedKind::Bgp, Round(15));
        assert_eq!(i.drop, 0.4);
        assert_eq!(i.corrupt_records, 0.05);
        assert_eq!(i.delay_attempts, 2);
        assert!(plan.intensity_at(FeedKind::Geo, Round(15)).is_null());
        // Open-ended windows run to the end of the campaign.
        let open = FeedFaultWindow {
            name: "forever".into(),
            feed: FeedKind::Geo,
            start: 5,
            end: None,
            intensity: FeedFaultIntensity {
                drop: 1.0,
                ..FeedFaultIntensity::default()
            },
        };
        assert!(!open.covers(Round(4)));
        assert!(open.covers(Round(4000)));
    }

    #[test]
    fn pristine_texts_parse_cleanly_and_deterministically() {
        let w = tiny_world(3);
        let bgp = bgp_dump_text(&w, Round(10));
        assert_eq!(bgp, bgp_dump_text(&w, Round(10)));
        let (rib, quarantined) = fbs_bgp::dump::parse_lossy(&bgp);
        assert!(quarantined.is_empty(), "{quarantined:?}");
        assert_eq!(rib.num_routes(), 4);

        let month = MonthId::new(2022, 2);
        let geo = geo_feed_text(&w, month);
        let (snap, quarantined) = fbs_geodb::text::parse_lossy(&geo);
        assert!(quarantined.is_empty(), "{quarantined:?}");
        assert_eq!(snap.num_blocks(), 4);

        let dele = delegations_feed_text(&w);
        let (file, quarantined) = fbs_delegations::parse_lossy(&dele);
        assert!(quarantined.is_empty(), "{quarantined:?}");
        assert_eq!(file.records.len(), 4);
        assert!(file.records.iter().all(|r| r.status.is_delegated()));
    }
}
