//! Vantage points: named measurement origins with their own path model.
//!
//! The paper scans from one vantage; ROADMAP item 4 generalizes to N. A
//! [`VantageSpec`] describes one origin: a stable name (the world-RNG
//! domain key, so each vantage draws its faults from an independent but
//! fully deterministic stream), an additive path latency toward the
//! targets, and an optional per-vantage [`FaultPlan`] — vantage A can sit
//! behind a congested peering while vantage B stays clean, in the same
//! run, bit-identically reproducible.
//!
//! Two consumption paths mirror the world's own:
//!
//! * the **wire path** — [`VantageSpec::transport`] wraps a
//!   [`WorldTransport`] in a [`VantageTransport`] that adds the vantage's
//!   path latency to every probe's round trip;
//! * the **oracle path** — the campaign loop calls
//!   [`VantageSpec::fault_domain`] once and applies the vantage's plan to
//!   `World::block_truth` values directly.

use crate::faults::FaultPlan;
use crate::rng::WorldRng;
use crate::transport::WorldTransport;
use crate::world::World;
use fbs_prober::Transport;
use fbs_types::Round;
use serde::{Deserialize, Serialize};

/// One vantage point of a multi-vantage campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantageSpec {
    /// Stable identifier: names the vantage in reports and keys its
    /// world-RNG fault domain, so adding or reordering *other* vantages
    /// never changes this one's draws.
    pub name: String,
    /// Extra one-way path latency from this vantage to the targets,
    /// nanoseconds, added to every observed RTT.
    #[serde(default)]
    pub path_rtt_ns: u64,
    /// Fault schedule specific to this vantage's path. `None` inherits
    /// the campaign-wide plan (or a clean path if there is none).
    #[serde(default)]
    pub fault_plan: Option<FaultPlan>,
}

impl VantageSpec {
    /// A clean vantage with no extra latency.
    pub fn new(name: impl Into<String>) -> Self {
        VantageSpec {
            name: name.into(),
            path_rtt_ns: 0,
            fault_plan: None,
        }
    }

    /// Validates the spec: a non-empty name and a valid fault plan.
    pub fn validate(&self) -> fbs_types::Result<()> {
        if self.name.is_empty() {
            return Err(fbs_types::FbsError::config(
                "vantage name must be non-empty (it keys the fault RNG domain)",
            ));
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate().map_err(|e| {
                fbs_types::FbsError::config(format!("vantage {:?}: {e}", self.name))
            })?;
        }
        Ok(())
    }

    /// The vantage's independent fault-RNG domain, derived from the world
    /// RNG and keyed by the vantage name. The legacy single-vantage
    /// pipeline uses the plain `"faults"` domain; these are disjoint from
    /// it and from each other.
    pub fn fault_domain(&self, world_rng: &WorldRng) -> WorldRng {
        // fbs-lint: allow(rng-domain-collision) name-keyed subdomain under the registered "vantage-faults" root; roster names are unique by construction
        world_rng.domain("vantage-faults").domain(&self.name)
    }

    /// A wire-path transport for `round` as seen from this vantage: the
    /// world answered through the vantage's extra path latency. Layer a
    /// [`crate::FaultyTransport`] on top (seeded from
    /// [`VantageSpec::fault_domain`]) for the vantage's own fault plan.
    pub fn transport<'a>(&self, world: &'a World, round: Round) -> VantageTransport<'a> {
        VantageTransport {
            inner: WorldTransport::new(world, round),
            path_rtt_ns: self.path_rtt_ns,
        }
    }
}

/// [`WorldTransport`] as seen from a specific vantage: every probe is
/// answered `path_rtt_ns` later than the world's own round-trip time.
///
/// The shift is applied on the send side (the probe "reaches the world"
/// after the path delay), so the echoed timestamp arithmetic in
/// `fbs-prober` measures `world RTT + path RTT` without this wrapper
/// keeping any queue of its own.
pub struct VantageTransport<'a> {
    inner: WorldTransport<'a>,
    path_rtt_ns: u64,
}

impl VantageTransport<'_> {
    /// Probes that reached no simulated host (passthrough counter).
    pub fn unanswered(&self) -> u64 {
        self.inner.unanswered
    }
}

impl Transport for VantageTransport<'_> {
    fn send(&mut self, bytes: &[u8], now_ns: u64) {
        self.inner
            .send(bytes, now_ns.saturating_add(self.path_rtt_ns));
    }

    fn recv(&mut self, now_ns: u64, out: &mut Vec<(u64, Vec<u8>)>) {
        self.inner.recv(now_ns, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;
    use crate::spec::{AsProfile, AsSpec, BlockSpec, WorldConfig, WorldScale};
    use fbs_prober::{ScanConfig, Scanner, TargetSet};
    use fbs_types::{Asn, Oblast, Prefix};

    fn world() -> World {
        let prefix: Prefix = "193.151.240.0/23".parse().unwrap();
        let ases = vec![AsSpec {
            asn: Asn(25482),
            name: "Status".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: vec![prefix],
            base_rtt_ns: 40_000_000,
            upstream: Asn(6849),
        }];
        let blocks = prefix
            .blocks()
            .map(|b| BlockSpec {
                block: b,
                owner: Asn(25482),
                home: Oblast::Kherson,
                base_responders: 30,
                geo_population: 180,
                response_prob: 0.9,
                diurnal: false,
                power_backup: 0.5,
                annual_decay: 0.9,
            })
            .collect();
        World::new(
            WorldConfig {
                seed: 5,
                scale: WorldScale::Tiny,
                rounds: 60,
                ases,
                blocks,
            },
            Script::new(),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_empty_names() {
        assert!(VantageSpec::new("kyiv").validate().is_ok());
        assert!(VantageSpec::new("").validate().is_err());
    }

    #[test]
    fn fault_domains_are_independent_per_vantage() {
        let rng = WorldRng::new(7);
        let a = VantageSpec::new("a").fault_domain(&rng);
        let b = VantageSpec::new("b").fault_domain(&rng);
        let legacy = rng.domain("faults");
        assert_ne!(a.hash3(1, 2, 3), b.hash3(1, 2, 3));
        assert_ne!(a.hash3(1, 2, 3), legacy.hash3(1, 2, 3));
        // Same name, same draws: the domain is keyed by name alone.
        let a2 = VantageSpec::new("a").fault_domain(&rng);
        assert_eq!(a.hash3(1, 2, 3), a2.hash3(1, 2, 3));
    }

    #[test]
    fn path_latency_shows_up_in_measured_rtts() {
        let w = world();
        let targets = TargetSet::from_blocks(w.blocks().iter().map(|b| b.block).collect());
        let scanner = Scanner::new(ScanConfig {
            rate_pps: 1_000_000,
            ..ScanConfig::default()
        });
        let round = Round(3);

        let near = VantageSpec::new("near");
        let far = VantageSpec {
            path_rtt_ns: 25_000_000,
            ..VantageSpec::new("far")
        };
        let (obs_near, _) = scanner.scan_round(round, &targets, &mut near.transport(&w, round));
        let (obs_far, _) = scanner.scan_round(round, &targets, &mut far.transport(&w, round));

        // Same responders, shifted RTTs.
        for (a, b) in obs_near.blocks.iter().zip(obs_far.blocks.iter()) {
            assert_eq!(a.responders, b.responders);
            if let (Some(n), Some(f)) = (a.rtt.mean_ns(), b.rtt.mean_ns()) {
                assert_eq!(f, n + 25_000_000, "path latency must shift the RTT");
            }
        }
    }
}
