//! Monthly geolocation snapshot generation.
//!
//! Produces the IPinfo-style database the regional classifier consumes:
//! per block and month, how many addresses geolocate where, with what
//! accuracy radius, and under which originating AS. Three phenomena are
//! layered, mirroring §4.1 of the paper:
//!
//! * **scripted churn** — `GeoMove` events relocate a fraction of a
//!   target's addresses permanently (frontline flight, the Volia → Amazon
//!   reassignment), optionally changing the announcing AS;
//! * **drift noise** — national-ISP blocks wander: some months a slice of
//!   a block geolocates to another oblast (IP drift), occasionally the
//!   whole block does (block drift); regional blocks drift far less —
//!   which is exactly why the classifier works;
//! * **population decay** — address counts shrink with the same per-block
//!   decay that drives responsiveness (−18% country-wide over the
//!   campaign, steeper on the frontline).

use crate::script::{EventKind, EventTarget};
use crate::spec::AsProfile;
use crate::world::World;
use fbs_geodb::{BlockGeo, GeoRegion, GeoSnapshot, RadiusKm};
use fbs_types::{MonthId, Oblast, Round};

/// Months since the campaign's first month (clamped at zero for the
/// pre-war snapshot of 2022-02-01).
fn months_since_start(month: MonthId) -> u32 {
    month.0.saturating_sub(MonthId::campaign_first().0)
}

/// Generates the geolocation snapshot of `month` for the world.
pub fn geo_snapshot(world: &World, month: MonthId) -> GeoSnapshot {
    let rng = world.rng().domain("geo");
    let elapsed = months_since_start(month);
    let mut records = Vec::with_capacity(world.blocks().len());

    for spec in world.blocks().iter() {
        let owner_spec = world.as_spec(spec.owner).expect("validated owner");
        let profile = owner_spec.profile;

        // Population: assigned addresses outnumber responsive ones. The
        // per-oblast decline is block-granular — a block either stays (its
        // population roughly stable, so its regional share stays high) or
        // departs, collapsing to a residue. This matches §4.1: churn moves
        // whole blocks, while surviving regional blocks keep tight shares.
        let base_pop = spec.geo_population.max(spec.base_responders) as u32;
        let survive = spec.annual_decay.powf(elapsed as f64 / 12.0);
        let alive = rng.uniform3(spec.block.0 as u64, 0, 55) < survive;
        let growth = survive.clamp(1.0, 1.3f64);
        let mut remaining = if alive {
            ((base_pop as f64) * growth).min(256.0).round() as u32
        } else {
            base_pop / 10
        };
        let mut counts: Vec<(GeoRegion, u16)> = Vec::new();
        let mut asn = Some(spec.owner);

        // Scripted moves, applied in event order. Churn is block-granular:
        // an event with fraction f uproots each affected block *wholly*
        // with probability f (reassigned space is announced as whole /24s,
        // and the paper's flow counts are block-level). Region-wide flight
        // spares regional providers — their subscribers are what stayed.
        for (ei, e) in world.script().events().iter().enumerate() {
            let EventKind::GeoMove {
                to,
                fraction,
                new_owner,
            } = e.kind
            else {
                continue;
            };
            let applies = match e.target {
                EventTarget::Block(b) => b == spec.block,
                EventTarget::As(a) => a == spec.owner,
                EventTarget::Region(o) => o == spec.home && profile != AsProfile::Regional,
                EventTarget::Country => true,
            };
            if !applies {
                continue;
            }
            let event_month = Round::first_at_or_after(e.start).month();
            if month < event_month {
                continue;
            }
            // Month-independent draw: a moved block stays moved.
            if !rng.chance3(fraction, spec.block.0 as u64, ei as u64, 77) {
                continue;
            }
            if remaining > 0 {
                add_count(&mut counts, to, remaining as u16);
                remaining = 0;
            }
            if let Some(owner) = new_owner {
                asn = Some(owner);
            }
        }

        // Drift noise on what stayed home.
        let coords = (spec.block.0 as u64, month.0 as u64);
        let (block_drift_p, ip_drift_p, drift_max) = match profile {
            AsProfile::Regional => (0.003, 0.05, 0.05),
            AsProfile::National => (0.03, 0.25, 0.30),
            AsProfile::Foreign => (0.0, 0.0, 0.0),
        };
        // National pools are re-homed permanently now and then (dynamic
        // reassignment at country scale — Ukrtelecom alone moved 697K
        // addresses between oblasts in the paper's data). The latest
        // re-home before `month` wins.
        let mut geo_home = spec.home;
        if profile == AsProfile::National {
            for m in 0..=elapsed {
                if rng.chance3(0.015, spec.block.0 as u64, 400 + m as u64, 6) {
                    geo_home = random_other_oblast(&rng, geo_home, (spec.block.0 as u64, m as u64));
                }
            }
        }
        let home_region = GeoRegion::Ua(geo_home);
        if remaining > 0 {
            if rng.chance3(block_drift_p, coords.0, coords.1, 1) {
                // Block drift: the whole remainder points elsewhere.
                let other = random_other_oblast(&rng, geo_home, coords);
                add_count(&mut counts, GeoRegion::Ua(other), remaining as u16);
            } else {
                let mut home_count = remaining;
                if rng.chance3(ip_drift_p, coords.0, coords.1, 2) {
                    let frac = drift_max * rng.uniform3(coords.0, coords.1, 3);
                    let drifted = ((remaining as f64) * frac).round() as u32;
                    if drifted > 0 {
                        let other = random_other_oblast(&rng, geo_home, coords);
                        add_count(&mut counts, GeoRegion::Ua(other), drifted as u16);
                        home_count -= drifted;
                    }
                }
                // Temporal noise: a couple of addresses far away.
                if rng.chance3(0.01, coords.0, coords.1, 4) && home_count > 4 {
                    let other = random_other_oblast(&rng, spec.home, coords);
                    let stray = 1 + rng.below3(4, coords.0, coords.1, 5) as u32;
                    add_count(&mut counts, GeoRegion::Ua(other), stray as u16);
                    home_count -= stray;
                }
                if home_count > 0 {
                    add_count(&mut counts, home_region, home_count as u16);
                }
            }
        }

        // Accuracy radius: regional networks geolocate tightly and coarsen
        // slowly; national/mobile space sits at 500 km (paper §4.3).
        let radius = match profile {
            AsProfile::Regional => {
                if elapsed < 12 {
                    RadiusKm::R50
                } else if elapsed < 24 {
                    RadiusKm::R100
                } else {
                    RadiusKm::R200
                }
            }
            AsProfile::National => RadiusKm::R500,
            AsProfile::Foreign => RadiusKm::R1000,
        };

        if !counts.is_empty() {
            records.push(BlockGeo {
                block: spec.block,
                asn,
                counts,
                radius,
            });
        }
    }
    GeoSnapshot::from_records(month, records).expect("generator emits unique blocks")
}

fn add_count(counts: &mut Vec<(GeoRegion, u16)>, region: GeoRegion, n: u16) {
    if n == 0 {
        return;
    }
    for (r, c) in counts.iter_mut() {
        if *r == region {
            *c = c.saturating_add(n);
            return;
        }
    }
    counts.push((region, n));
}

fn random_other_oblast(rng: &crate::rng::WorldRng, home: Oblast, coords: (u64, u64)) -> Oblast {
    // Drifted addresses overwhelmingly geolocate to the capital (national
    // pools are managed from Kyiv); the rest scatter.
    if home != Oblast::Kyiv && rng.chance3(0.8, coords.0, coords.1, 8) {
        return Oblast::Kyiv;
    }
    let pick = rng.below3(25, coords.0, coords.1, 9) as usize;
    let candidate = fbs_types::ALL_OBLASTS[pick];
    if candidate == home {
        fbs_types::ALL_OBLASTS[25]
    } else {
        candidate
    }
}

/// Synthetic per-oblast IPv6 address totals (appendix C, Fig. 20): low
/// adoption growing ~35% per year, with previously v6-free oblasts jumping
/// the most in relative terms.
pub fn v6_totals(world: &World, month: MonthId) -> fbs_geodb::RegionTotals {
    let rng = world.rng().domain("v6");
    let elapsed = months_since_start(month);
    let mut counts = [0u64; Oblast::COUNT];
    // Base v6 population proportional to the oblast's v4 block count.
    let by_oblast = world.blocks_by_oblast();
    for (oblast, blocks) in by_oblast {
        let i = oblast.index() as u64;
        let late_adopter = rng.chance3(0.25, i, 0, 0);
        let base = if late_adopter {
            2.0 + 8.0 * rng.uniform3(i, 1, 0)
        } else {
            blocks.len() as f64 * (8.0 + 24.0 * rng.uniform3(i, 2, 0))
        };
        let growth = 1.35f64.powf(elapsed as f64 / 12.0);
        counts[oblast.index()] = (base * growth).round() as u64;
    }
    fbs_geodb::RegionTotals { month, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{Script, ScriptedEvent};
    use crate::spec::{AsSpec, BlockSpec, WorldConfig, WorldScale};
    use fbs_types::{Asn, BlockId, Prefix, CAMPAIGN_START};

    fn world_with(script: Script) -> World {
        let ases = vec![
            AsSpec {
                asn: Asn(25229),
                name: "Volia".into(),
                profile: AsProfile::National,
                hq: Some(Oblast::Kyiv),
                prefixes: vec!["77.120.0.0/22".parse::<Prefix>().unwrap()],
                base_rtt_ns: 30_000_000,
                upstream: Asn(3356),
            },
            AsSpec {
                asn: Asn(25482),
                name: "Status".into(),
                profile: AsProfile::Regional,
                hq: Some(Oblast::Kherson),
                prefixes: vec!["193.151.240.0/23".parse::<Prefix>().unwrap()],
                base_rtt_ns: 40_000_000,
                upstream: Asn(6849),
            },
        ];
        let mut blocks = Vec::new();
        for p in ases[0].prefixes[0].blocks() {
            blocks.push(BlockSpec {
                block: p,
                owner: Asn(25229),
                home: Oblast::Kherson,
                base_responders: 30,
                geo_population: 180,
                response_prob: 0.8,
                diurnal: false,
                power_backup: 0.2,
                annual_decay: 0.7,
            });
        }
        for p in ases[1].prefixes[0].blocks() {
            blocks.push(BlockSpec {
                block: p,
                owner: Asn(25482),
                home: Oblast::Kherson,
                base_responders: 40,
                geo_population: 240,
                response_prob: 0.85,
                diurnal: false,
                power_backup: 0.6,
                annual_decay: 0.9,
            });
        }
        let config = WorldConfig {
            seed: 7,
            scale: WorldScale::Tiny,
            rounds: 1200,
            ases,
            blocks,
        };
        World::new(config, script, vec![]).unwrap()
    }

    #[test]
    fn snapshot_covers_blocks_with_home_dominant() {
        let w = world_with(Script::new());
        let snap = geo_snapshot(&w, MonthId::new(2022, 3));
        assert_eq!(snap.num_blocks(), 6);
        let status_block = snap.get(BlockId::from_octets(193, 151, 240)).unwrap();
        let (dom, _) = status_block.dominant().unwrap();
        assert_eq!(dom, GeoRegion::Ua(Oblast::Kherson));
        assert_eq!(status_block.asn, Some(Asn(25482)));
        assert_eq!(status_block.radius, RadiusKm::R50);
    }

    #[test]
    fn population_decays_over_time() {
        let w = world_with(Script::new());
        let early = geo_snapshot(&w, MonthId::new(2022, 3));
        let late = geo_snapshot(&w, MonthId::new(2025, 2));
        let e = early.addresses_in_ukraine();
        let l = late.addresses_in_ukraine();
        assert!(l < e, "late {l} should be below early {e}");
    }

    #[test]
    fn scripted_move_relocates_and_reassigns() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "Volia to Amazon".into(),
            target: EventTarget::As(Asn(25229)),
            kind: EventKind::GeoMove {
                to: GeoRegion::foreign("US"),
                fraction: 0.8,
                new_owner: Some(Asn(16509)),
            },
            start: CAMPAIGN_START.plus_seconds(400 * 86_400),
            end: None,
        });
        let w = world_with(s);
        let before = geo_snapshot(&w, MonthId::new(2022, 6));
        let after = geo_snapshot(&w, MonthId::new(2024, 6));
        let b_us = before.addresses_in(GeoRegion::foreign("US"));
        let a_us = after.addresses_in(GeoRegion::foreign("US"));
        assert!(a_us > b_us + 50, "after {a_us} before {b_us}");
        // The moved blocks are announced by Amazon now.
        let volia_block = after.get(BlockId::from_octets(77, 120, 0)).unwrap();
        assert_eq!(volia_block.asn, Some(Asn(16509)));
        // Status is untouched.
        let status = after.get(BlockId::from_octets(193, 151, 240)).unwrap();
        assert_eq!(status.asn, Some(Asn(25482)));
    }

    #[test]
    fn regional_blocks_drift_less_than_national() {
        let w = world_with(Script::new());
        let months: Vec<MonthId> = MonthId::new(2022, 3)
            .range_inclusive(MonthId::new(2024, 12))
            .collect();
        let mut regional_dominant = 0usize;
        let mut national_dominant = 0usize;
        let mut total = 0usize;
        for m in months {
            let snap = geo_snapshot(&w, m);
            total += 1;
            // Regional block (Status).
            if let Some(b) = snap.get(BlockId::from_octets(193, 151, 241)) {
                if b.dominant().map(|(r, _)| r) == Some(GeoRegion::Ua(Oblast::Kherson)) {
                    regional_dominant += 1;
                }
            }
            // National block (Volia).
            if let Some(b) = snap.get(BlockId::from_octets(77, 120, 1)) {
                if b.dominant().map(|(r, _)| r) == Some(GeoRegion::Ua(Oblast::Kherson)) {
                    national_dominant += 1;
                }
            }
        }
        assert!(regional_dominant >= national_dominant);
        assert!(regional_dominant as f64 / total as f64 > 0.9);
    }

    #[test]
    fn radius_coarsens_for_regional_over_years() {
        let w = world_with(Script::new());
        let y2022 = geo_snapshot(&w, MonthId::new(2022, 6));
        let y2025 = geo_snapshot(&w, MonthId::new(2025, 1));
        let b = BlockId::from_octets(193, 151, 240);
        assert_eq!(y2022.get(b).unwrap().radius, RadiusKm::R50);
        assert_eq!(y2025.get(b).unwrap().radius, RadiusKm::R200);
        // National blocks sit at 500 km throughout.
        let n = BlockId::from_octets(77, 120, 0);
        assert_eq!(y2022.get(n).unwrap().radius, RadiusKm::R500);
        assert_eq!(y2025.get(n).unwrap().radius, RadiusKm::R500);
    }

    #[test]
    fn v6_totals_grow() {
        let w = world_with(Script::new());
        let early = v6_totals(&w, MonthId::new(2022, 2));
        let late = v6_totals(&w, MonthId::new(2025, 2));
        let e: u64 = early.counts.iter().sum();
        let l: u64 = late.counts.iter().sum();
        assert!(l > e, "v6 must grow: {e} -> {l}");
    }

    #[test]
    fn snapshot_deterministic() {
        let w = world_with(Script::new());
        let a = geo_snapshot(&w, MonthId::new(2023, 5));
        let b = geo_snapshot(&w, MonthId::new(2023, 5));
        assert_eq!(a.num_blocks(), b.num_blocks());
        for rec in a.iter() {
            let other = b.get(rec.block).unwrap();
            assert_eq!(rec, other);
        }
    }
}
