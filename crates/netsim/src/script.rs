//! The war-event script.
//!
//! Scenarios describe *what happened when* as a list of [`ScriptedEvent`]s:
//! the Mykolaiv cable cut withdraws 24 Kherson ASes for three days,
//! occupation rerouting raises RTTs via a Russian upstream for six months,
//! the Kakhovka flood silences OstrovNet for three, strike campaigns layer
//! power outages over the winters. The script compiles into per-target
//! interval timelines the world queries in O(log n) per round.

use fbs_types::{Asn, BlockId, Oblast, Round, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What an event applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventTarget {
    /// One AS (all its blocks).
    As(Asn),
    /// One /24 block.
    Block(BlockId),
    /// Every block homed in an oblast.
    Region(Oblast),
    /// Everything.
    Country,
}

/// What happens during the event window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Prefixes of the target are withdrawn from BGP (and everything under
    /// them goes unreachable).
    BgpOutage,
    /// Responsiveness is multiplied by the factor (1.0 = no effect,
    /// 0.0 = total silence while routes stay up — e.g. the Status seizure).
    IpsScale(f64),
    /// Traffic is rerouted via the given transit AS, adding RTT.
    Reroute {
        /// The imposed upstream (e.g. a Russian carrier).
        via: Asn,
        /// Extra one-way delay added to the round trip, nanoseconds.
        extra_rtt_ns: u64,
    },
    /// The measurement vantage point is offline: no data for any target.
    VantageOutage,
    /// The target stops announcing permanently at `start` (end ignored):
    /// decommissioned providers (7 Kherson regional ASes by 2025).
    Decommission,
    /// The target first announces at `start` (end ignored): late arrivals
    /// like Brok-X or Genicheskonline.
    Activate,
    /// Responsiveness multiplied by the factor during local night hours
    /// only (01:00–07:00 UTC+2) — electricity available by daylight, the
    /// pattern Status's blocks showed after the liberation (Fig. 14).
    NightScale(f64),
    /// From the month containing `start`, `fraction` of the target's
    /// addresses geolocate to `to`; optionally the blocks are re-announced
    /// by `new_owner` (the Volia → Amazon reassignment).
    GeoMove {
        /// Destination region of the moved addresses.
        to: fbs_geodb::GeoRegion,
        /// Fraction of the target's addresses that move (`0..=1`).
        fraction: f64,
        /// New originating AS for the moved blocks, if any.
        new_owner: Option<Asn>,
    },
}

/// One scripted event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptedEvent {
    /// Human-readable name ("Mykolaiv cable cut").
    pub name: String,
    /// Target of the effect.
    pub target: EventTarget,
    /// Effect kind.
    pub kind: EventKind,
    /// Effect start (inclusive).
    pub start: Timestamp,
    /// Effect end (exclusive); `None` = until the campaign ends.
    pub end: Option<Timestamp>,
}

impl ScriptedEvent {
    /// The rounds the event covers, clamped to `[0, total)`.
    pub fn round_range(&self, total: u32) -> std::ops::Range<u32> {
        let s = Round::first_at_or_after(self.start).0.min(total);
        let e = match self.end {
            Some(end) => Round::first_at_or_after(end).0.min(total),
            None => total,
        };
        s..e.max(s)
    }
}

/// A compiled script, ready for per-round queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Script {
    events: Vec<ScriptedEvent>,
    /// Per-target, per-kind interval lists (round ranges), sorted.
    #[serde(skip)]
    compiled: Option<Compiled>,
}

#[derive(Debug, Clone, Default)]
struct Compiled {
    /// Vantage-offline intervals.
    vantage: Vec<(u32, u32)>,
    /// (target → scale intervals).
    ips_scale: BTreeMap<EventTarget, Vec<(u32, u32, f64)>>,
    /// (target → BGP-outage intervals).
    bgp: BTreeMap<EventTarget, Vec<(u32, u32)>>,
    /// (target → reroute intervals).
    reroute: BTreeMap<EventTarget, Vec<(u32, u32, Asn, u64)>>,
    /// AS → decommission round.
    decommission: BTreeMap<EventTarget, u32>,
    /// AS → activation round.
    activate: BTreeMap<EventTarget, u32>,
}

impl Script {
    /// An empty script.
    pub fn new() -> Self {
        Script::default()
    }

    /// Adds an event (invalidates compilation).
    pub fn push(&mut self, event: ScriptedEvent) {
        self.events.push(event);
        self.compiled = None;
    }

    /// All scripted events.
    pub fn events(&self) -> &[ScriptedEvent] {
        &self.events
    }

    /// Events whose name contains `needle` (for experiment lookups).
    pub fn find(&self, needle: &str) -> Vec<&ScriptedEvent> {
        self.events
            .iter()
            .filter(|e| e.name.contains(needle))
            .collect()
    }

    /// Compiles interval indexes for `total_rounds`.
    pub fn compile(&mut self, total_rounds: u32) {
        let _ = total_rounds; // rounds bound is applied per event below
        let mut c = Compiled::default();
        for e in &self.events {
            let r = e.round_range(total_rounds);
            match e.kind {
                EventKind::VantageOutage => c.vantage.push((r.start, r.end)),
                EventKind::IpsScale(f) => c
                    .ips_scale
                    .entry(e.target)
                    .or_default()
                    .push((r.start, r.end, f)),
                EventKind::BgpOutage => c.bgp.entry(e.target).or_default().push((r.start, r.end)),
                EventKind::Reroute { via, extra_rtt_ns } => c
                    .reroute
                    .entry(e.target)
                    .or_default()
                    .push((r.start, r.end, via, extra_rtt_ns)),
                EventKind::Decommission => {
                    let entry = c.decommission.entry(e.target).or_insert(r.start);
                    *entry = (*entry).min(r.start);
                }
                EventKind::Activate => {
                    let entry = c.activate.entry(e.target).or_insert(r.start);
                    *entry = (*entry).max(r.start);
                }
                // Geo moves are monthly phenomena read directly off the
                // event list by the geolocation generator; night scaling is
                // compiled into per-block modifiers by the world.
                EventKind::GeoMove { .. } | EventKind::NightScale(_) => {}
            }
        }
        c.vantage.sort_unstable();
        for v in c.ips_scale.values_mut() {
            v.sort_by_key(|(s, ..)| *s);
        }
        for v in c.bgp.values_mut() {
            v.sort_unstable();
        }
        for v in c.reroute.values_mut() {
            v.sort_by_key(|(s, ..)| *s);
        }
        self.compiled = Some(c);
    }

    fn compiled(&self) -> &Compiled {
        self.compiled
            .as_ref()
            .expect("Script::compile must run before queries")
    }

    /// Whether the vantage point is offline at `round`.
    pub fn vantage_offline(&self, round: u32) -> bool {
        self.compiled()
            .vantage
            .iter()
            .any(|&(s, e)| round >= s && round < e)
    }

    /// Combined responsiveness scale over the matching targets at `round`.
    pub fn ips_scale(&self, round: u32, targets: &[EventTarget]) -> f64 {
        let c = self.compiled();
        let mut scale = 1.0;
        for t in targets {
            if let Some(intervals) = c.ips_scale.get(t) {
                for &(s, e, f) in intervals {
                    if round >= s && round < e {
                        scale *= f;
                    }
                }
            }
        }
        scale
    }

    /// Whether any matching target is under a BGP outage at `round`
    /// (including decommission/activation bounds).
    pub fn bgp_down(&self, round: u32, targets: &[EventTarget]) -> bool {
        let c = self.compiled();
        for t in targets {
            if let Some(intervals) = c.bgp.get(t) {
                if intervals.iter().any(|&(s, e)| round >= s && round < e) {
                    return true;
                }
            }
            if let Some(&d) = c.decommission.get(t) {
                if round >= d {
                    return true;
                }
            }
            if let Some(&a) = c.activate.get(t) {
                if round < a {
                    return true;
                }
            }
        }
        false
    }

    /// The active reroute at `round` for the targets, if any: `(via, extra
    /// RTT)`. The largest extra delay wins when several overlap.
    pub fn reroute(&self, round: u32, targets: &[EventTarget]) -> Option<(Asn, u64)> {
        let c = self.compiled();
        let mut best: Option<(Asn, u64)> = None;
        for t in targets {
            if let Some(intervals) = c.reroute.get(t) {
                for &(s, e, via, extra) in intervals {
                    if round >= s && round < e && best.map(|(_, b)| extra > b).unwrap_or(true) {
                        best = Some((via, extra));
                    }
                }
            }
        }
        best
    }

    /// All BGP state-change rounds for a target (for event-log building):
    /// returns sorted `(round, down)` transitions within `[0, total)`.
    pub fn bgp_transitions(&self, target: EventTarget, total: u32) -> Vec<(u32, bool)> {
        // Evaluate state only at candidate boundaries.
        let c = self.compiled();
        let mut boundaries = vec![0u32];
        if let Some(intervals) = c.bgp.get(&target) {
            for &(s, e) in intervals {
                boundaries.push(s);
                boundaries.push(e);
            }
        }
        if let Some(&d) = c.decommission.get(&target) {
            boundaries.push(d);
        }
        if let Some(&a) = c.activate.get(&target) {
            boundaries.push(a);
        }
        boundaries.retain(|&b| b < total);
        boundaries.sort_unstable();
        boundaries.dedup();
        let targets = [target];
        let mut out = Vec::new();
        let mut last: Option<bool> = None;
        for b in boundaries {
            let down = self.bgp_down(b, &targets);
            if last != Some(down) {
                out.push((b, down));
                last = Some(down);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_types::CAMPAIGN_START;

    fn ts(days: i64) -> Timestamp {
        CAMPAIGN_START.plus_seconds(days * 86_400)
    }

    fn event(
        name: &str,
        target: EventTarget,
        kind: EventKind,
        d0: i64,
        d1: Option<i64>,
    ) -> ScriptedEvent {
        ScriptedEvent {
            name: name.into(),
            target,
            kind,
            start: ts(d0),
            end: d1.map(ts),
        }
    }

    #[test]
    fn round_range_clamps() {
        let e = event("x", EventTarget::Country, EventKind::BgpOutage, 1, Some(3));
        assert_eq!(e.round_range(10_000), 12..36);
        assert_eq!(e.round_range(20), 12..20);
        // Open-ended runs to the campaign end.
        let open = event("x", EventTarget::Country, EventKind::BgpOutage, 1, None);
        assert_eq!(open.round_range(100), 12..100);
    }

    #[test]
    fn vantage_outage_lookup() {
        let mut s = Script::new();
        s.push(event(
            "gap",
            EventTarget::Country,
            EventKind::VantageOutage,
            2,
            Some(4),
        ));
        s.compile(1000);
        assert!(!s.vantage_offline(23));
        assert!(s.vantage_offline(24));
        assert!(s.vantage_offline(47));
        assert!(!s.vantage_offline(48));
    }

    #[test]
    fn ips_scales_multiply_across_targets() {
        let mut s = Script::new();
        s.push(event(
            "regional damage",
            EventTarget::Region(Oblast::Kherson),
            EventKind::IpsScale(0.5),
            0,
            Some(10),
        ));
        s.push(event(
            "as trouble",
            EventTarget::As(Asn(25482)),
            EventKind::IpsScale(0.4),
            0,
            Some(10),
        ));
        s.compile(1000);
        let targets = [
            EventTarget::As(Asn(25482)),
            EventTarget::Region(Oblast::Kherson),
            EventTarget::Country,
        ];
        assert!((s.ips_scale(0, &targets) - 0.2).abs() < 1e-12);
        // Only the region matches for another AS.
        let other = [
            EventTarget::As(Asn(1)),
            EventTarget::Region(Oblast::Kherson),
        ];
        assert!((s.ips_scale(0, &other) - 0.5).abs() < 1e-12);
        // After the window: no effect.
        assert_eq!(s.ips_scale(200, &targets), 1.0);
    }

    #[test]
    fn bgp_outage_decommission_activation() {
        let mut s = Script::new();
        s.push(event(
            "cable",
            EventTarget::As(Asn(1)),
            EventKind::BgpOutage,
            10,
            Some(13),
        ));
        s.push(event(
            "gone",
            EventTarget::As(Asn(2)),
            EventKind::Decommission,
            100,
            None,
        ));
        s.push(event(
            "born",
            EventTarget::As(Asn(3)),
            EventKind::Activate,
            50,
            None,
        ));
        s.compile(10_000);
        let t1 = [EventTarget::As(Asn(1))];
        assert!(!s.bgp_down(119, &t1));
        assert!(s.bgp_down(120, &t1));
        assert!(s.bgp_down(155, &t1));
        assert!(!s.bgp_down(156, &t1));
        let t2 = [EventTarget::As(Asn(2))];
        assert!(!s.bgp_down(1199, &t2));
        assert!(s.bgp_down(1200, &t2));
        assert!(s.bgp_down(9999, &t2));
        let t3 = [EventTarget::As(Asn(3))];
        assert!(s.bgp_down(0, &t3));
        assert!(s.bgp_down(599, &t3));
        assert!(!s.bgp_down(600, &t3));
    }

    #[test]
    fn reroute_largest_delay_wins() {
        let mut s = Script::new();
        s.push(event(
            "reroute-region",
            EventTarget::Region(Oblast::Kherson),
            EventKind::Reroute {
                via: Asn(12389),
                extra_rtt_ns: 30_000_000,
            },
            0,
            Some(100),
        ));
        s.push(event(
            "reroute-as",
            EventTarget::As(Asn(25482)),
            EventKind::Reroute {
                via: Asn(201776),
                extra_rtt_ns: 50_000_000,
            },
            0,
            Some(100),
        ));
        s.compile(10_000);
        let targets = [
            EventTarget::As(Asn(25482)),
            EventTarget::Region(Oblast::Kherson),
        ];
        let (via, extra) = s.reroute(10, &targets).unwrap();
        assert_eq!(via, Asn(201776));
        assert_eq!(extra, 50_000_000);
        assert!(s.reroute(2000, &targets).is_none());
    }

    #[test]
    fn transitions_for_event_log() {
        let mut s = Script::new();
        s.push(event(
            "cable",
            EventTarget::As(Asn(1)),
            EventKind::BgpOutage,
            10,
            Some(13),
        ));
        s.compile(10_000);
        let tr = s.bgp_transitions(EventTarget::As(Asn(1)), 10_000);
        assert_eq!(tr, vec![(0, false), (120, true), (156, false)]);
        // An untouched AS is up from round 0.
        let tr = s.bgp_transitions(EventTarget::As(Asn(9)), 10_000);
        assert_eq!(tr, vec![(0, false)]);
    }

    #[test]
    fn find_by_name() {
        let mut s = Script::new();
        s.push(event(
            "Kakhovka dam",
            EventTarget::Region(Oblast::Kherson),
            EventKind::IpsScale(0.3),
            0,
            Some(1),
        ));
        assert_eq!(s.find("Kakhovka").len(), 1);
        assert!(s.find("Chernobyl").is_empty());
    }

    #[test]
    #[should_panic(expected = "compile")]
    fn querying_uncompiled_script_panics() {
        let s = Script::new();
        s.vantage_offline(0);
    }
}
