//! Internet background radiation (IBR): the passive signal's source.
//!
//! Chocolatine (Guillot et al., arXiv 1906.04426) detects outages from
//! *unsolicited* traffic arriving at a darknet — scanning probes from
//! infected hosts and backscatter from spoofed-source floods — with no
//! active measurement at all. The volume a network radiates tracks its
//! live host population: when an AS loses power, connectivity or routing,
//! its contribution to the darknet goes quiet, and a seasonal predictor
//! over the per-AS volume sees the drop.
//!
//! This module is the simulator side of that story:
//!
//! * [`IbrConfig`] — the serde-loadable knob set: emission rate per
//!   responder, backscatter share, and scheduled *dark-darknet* windows
//!   (the collector itself failing — the passive path's own outage mode);
//! * [`block_volume`] — the deterministic per-block emitter. Volume is
//!   driven by [`World::block_truth`]'s responsive count, so diurnal
//!   cycles, power blackouts, scripted war events and BGP withdrawals all
//!   modulate the radiation exactly as they modulate reachability — and an
//!   unrouted block radiates nothing (its packets cannot leave).
//!
//! Determinism: every noise draw comes from the world RNG's **`"ibr"`
//! domain**, disjoint from `"faults"`, `"feeds"`, `"vantage-faults"` and
//! every other consumer, so enabling IBR never perturbs an existing run's
//! draws — IBR-disabled campaigns stay bit-identical.

use crate::rng::WorldRng;
use crate::world::World;
use fbs_types::Round;
use serde::{Deserialize, Serialize};

/// Salts decorrelating the IBR decision streams (the `0xFC..` range;
/// wire faults own `0xFA..`, feed faults `0xFB..`).
mod salt {
    /// Per-round volume jitter.
    pub const JITTER: u64 = 0xFC01;
    /// Stable per-block emission gain.
    pub const GAIN: u64 = 0xFC02;
    /// Backscatter burst arrival.
    pub const BURST: u64 = 0xFC03;
}

/// One scheduled window in which the darknet collector itself is dark:
/// no IBR is observed at all, for any AS. The passive path's analogue of
/// a vantage blackout — the predictor must *freeze*, not read silence as
/// a country-wide outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IbrDarkWindow {
    /// First dark round (inclusive).
    pub start: u32,
    /// First observed round after the window (exclusive).
    pub end: u32,
}

impl IbrDarkWindow {
    /// Whether the collector is dark at `round`.
    pub fn covers(&self, round: Round) -> bool {
        round.0 >= self.start && round.0 < self.end
    }
}

/// Configuration of the passive background-radiation signal.
///
/// The defaults model a modest /8-scale darknet: every live responder
/// contributes a couple dozen unsolicited packets per two-hour round, a
/// third of it bursty backscatter, with sub-Poisson jitter (the same
/// persistent-host argument that gives full-block scans their high SNR
/// applies to the infected population radiating the traffic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct IbrConfig {
    /// Mean unsolicited packets per live responder per round reaching the
    /// darknet (scanning worms, misconfiguration, backscatter combined).
    pub rate_per_responder: f64,
    /// Share of the volume that is backscatter: bursty, arriving in
    /// episodes rather than as a steady hum. Raises round-to-round
    /// variance without moving the mean.
    pub backscatter_share: f64,
    /// Scheduled collector outages. During a dark window no volume is
    /// observed for any AS; the round is recorded as *dark*, not as zero.
    pub dark_windows: Vec<IbrDarkWindow>,
}

impl Default for IbrConfig {
    fn default() -> Self {
        IbrConfig {
            rate_per_responder: 24.0,
            backscatter_share: 0.3,
            dark_windows: Vec::new(),
        }
    }
}

impl IbrConfig {
    /// A config with the collector dark over the given round windows.
    pub fn with_dark_windows(windows: Vec<IbrDarkWindow>) -> Self {
        IbrConfig {
            dark_windows: windows,
            ..IbrConfig::default()
        }
    }

    /// Validates rates and window shapes.
    pub fn validate(&self) -> fbs_types::Result<()> {
        if !self.rate_per_responder.is_finite() || self.rate_per_responder <= 0.0 {
            return Err(fbs_types::FbsError::config(format!(
                "ibr rate_per_responder={} must be finite and positive",
                self.rate_per_responder
            )));
        }
        if !(0.0..=1.0).contains(&self.backscatter_share) || !self.backscatter_share.is_finite() {
            return Err(fbs_types::FbsError::config(format!(
                "ibr backscatter_share={} outside 0..=1",
                self.backscatter_share
            )));
        }
        for w in &self.dark_windows {
            if w.start >= w.end {
                return Err(fbs_types::FbsError::config(format!(
                    "ibr dark window {}..{} is empty or inverted",
                    w.start, w.end
                )));
            }
        }
        Ok(())
    }

    /// Whether the darknet collector is dark at `round`.
    pub fn dark_at(&self, round: Round) -> bool {
        self.dark_windows.iter().any(|w| w.covers(round))
    }
}

/// Derives the IBR RNG domain from a world RNG. Disjoint from every other
/// domain: adding the passive signal never changes an existing draw.
pub fn ibr_domain(world_rng: WorldRng) -> WorldRng {
    world_rng.domain("ibr")
}

/// The unsolicited packet volume one block radiates toward the darknet at
/// `round` — deterministic in `(seed, round, block)`.
///
/// Shape: `responsive × rate × gain`, where `responsive` is the world's
/// ground-truth live count (already carrying diurnal seasonality, power
/// modulation and scripted events), `gain` is a stable per-block factor
/// (networks differ in infection density), plus sub-Poisson jitter and an
/// occasional backscatter burst. An unrouted block contributes zero: its
/// packets cannot reach the collector.
pub fn block_volume(
    world: &World,
    cfg: &IbrConfig,
    rng: &WorldRng,
    round: Round,
    bi: usize,
) -> u64 {
    let truth = world.block_truth(round, bi);
    if !truth.routed || truth.responsive == 0 {
        return 0;
    }
    let r = round.0 as u64;
    let b = bi as u64;
    // Stable per-block emission gain in [0.6, 1.4): infection density and
    // NAT depth vary per network but not per round.
    let gain = 0.6 + 0.8 * rng.uniform3(b, salt::GAIN, 0);
    let steady = truth.responsive as f64 * cfg.rate_per_responder * (1.0 - cfg.backscatter_share);
    // Backscatter arrives in episodes: the expected share is preserved,
    // but roughly every third round carries a triple burst.
    let burst = if rng.chance3(1.0 / 3.0, r, b, salt::BURST) {
        3.0
    } else {
        0.0
    };
    let back = truth.responsive as f64 * cfg.rate_per_responder * cfg.backscatter_share * burst;
    let mean = (steady + back) * gain;
    // Sub-Poisson jitter, like the scan-path responder counts: the same
    // hosts radiate round after round.
    let sd = 0.1 * mean.sqrt() + 0.01 * mean;
    let z = rng.normal3(r, b, salt::JITTER);
    (mean + z * sd).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{EventKind, EventTarget, Script, ScriptedEvent};
    use crate::spec::{AsProfile, AsSpec, BlockSpec, WorldConfig, WorldScale};
    use fbs_types::{Asn, Oblast, Prefix, CAMPAIGN_START};

    fn world(script: Script) -> World {
        let prefix: Prefix = "193.151.240.0/23".parse().unwrap();
        let ases = vec![AsSpec {
            asn: Asn(25482),
            name: "Status".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: vec![prefix],
            base_rtt_ns: 40_000_000,
            upstream: Asn(6849),
        }];
        let blocks = prefix
            .blocks()
            .map(|b| BlockSpec {
                block: b,
                owner: Asn(25482),
                home: Oblast::Kherson,
                base_responders: 40,
                geo_population: 200,
                response_prob: 0.85,
                diurnal: true,
                power_backup: 0.5,
                annual_decay: 0.9,
            })
            .collect();
        World::new(
            WorldConfig {
                seed: 11,
                scale: WorldScale::Tiny,
                rounds: 600,
                ases,
                blocks,
            },
            script,
            vec![],
        )
        .unwrap()
    }

    fn ts(days: i64) -> fbs_types::Timestamp {
        CAMPAIGN_START.plus_seconds(days * 86_400)
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(IbrConfig::default().validate().is_ok());
        let bad = IbrConfig {
            rate_per_responder: 0.0,
            ..IbrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = IbrConfig {
            backscatter_share: 1.5,
            ..IbrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = IbrConfig::with_dark_windows(vec![IbrDarkWindow { start: 10, end: 10 }]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn dark_windows_cover_their_rounds() {
        let cfg = IbrConfig::with_dark_windows(vec![IbrDarkWindow {
            start: 100,
            end: 140,
        }]);
        assert!(!cfg.dark_at(Round(99)));
        assert!(cfg.dark_at(Round(100)));
        assert!(cfg.dark_at(Round(139)));
        assert!(!cfg.dark_at(Round(140)));
        assert!(!IbrConfig::default().dark_at(Round(100)));
    }

    #[test]
    fn volume_is_deterministic_and_positive_for_live_blocks() {
        let w = world(Script::new());
        let cfg = IbrConfig::default();
        let rng = ibr_domain(w.rng());
        for r in [0u32, 7, 100, 599] {
            for bi in 0..w.blocks().len() {
                let a = block_volume(&w, &cfg, &rng, Round(r), bi);
                let b = block_volume(&w, &cfg, &rng, Round(r), bi);
                assert_eq!(a, b);
            }
        }
        assert!(block_volume(&w, &cfg, &rng, Round(6), 0) > 0);
    }

    #[test]
    fn ibr_domain_is_disjoint_from_other_consumers() {
        let rng = WorldRng::new(42);
        let ibr = ibr_domain(rng);
        assert_ne!(ibr.hash3(1, 2, 3), rng.domain("faults").hash3(1, 2, 3));
        assert_ne!(ibr.hash3(1, 2, 3), rng.domain("feeds").hash3(1, 2, 3));
        assert_ne!(
            ibr.hash3(1, 2, 3),
            rng.domain("vantage-faults").hash3(1, 2, 3)
        );
    }

    #[test]
    fn bgp_outage_silences_the_radiation() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "cable cut".into(),
            target: EventTarget::As(Asn(25482)),
            kind: EventKind::BgpOutage,
            start: ts(10),
            end: Some(ts(13)),
        });
        let w = world(s);
        let cfg = IbrConfig::default();
        let rng = ibr_domain(w.rng());
        let before = Round(9 * 12);
        let during = Round(11 * 12);
        assert!(block_volume(&w, &cfg, &rng, before, 0) > 0);
        assert_eq!(block_volume(&w, &cfg, &rng, during, 0), 0);
    }

    #[test]
    fn volume_dips_at_night_with_diurnal_hosts() {
        let w = world(Script::new());
        let cfg = IbrConfig::default();
        let rng = ibr_domain(w.rng());
        // Average over many days to wash out burst noise: local night
        // (round ≡ 13 mod 12 is 00:00 UTC = 02:00 local) vs midday.
        let mut night = 0u64;
        let mut day = 0u64;
        for d in 0..40u32 {
            night += block_volume(&w, &cfg, &rng, Round(d * 12 + 1), 0);
            day += block_volume(&w, &cfg, &rng, Round(d * 12 + 6), 0);
        }
        assert!(night < day, "night {night} vs day {day}");
    }

    #[test]
    fn rate_scales_the_volume() {
        let w = world(Script::new());
        let rng = ibr_domain(w.rng());
        let lo = IbrConfig {
            rate_per_responder: 4.0,
            ..IbrConfig::default()
        };
        let hi = IbrConfig {
            rate_per_responder: 40.0,
            ..IbrConfig::default()
        };
        let sum = |cfg: &IbrConfig| -> u64 {
            (0..60)
                .map(|r| block_volume(&w, cfg, &rng, Round(r), 0))
                .sum()
        };
        assert!(sum(&hi) > 5 * sum(&lo));
    }
}
