//! The assembled world: truth queries, BGP log, data-source exports.
//!
//! Truth queries run tens of millions of times per campaign, so the world
//! precompiles two lookup structures at construction:
//!
//! * **per-block modifier timelines** — every scripted event is distributed
//!   to the blocks it touches (by block, AS, region or country), leaving
//!   each block with small sorted interval lists that answer "am I
//!   unreachable / scaled / rerouted at round r" with a binary search;
//! * **a per-round power bitmask** — one `u32` of oblast bits per round,
//!   so the blackout check is a single AND in the hot path.

use crate::power::{PowerCalendar, StrikeEvent};
use crate::rng::WorldRng;
use crate::script::{EventKind, EventTarget, Script};
use crate::spec::{BlockSpec, WorldConfig};
use fbs_bgp::EventLog;
use fbs_prober::ResponderBitmap;
use fbs_types::{Asn, BlockId, MonthId, Oblast, Result, Round};
use std::collections::BTreeMap;

/// Ground truth for one block at one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockTruth {
    /// Whether the block is reachable through BGP.
    pub routed: bool,
    /// Responder-pool size this month (the "ever-active" ground truth).
    pub pool: u16,
    /// Addresses that answer a probe this round.
    pub responsive: u32,
    /// Round-trip time to the block this round, nanoseconds.
    pub rtt_ns: u64,
    /// Per-address response probability in effect (for Trinocular
    /// emulation, which probes addresses individually).
    pub response_prob: f64,
}

/// Per-block compiled event effects.
#[derive(Debug, Clone, Default)]
struct BlockMods {
    /// Merged, sorted, non-overlapping unreachability intervals.
    down: Vec<(u32, u32)>,
    /// Responsiveness scale intervals, sorted by start (may overlap —
    /// factors multiply).
    scale: Vec<(u32, u32, f64)>,
    scale_max_len: u32,
    /// Reroute intervals `(start, end, extra rtt)`; the largest extra wins.
    reroute: Vec<(u32, u32, u64)>,
    reroute_max_len: u32,
    /// Night-hours-only scale intervals.
    night: Vec<(u32, u32, f64)>,
    night_max_len: u32,
}

impl BlockMods {
    fn finalize(&mut self) {
        // Union-merge the down intervals.
        self.down.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.down.len());
        for &(s, e) in &self.down {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        self.down = merged;
        self.scale.sort_by_key(|&(s, ..)| s);
        self.scale_max_len = self.scale.iter().map(|&(s, e, _)| e - s).max().unwrap_or(0);
        self.reroute.sort_by_key(|&(s, ..)| s);
        self.reroute_max_len = self
            .reroute
            .iter()
            .map(|&(s, e, _)| e - s)
            .max()
            .unwrap_or(0);
        self.night.sort_by_key(|&(s, ..)| s);
        self.night_max_len = self.night.iter().map(|&(s, e, _)| e - s).max().unwrap_or(0);
    }

    #[inline]
    fn night_scale_at(&self, r: u32) -> f64 {
        if self.night.is_empty() {
            return 1.0;
        }
        let mut factor = 1.0;
        let hi = self.night.partition_point(|&(s, ..)| s <= r);
        let mut i = hi;
        while i > 0 {
            i -= 1;
            let (s, e, f) = self.night[i];
            if s + self.night_max_len < r {
                break;
            }
            if r >= s && r < e {
                factor *= f;
            }
        }
        factor
    }

    #[inline]
    fn is_down(&self, r: u32) -> bool {
        // Find the last interval starting at or before r.
        let idx = self.down.partition_point(|&(s, _)| s <= r);
        idx > 0 && r < self.down[idx - 1].1
    }

    #[inline]
    fn scale_at(&self, r: u32) -> f64 {
        if self.scale.is_empty() {
            return 1.0;
        }
        let mut factor = 1.0;
        let hi = self.scale.partition_point(|&(s, ..)| s <= r);
        let mut i = hi;
        while i > 0 {
            i -= 1;
            let (s, e, f) = self.scale[i];
            if s + self.scale_max_len < r {
                break;
            }
            if r >= s && r < e {
                factor *= f;
            }
        }
        factor
    }

    #[inline]
    fn reroute_extra(&self, r: u32) -> u64 {
        if self.reroute.is_empty() {
            return 0;
        }
        let mut best = 0u64;
        let hi = self.reroute.partition_point(|&(s, ..)| s <= r);
        let mut i = hi;
        while i > 0 {
            i -= 1;
            let (s, e, extra) = self.reroute[i];
            if s + self.reroute_max_len < r {
                break;
            }
            if r >= s && r < e {
                best = best.max(extra);
            }
        }
        best
    }
}

/// The simulated world. See the crate docs for the two consumption paths.
pub struct World {
    config: WorldConfig,
    script: Script,
    power: PowerCalendar,
    rng: WorldRng,
    /// Blocks sorted by block id; parallel to truth queries' `block_idx`.
    blocks: Vec<BlockSpec>,
    /// Per-block compiled modifiers.
    mods: Vec<BlockMods>,
    /// For each block, the owner's index in `config.ases`.
    owner_idx: Vec<usize>,
    /// ASN → index in `config.ases`.
    as_index: BTreeMap<Asn, usize>,
    /// Month index per round.
    month_of_round: Vec<u16>,
    /// Power-off oblast bitmask per round.
    power_mask: Vec<u32>,
    /// Vantage-offline flag per round.
    vantage_offline: Vec<bool>,
}

impl World {
    /// Assembles a world from its parts. Validates the configuration,
    /// compiles the script, and builds the fast-path indexes.
    pub fn new(config: WorldConfig, mut script: Script, strikes: Vec<StrikeEvent>) -> Result<Self> {
        config.validate()?;
        script.compile(config.rounds);
        let rng = WorldRng::new(config.seed);
        let power = PowerCalendar::new(rng.domain("power"), strikes);

        let mut blocks = config.blocks.clone();
        blocks.sort_by_key(|b| b.block);
        let as_index: BTreeMap<Asn, usize> = config
            .ases
            .iter()
            .enumerate()
            .map(|(i, a)| (a.asn, i))
            .collect();
        let owner_idx: Vec<usize> = blocks
            .iter()
            .map(|b| *as_index.get(&b.owner).expect("validated owner"))
            .collect();

        let first_month = MonthId::campaign_first();
        let month_of_round: Vec<u16> = (0..config.rounds)
            .map(|r| (Round(r).month().0 - first_month.0) as u16)
            .collect();

        // --- Compile per-block modifier timelines. ---
        let block_pos: BTreeMap<BlockId, usize> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.block, i))
            .collect();
        let mut by_as: BTreeMap<Asn, Vec<usize>> = BTreeMap::new();
        let mut by_region: BTreeMap<Oblast, Vec<usize>> = BTreeMap::new();
        for (i, b) in blocks.iter().enumerate() {
            by_as.entry(b.owner).or_default().push(i);
            by_region.entry(b.home).or_default().push(i);
        }
        let mut mods: Vec<BlockMods> = vec![BlockMods::default(); blocks.len()];
        let all_indices: Vec<usize> = (0..blocks.len()).collect();
        let empty: Vec<usize> = Vec::new();
        let mut vantage_offline = vec![false; config.rounds as usize];
        for e in script.events() {
            let range = e.round_range(config.rounds);
            if range.is_empty() && !matches!(e.kind, EventKind::Decommission | EventKind::Activate)
            {
                continue;
            }
            let targets: &Vec<usize> = match e.target {
                EventTarget::Block(b) => {
                    if let Some(&i) = block_pos.get(&b) {
                        apply_event(&mut mods[i], e, &range, config.rounds);
                    }
                    continue;
                }
                EventTarget::As(a) => by_as.get(&a).unwrap_or(&empty),
                EventTarget::Region(o) => by_region.get(&o).unwrap_or(&empty),
                EventTarget::Country => {
                    if matches!(e.kind, EventKind::VantageOutage) {
                        for r in range.clone() {
                            vantage_offline[r as usize] = true;
                        }
                        continue;
                    }
                    &all_indices
                }
            };
            for &i in targets {
                apply_event(&mut mods[i], e, &range, config.rounds);
            }
        }
        for m in &mut mods {
            m.finalize();
        }

        // --- Power bitmask per round. ---
        let mut power_mask = vec![0u32; config.rounds as usize];
        for (r, mask) in power_mask.iter_mut().enumerate() {
            let round = Round(r as u32);
            for o in fbs_types::ALL_OBLASTS {
                if power.is_off(o, round) {
                    *mask |= 1 << o.index();
                }
            }
        }

        Ok(World {
            config,
            script,
            power,
            rng,
            blocks,
            mods,
            owner_idx,
            as_index,
            month_of_round,
            power_mask,
            vantage_offline,
        })
    }

    /// The configuration the world was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The compiled event script.
    pub fn script(&self) -> &Script {
        &self.script
    }

    /// The power calendar.
    pub fn power(&self) -> &PowerCalendar {
        &self.power
    }

    /// Number of simulated rounds.
    pub fn rounds(&self) -> u32 {
        self.config.rounds
    }

    /// Blocks in truth-query order (sorted by block id).
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// Index of a block id in truth-query order.
    pub fn block_index(&self, block: BlockId) -> Option<usize> {
        self.blocks.binary_search_by_key(&block, |b| b.block).ok()
    }

    /// The AS spec for an ASN.
    pub fn as_spec(&self, asn: Asn) -> Option<&crate::spec::AsSpec> {
        self.as_index.get(&asn).map(|&i| &self.config.ases[i])
    }

    /// Whether the vantage point can measure at all this round.
    pub fn vantage_online(&self, round: Round) -> bool {
        !self
            .vantage_offline
            .get(round.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Month index (0-based from campaign start) of a round.
    pub fn month_index(&self, round: Round) -> u32 {
        self.month_of_round[round.0 as usize] as u32
    }

    /// The rounds of `month` clamped to this world's simulated span.
    pub fn month_rounds(&self, month: MonthId) -> std::ops::Range<u32> {
        let r = month.campaign_rounds();
        r.start.min(self.config.rounds)..r.end.min(self.config.rounds)
    }

    /// Whether the oblast's grid is down at `round` (precomputed).
    #[inline]
    pub fn power_off(&self, oblast: Oblast, round: Round) -> bool {
        self.power_mask[round.0 as usize] & (1 << oblast.index()) != 0
    }

    /// Whether the block is unreachable (BGP-style) at `round`.
    #[inline]
    pub fn block_down(&self, round: Round, bi: usize) -> bool {
        self.mods[bi].is_down(round.0)
    }

    /// The per-address response probability for a block at a round, after
    /// all modifiers (script scaling, diurnal cycle, power state).
    pub fn response_prob(&self, round: Round, bi: usize) -> f64 {
        let b = &self.blocks[bi];
        let mut p = b.response_prob * self.mods[bi].scale_at(round.0);
        // Ukraine is UTC+2 (ignoring DST): quiet hours 01:00–07:00.
        let local_hour = (round.hour() as u32 + 2) % 24;
        let night = (1..7).contains(&local_hour);
        if night {
            if b.diurnal {
                // Ambient day/night usage cycle: a visible dip, but above
                // the 80% detection bar for a steady provider.
                p *= 0.82;
            }
            p *= self.mods[bi].night_scale_at(round.0);
        }
        if self.power_off(b.home, round) {
            p *= b.power_backup;
        }
        p.clamp(0.0, 1.0)
    }

    /// Oracle-path truth: responsive count, routing state and RTT.
    pub fn block_truth(&self, round: Round, bi: usize) -> BlockTruth {
        let b = &self.blocks[bi];
        let routed = !self.block_down(round, bi);
        let pool = b.responders_at(self.month_index(round));
        if !routed || pool == 0 {
            return BlockTruth {
                routed,
                pool,
                responsive: 0,
                rtt_ns: 0,
                response_prob: 0.0,
            };
        }
        let p = self.response_prob(round, bi);
        // Responsive counts are *persistent*, not i.i.d.: the same hosts
        // answer round after round, so round-to-round variance is far below
        // binomial (the paper measures an FBS signal-to-noise ratio near
        // 100, versus Trinocular's ~7.6). Model: expected count plus a
        // small sub-Poisson jitter.
        let mean = pool as f64 * p;
        let sd = 0.1 * mean.sqrt() + 0.005 * mean;
        let z = self.rng.normal3(round.0 as u64, b.block.0 as u64, 1);
        let responsive = (mean + z * sd).round().clamp(0.0, pool as f64) as u32;
        let rtt_ns = self.rtt_ns(round, bi);
        BlockTruth {
            routed,
            pool,
            responsive,
            rtt_ns,
            response_prob: p,
        }
    }

    /// Round-trip time to a block this round (base + rerouting + jitter).
    pub fn rtt_ns(&self, round: Round, bi: usize) -> u64 {
        let b = &self.blocks[bi];
        let spec = &self.config.ases[self.owner_idx[bi]];
        let extra = self.mods[bi].reroute_extra(round.0);
        let jitter = self.rng.uniform3(round.0 as u64, b.block.0 as u64, 2);
        let base = spec.base_rtt_ns + extra;
        base + (base as f64 * 0.1 * jitter) as u64
    }

    /// The long-term per-address availability Trinocular observes for a
    /// block: the block's response probability damped by an address-level
    /// intermittence factor. Full-block scans see *any* response from 256
    /// targets; Trinocular probes single addresses, and real edge hosts
    /// answer only a minority of probes (the Trinocular paper's `A` sits
    /// mostly in 0.1–0.5) — which is exactly what makes its belief flap
    /// on sparse blocks (paper Fig. 27).
    pub fn trin_availability(&self, round: Round, bi: usize) -> f64 {
        let f = 0.12 + 0.38 * self.rng.uniform3(self.blocks[bi].block.0 as u64, 31, 7);
        (self.response_prob(round, bi) * f).clamp(0.0, 1.0)
    }

    /// Wire-path truth: the exact responder bitmap for a block this round.
    ///
    /// The responder pool occupies deterministically-chosen host octets
    /// (stable within a month); each pool member answers independently with
    /// the round's response probability. Consistent in expectation with
    /// [`Self::block_truth`], though sampled independently.
    pub fn block_bitmap(&self, round: Round, bi: usize) -> ResponderBitmap {
        let b = &self.blocks[bi];
        if self.block_down(round, bi) {
            return ResponderBitmap::EMPTY;
        }
        let month = self.month_index(round) as u64;
        let pool = b.responders_at(month as u32);
        let p = self.response_prob(round, bi);
        let mut bm = ResponderBitmap::EMPTY;
        let geo = self.rng.domain("hosts");
        for i in 0..pool {
            // Pool member i lives at a stable pseudorandom host octet.
            let host = geo.below3(254, b.block.0 as u64, month, i as u64) as u8 + 1;
            if self
                .rng
                .chance3(p, round.0 as u64, b.block.0 as u64, 1000 + i as u64)
            {
                bm.set(host);
            }
        }
        bm
    }

    /// Builds the RouteViews-style BGP event log for the whole campaign.
    ///
    /// One announcement per prefix at its owner's activation, withdrawals
    /// and re-announcements at every scripted AS-level transition, with AS
    /// paths reflecting active rerouting. (Block-level events model
    /// more-specific unreachability and do not surface in the collector's
    /// table, matching the paper's Status-block case.)
    pub fn bgp_log(&self) -> EventLog {
        let mut log = EventLog::new();
        let total = self.config.rounds;
        for spec in &self.config.ases {
            let transitions = self
                .script
                .bgp_transitions(EventTarget::As(spec.asn), total);
            for prefix in &spec.prefixes {
                for &(round, down) in &transitions {
                    if down {
                        if round > 0 {
                            log.withdraw(Round(round), *prefix);
                        }
                    } else {
                        let path = self.as_path(spec.asn, Round(round));
                        log.announce(Round(round), *prefix, path);
                    }
                }
            }
        }
        log
    }

    /// The AS path from the collector to `asn` at `round`, honouring
    /// scripted reroutes.
    pub fn as_path(&self, asn: Asn, round: Round) -> Vec<Asn> {
        let spec = match self.as_index.get(&asn) {
            Some(&i) => &self.config.ases[i],
            None => return vec![asn],
        };
        let targets = [EventTarget::As(asn), EventTarget::Country];
        match self.script.reroute(round.0, &targets) {
            Some((via, _)) => vec![Asn(3356), via, spec.upstream, asn],
            None => vec![Asn(3356), spec.upstream, asn],
        }
    }

    /// Ever-active ground truth for a block over a month: the pool size if
    /// the block had any active round, else zero. (With per-round response
    /// probabilities ≥ 0.3 and ~360 rounds per month, every pool member
    /// responds at least once with near certainty; see DESIGN.md.)
    pub fn ever_active(&self, month_rounds: std::ops::Range<u32>, bi: usize) -> u16 {
        let mut pool = 0;
        let mut any_active = false;
        for r in month_rounds {
            let round = Round(r);
            if !self.block_down(round, bi) {
                pool = self.blocks[bi].responders_at(self.month_index(round));
                if self.response_prob(round, bi) > 0.0 {
                    any_active = true;
                    break;
                }
            }
        }
        if any_active {
            pool
        } else {
            0
        }
    }

    /// Per-oblast block indexes (for regional aggregation).
    pub fn blocks_by_oblast(&self) -> BTreeMap<Oblast, Vec<usize>> {
        let mut out: BTreeMap<Oblast, Vec<usize>> = BTreeMap::new();
        for (i, b) in self.blocks.iter().enumerate() {
            out.entry(b.home).or_default().push(i);
        }
        out
    }

    /// Per-AS block indexes.
    pub fn blocks_by_as(&self) -> BTreeMap<Asn, Vec<usize>> {
        let mut out: BTreeMap<Asn, Vec<usize>> = BTreeMap::new();
        for (i, b) in self.blocks.iter().enumerate() {
            out.entry(b.owner).or_default().push(i);
        }
        out
    }

    /// The coordinate-addressable random source (for sibling generators).
    pub fn rng(&self) -> WorldRng {
        self.rng
    }
}

/// Applies one event to one block's modifier set.
fn apply_event(
    m: &mut BlockMods,
    e: &crate::script::ScriptedEvent,
    range: &std::ops::Range<u32>,
    total: u32,
) {
    match e.kind {
        EventKind::BgpOutage => m.down.push((range.start, range.end)),
        EventKind::Decommission => m.down.push((range.start, total)),
        EventKind::Activate => m.down.push((0, range.start)),
        EventKind::IpsScale(f) => m.scale.push((range.start, range.end, f)),
        EventKind::Reroute { extra_rtt_ns, .. } => {
            m.reroute.push((range.start, range.end, extra_rtt_ns))
        }
        EventKind::NightScale(f) => m.night.push((range.start, range.end, f)),
        EventKind::VantageOutage | EventKind::GeoMove { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{EventKind, ScriptedEvent};
    use crate::spec::{AsProfile, AsSpec, WorldScale};
    use fbs_types::{CivilDate, Prefix, CAMPAIGN_START};

    fn test_world(script: Script, strikes: Vec<StrikeEvent>) -> World {
        let ases = vec![
            AsSpec {
                asn: Asn(25482),
                name: "Status".into(),
                profile: AsProfile::Regional,
                hq: Some(Oblast::Kherson),
                prefixes: vec!["193.151.240.0/22".parse::<Prefix>().unwrap()],
                base_rtt_ns: 40_000_000,
                upstream: Asn(6849),
            },
            AsSpec {
                asn: Asn(15895),
                name: "Kyivstar".into(),
                profile: AsProfile::National,
                hq: Some(Oblast::Kyiv),
                prefixes: vec!["176.8.0.0/22".parse::<Prefix>().unwrap()],
                base_rtt_ns: 30_000_000,
                upstream: Asn(3356),
            },
        ];
        let mut blocks = Vec::new();
        for (i, p) in ases[0].prefixes[0].blocks().enumerate() {
            blocks.push(BlockSpec {
                block: p,
                owner: Asn(25482),
                home: Oblast::Kherson,
                base_responders: 40,
                geo_population: 240,
                response_prob: 0.85,
                diurnal: i == 0,
                power_backup: 0.6,
                annual_decay: 0.8,
            });
        }
        for p in ases[1].prefixes[0].blocks() {
            blocks.push(BlockSpec {
                block: p,
                owner: Asn(15895),
                home: Oblast::Kyiv,
                base_responders: 60,
                geo_population: 256,
                response_prob: 0.7,
                diurnal: false,
                power_backup: 0.2,
                annual_decay: 0.95,
            });
        }
        let config = WorldConfig {
            seed: 99,
            scale: WorldScale::Tiny,
            rounds: 2400, // 200 days
            ases,
            blocks,
        };
        World::new(config, script, strikes).unwrap()
    }

    fn ts(days: i64) -> fbs_types::Timestamp {
        CAMPAIGN_START.plus_seconds(days * 86_400)
    }

    fn sbi(w: &World, i: u8) -> usize {
        w.block_index(BlockId::from_octets(193, 151, 240 + i))
            .unwrap()
    }

    fn kbi(w: &World, i: u8) -> usize {
        w.block_index(BlockId::from_octets(176, 8, i)).unwrap()
    }

    #[test]
    fn healthy_world_responds() {
        let w = test_world(Script::new(), vec![]);
        assert_eq!(w.blocks().len(), 8);
        let t = w.block_truth(Round(100), sbi(&w, 0));
        assert!(t.routed);
        assert_eq!(t.pool, 40);
        assert!(t.responsive > 20, "responsive {}", t.responsive);
        assert!(t.rtt_ns >= 40_000_000 && t.rtt_ns < 50_000_000);
    }

    #[test]
    fn truth_is_deterministic() {
        let a = test_world(Script::new(), vec![]);
        let b = test_world(Script::new(), vec![]);
        for r in [0u32, 7, 100, 2399] {
            for bi in 0..8 {
                assert_eq!(a.block_truth(Round(r), bi), b.block_truth(Round(r), bi));
                assert_eq!(a.block_bitmap(Round(r), bi), b.block_bitmap(Round(r), bi));
            }
        }
    }

    #[test]
    fn bgp_outage_silences_blocks() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "cable cut".into(),
            target: EventTarget::As(Asn(25482)),
            kind: EventKind::BgpOutage,
            start: ts(10),
            end: Some(ts(13)),
        });
        let w = test_world(s, vec![]);
        let during = Round(10 * 12 + 5);
        let t = w.block_truth(during, sbi(&w, 0));
        assert!(!t.routed);
        assert_eq!(t.responsive, 0);
        assert!(w.block_bitmap(during, sbi(&w, 0)).is_empty());
        // The other AS is unaffected.
        let other = w.block_truth(during, kbi(&w, 0));
        assert!(other.routed);
        assert!(other.responsive > 0);
        // After the window, service returns.
        let after = w.block_truth(Round(13 * 12 + 12), sbi(&w, 0));
        assert!(after.routed);
        assert!(after.responsive > 0);
    }

    #[test]
    fn block_level_event_hits_only_that_block() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "one block dark".into(),
            target: EventTarget::Block(BlockId::from_octets(193, 151, 241)),
            kind: EventKind::IpsScale(0.0),
            start: ts(5),
            end: Some(ts(6)),
        });
        let w = test_world(s, vec![]);
        let during = Round(5 * 12 + 6);
        assert_eq!(w.block_truth(during, sbi(&w, 1)).responsive, 0);
        assert!(
            w.block_truth(during, sbi(&w, 1)).routed,
            "IPS-scale keeps BGP up"
        );
        assert!(w.block_truth(during, sbi(&w, 0)).responsive > 0);
    }

    #[test]
    fn ips_scale_reduces_without_unrouting() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "seizure".into(),
            target: EventTarget::As(Asn(25482)),
            kind: EventKind::IpsScale(0.1),
            start: ts(20),
            end: Some(ts(22)),
        });
        let w = test_world(s, vec![]);
        let during = Round(20 * 12 + 6);
        let t = w.block_truth(during, sbi(&w, 1));
        assert!(t.routed);
        assert!(
            t.responsive < 15,
            "scaled responsiveness should collapse, got {}",
            t.responsive
        );
    }

    #[test]
    fn overlapping_scales_multiply() {
        let mut s = Script::new();
        for target in [
            EventTarget::As(Asn(25482)),
            EventTarget::Region(Oblast::Kherson),
        ] {
            s.push(ScriptedEvent {
                name: "overlap".into(),
                target,
                kind: EventKind::IpsScale(0.5),
                start: ts(30),
                end: Some(ts(31)),
            });
        }
        let w = test_world(s, vec![]);
        let p_during = w.response_prob(Round(30 * 12 + 6), sbi(&w, 0));
        let p_before = w.response_prob(Round(29 * 12 + 6), sbi(&w, 0));
        assert!((p_during - p_before * 0.25).abs() < 1e-9);
    }

    #[test]
    fn diurnal_blocks_dip_at_night() {
        let w = test_world(Script::new(), vec![]);
        // The first Status block is diurnal. Quiet hours are 01:00–07:00
        // local (UTC+2), i.e. 23:00–05:00 UTC.
        let night_p = w.response_prob(Round(13), sbi(&w, 0)); // 00:00 UTC = 02:00 local
        let day_p = w.response_prob(Round(6), sbi(&w, 0)); // 10:00 UTC = noon local
        assert!(night_p < day_p, "night {night_p} vs day {day_p}");
        // Non-diurnal block is flat.
        assert_eq!(
            w.response_prob(Round(13), sbi(&w, 1)),
            w.response_prob(Round(6), sbi(&w, 1))
        );
    }

    #[test]
    fn power_outage_hits_unbacked_blocks_harder() {
        let strikes = vec![StrikeEvent {
            date: CivilDate::new(2022, 3, 10),
            severity: 1.0,
            recovery_days: 40,
        }];
        let w = test_world(Script::new(), strikes);
        // Find a round where both oblasts are off.
        let mut found = false;
        for r in 0..w.rounds() {
            let round = Round(r);
            if w.power_off(Oblast::Kherson, round) && w.power_off(Oblast::Kyiv, round) {
                let status = w.response_prob(round, sbi(&w, 1)); // backup 0.6
                let kyivstar = w.response_prob(round, kbi(&w, 0)); // backup 0.2
                assert!(status > kyivstar);
                found = true;
                break;
            }
        }
        assert!(found, "no overlapping blackout round found");
    }

    #[test]
    fn power_mask_matches_calendar() {
        let strikes = vec![StrikeEvent {
            date: CivilDate::new(2022, 3, 10),
            severity: 0.8,
            recovery_days: 20,
        }];
        let w = test_world(Script::new(), strikes);
        for r in (0..w.rounds()).step_by(37) {
            let round = Round(r);
            for o in [Oblast::Kherson, Oblast::Kyiv, Oblast::Crimea] {
                assert_eq!(w.power_off(o, round), w.power().is_off(o, round));
            }
        }
    }

    #[test]
    fn bgp_log_replays_to_expected_visibility() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "cable cut".into(),
            target: EventTarget::As(Asn(25482)),
            kind: EventKind::BgpOutage,
            start: ts(10),
            end: Some(ts(13)),
        });
        let w = test_world(s, vec![]);
        let mut rp = w.bgp_log().replayer();
        assert!(rp.advance_to(Round(0)).is_visible(Asn(25482)));
        assert!(rp.rib().is_visible(Asn(15895)));
        assert!(!rp.advance_to(Round(121)).is_visible(Asn(25482)));
        assert!(rp.rib().is_visible(Asn(15895)));
        assert!(rp.advance_to(Round(157)).is_visible(Asn(25482)));
        // Routed block counts follow prefix size.
        assert_eq!(rp.rib().routed_blocks_of(Asn(25482)), 4);
    }

    #[test]
    fn reroute_changes_path_and_rtt() {
        let mut s = Script::new();
        let rostelecom = Asn(12389);
        s.push(ScriptedEvent {
            name: "occupation rerouting".into(),
            target: EventTarget::As(Asn(25482)),
            kind: EventKind::Reroute {
                via: rostelecom,
                extra_rtt_ns: 60_000_000,
            },
            start: ts(60),
            end: Some(ts(100)),
        });
        let w = test_world(s, vec![]);
        let before = w.rtt_ns(Round(100), sbi(&w, 0));
        let during = w.rtt_ns(Round(70 * 12), sbi(&w, 0));
        assert!(
            during > before + 40_000_000,
            "during {during} before {before}"
        );
        let path = w.as_path(Asn(25482), Round(70 * 12));
        assert!(path.contains(&rostelecom));
        assert_eq!(*path.last().unwrap(), Asn(25482));
        let path_before = w.as_path(Asn(25482), Round(100));
        assert!(!path_before.contains(&rostelecom));
    }

    #[test]
    fn vantage_outage_flag() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "vantage down".into(),
            target: EventTarget::Country,
            kind: EventKind::VantageOutage,
            start: ts(5),
            end: Some(ts(6)),
        });
        let w = test_world(s, vec![]);
        assert!(w.vantage_online(Round(0)));
        assert!(!w.vantage_online(Round(5 * 12 + 1)));
        assert!(w.vantage_online(Round(6 * 12 + 1)));
    }

    #[test]
    fn ever_active_tracks_pool_and_outages() {
        let mut s = Script::new();
        // AS down for an entire month (April 2022).
        s.push(ScriptedEvent {
            name: "long outage".into(),
            target: EventTarget::As(Asn(25482)),
            kind: EventKind::BgpOutage,
            start: CivilDate::new(2022, 4, 1).midnight(),
            end: Some(CivilDate::new(2022, 5, 1).midnight()),
        });
        let w = test_world(s, vec![]);
        let april = MonthId::new(2022, 4).campaign_rounds();
        assert_eq!(w.ever_active(april.clone(), sbi(&w, 0)), 0);
        // Kyivstar block unaffected: full pool.
        assert_eq!(w.ever_active(april, kbi(&w, 0)), 60);
        // March (partially pre-outage) still counts for Status.
        let march = MonthId::new(2022, 3).campaign_rounds();
        assert_eq!(w.ever_active(march, sbi(&w, 0)), 40);
    }

    #[test]
    fn bitmap_hosts_stable_within_month() {
        let w = test_world(Script::new(), vec![]);
        // Rounds of the same month share the pool's host octets: the
        // union over many rounds approaches the pool size, not 254.
        // (Rounds 0..300 all fall in March 2022.)
        let mut union = fbs_prober::ResponderBitmap::EMPTY;
        for r in 0..300 {
            union.union_with(&w.block_bitmap(Round(r), sbi(&w, 0)));
        }
        let count = union.count();
        assert!(count <= 40, "union {count} exceeds pool");
        assert!(count >= 35, "union {count} too small for p=0.85");
    }

    #[test]
    fn grouping_indexes() {
        let w = test_world(Script::new(), vec![]);
        let by_oblast = w.blocks_by_oblast();
        assert_eq!(by_oblast[&Oblast::Kherson].len(), 4);
        assert_eq!(by_oblast[&Oblast::Kyiv].len(), 4);
        let by_as = w.blocks_by_as();
        assert_eq!(by_as[&Asn(25482)].len(), 4);
        assert!(w.block_index(BlockId::from_octets(193, 151, 240)).is_some());
        assert!(w.block_index(BlockId::from_octets(9, 9, 9)).is_none());
        assert!(w.as_spec(Asn(25482)).is_some());
        assert!(w.as_spec(Asn(1)).is_none());
    }

    #[test]
    fn decommission_and_activation_intervals() {
        let mut s = Script::new();
        s.push(ScriptedEvent {
            name: "gone".into(),
            target: EventTarget::As(Asn(25482)),
            kind: EventKind::Decommission,
            start: ts(100),
            end: None,
        });
        s.push(ScriptedEvent {
            name: "born".into(),
            target: EventTarget::As(Asn(15895)),
            kind: EventKind::Activate,
            start: ts(50),
            end: None,
        });
        let w = test_world(s, vec![]);
        assert!(!w.block_down(Round(100 * 12 - 1), sbi(&w, 0)));
        assert!(w.block_down(Round(100 * 12), sbi(&w, 0)));
        assert!(w.block_down(Round(2399), sbi(&w, 0)));
        assert!(w.block_down(Round(0), kbi(&w, 0)));
        assert!(!w.block_down(Round(50 * 12), kbi(&w, 0)));
    }
}
