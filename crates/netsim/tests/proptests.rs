//! Property tests for the world simulator: determinism, order
//! independence, and modifier correctness under arbitrary configurations.

use fbs_netsim::{
    AsProfile, AsSpec, BlockSpec, EventKind, EventTarget, Script, ScriptedEvent, World,
    WorldConfig, WorldScale,
};
use fbs_types::{Asn, BlockId, Oblast, Prefix, Round, CAMPAIGN_START};
use proptest::prelude::*;

fn world_from(seed: u64, n_blocks: u8, events: Vec<(u8, u8, u8)>) -> World {
    // events: (start_day, len_days, kind 0..3)
    let asn = Asn(100);
    let blocks: Vec<BlockSpec> = (0..n_blocks.max(1))
        .map(|c| BlockSpec {
            block: BlockId::from_octets(10, 0, c),
            owner: asn,
            home: Oblast::Kherson,
            base_responders: 30,
            geo_population: 200,
            response_prob: 0.85,
            diurnal: c % 3 == 0,
            power_backup: 0.4,
            annual_decay: 0.9,
        })
        .collect();
    let config = WorldConfig {
        seed,
        scale: WorldScale::Tiny,
        rounds: 1200,
        ases: vec![AsSpec {
            asn,
            name: "test".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: blocks.iter().map(|b| Prefix::from_block(b.block)).collect(),
            base_rtt_ns: 40_000_000,
            upstream: Asn(1),
        }],
        blocks,
    };
    let mut script = Script::new();
    for (start, len, kind) in events {
        let start_ts = CAMPAIGN_START.plus_seconds(start as i64 * 86_400);
        let end_ts = start_ts.plus_seconds((len as i64 + 1) * 86_400);
        let kind = match kind % 3 {
            0 => EventKind::BgpOutage,
            1 => EventKind::IpsScale(0.3),
            _ => EventKind::Reroute {
                via: Asn(12389),
                extra_rtt_ns: 50_000_000,
            },
        };
        script.push(ScriptedEvent {
            name: "prop".into(),
            target: EventTarget::As(Asn(100)),
            kind,
            start: start_ts,
            end: Some(end_ts),
        });
    }
    World::new(config, script, vec![]).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Truth queries are pure: any access order yields identical values.
    #[test]
    fn truth_is_order_independent(
        seed in any::<u64>(),
        n_blocks in 1u8..8,
        events in proptest::collection::vec((0u8..90, 0u8..10, 0u8..3), 0..6),
        probes in proptest::collection::vec((0u32..1200, 0u8..8), 1..20),
    ) {
        let w1 = world_from(seed, n_blocks, events.clone());
        let w2 = world_from(seed, n_blocks, events);
        // Query w1 forward and w2 in reverse order.
        let n = n_blocks.max(1) as usize;
        let forward: Vec<_> = probes
            .iter()
            .map(|(r, b)| w1.block_truth(Round(*r), (*b as usize) % n))
            .collect();
        let backward: Vec<_> = probes
            .iter()
            .rev()
            .map(|(r, b)| w2.block_truth(Round(*r), (*b as usize) % n))
            .collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            prop_assert_eq!(f, b);
        }
    }

    /// BGP outage windows silence blocks exactly inside their rounds.
    #[test]
    fn bgp_event_boundaries_exact(start_day in 1u8..80, len_days in 0u8..10) {
        let w = world_from(7, 2, vec![(start_day, len_days, 0)]);
        let start_round = Round::first_at_or_after(
            CAMPAIGN_START.plus_seconds(start_day as i64 * 86_400),
        );
        let end_round = Round::first_at_or_after(
            CAMPAIGN_START.plus_seconds((start_day as i64 + len_days as i64 + 1) * 86_400),
        );
        prop_assert!(w.block_down(start_round, 0));
        prop_assert!(!w.block_down(Round(start_round.0 - 1), 0));
        if end_round.0 < 1200 {
            prop_assert!(w.block_down(Round(end_round.0 - 1), 0));
            prop_assert!(!w.block_down(end_round, 0));
        }
    }

    /// The responsive count never exceeds the pool, and unrouted rounds
    /// are exactly zero.
    #[test]
    fn responsive_bounded_by_pool(
        seed in any::<u64>(),
        events in proptest::collection::vec((0u8..90, 0u8..10, 0u8..3), 0..5),
        r in 0u32..1200,
    ) {
        let w = world_from(seed, 4, events);
        for bi in 0..4 {
            let t = w.block_truth(Round(r), bi);
            prop_assert!(t.responsive <= t.pool as u32);
            if !t.routed {
                prop_assert_eq!(t.responsive, 0);
            }
            prop_assert!(t.response_prob >= 0.0 && t.response_prob <= 1.0);
            let bm = w.block_bitmap(Round(r), bi);
            prop_assert!(bm.count() <= t.pool as u32);
        }
    }

    /// Reroutes only ever increase RTT, never reduce it.
    #[test]
    fn reroute_monotone_rtt(start_day in 1u8..60, len_days in 1u8..20, r in 0u32..1200) {
        let base = world_from(3, 2, vec![]);
        let rerouted = world_from(3, 2, vec![(start_day, len_days, 2)]);
        let a = base.rtt_ns(Round(r), 0);
        let b = rerouted.rtt_ns(Round(r), 0);
        prop_assert!(b >= a, "reroute lowered rtt: {} -> {}", a, b);
    }
}
