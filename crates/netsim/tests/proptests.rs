//! Property tests for the world simulator: determinism, order
//! independence, and modifier correctness under arbitrary configurations.

use fbs_netsim::{
    AsProfile, AsSpec, BlockSpec, EventKind, EventTarget, FaultIntensity, FaultyTransport, Script,
    ScriptedEvent, World, WorldConfig, WorldRng, WorldScale,
};
use fbs_prober::scan::loopback::LoopbackTransport;
use fbs_prober::{ScanConfig, Scanner, TargetSet};
use fbs_types::{Asn, BlockId, Oblast, Prefix, Round, CAMPAIGN_START};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn world_from(seed: u64, n_blocks: u8, events: Vec<(u8, u8, u8)>) -> World {
    // events: (start_day, len_days, kind 0..3)
    let asn = Asn(100);
    let blocks: Vec<BlockSpec> = (0..n_blocks.max(1))
        .map(|c| BlockSpec {
            block: BlockId::from_octets(10, 0, c),
            owner: asn,
            home: Oblast::Kherson,
            base_responders: 30,
            geo_population: 200,
            response_prob: 0.85,
            diurnal: c % 3 == 0,
            power_backup: 0.4,
            annual_decay: 0.9,
        })
        .collect();
    let config = WorldConfig {
        seed,
        scale: WorldScale::Tiny,
        rounds: 1200,
        ases: vec![AsSpec {
            asn,
            name: "test".into(),
            profile: AsProfile::Regional,
            hq: Some(Oblast::Kherson),
            prefixes: blocks.iter().map(|b| Prefix::from_block(b.block)).collect(),
            base_rtt_ns: 40_000_000,
            upstream: Asn(1),
        }],
        blocks,
    };
    let mut script = Script::new();
    for (start, len, kind) in events {
        let start_ts = CAMPAIGN_START.plus_seconds(start as i64 * 86_400);
        let end_ts = start_ts.plus_seconds((len as i64 + 1) * 86_400);
        let kind = match kind % 3 {
            0 => EventKind::BgpOutage,
            1 => EventKind::IpsScale(0.3),
            _ => EventKind::Reroute {
                via: Asn(12389),
                extra_rtt_ns: 50_000_000,
            },
        };
        script.push(ScriptedEvent {
            name: "prop".into(),
            target: EventTarget::As(Asn(100)),
            kind,
            start: start_ts,
            end: Some(end_ts),
        });
    }
    World::new(config, script, vec![]).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Truth queries are pure: any access order yields identical values.
    #[test]
    fn truth_is_order_independent(
        seed in any::<u64>(),
        n_blocks in 1u8..8,
        events in proptest::collection::vec((0u8..90, 0u8..10, 0u8..3), 0..6),
        probes in proptest::collection::vec((0u32..1200, 0u8..8), 1..20),
    ) {
        let w1 = world_from(seed, n_blocks, events.clone());
        let w2 = world_from(seed, n_blocks, events);
        // Query w1 forward and w2 in reverse order.
        let n = n_blocks.max(1) as usize;
        let forward: Vec<_> = probes
            .iter()
            .map(|(r, b)| w1.block_truth(Round(*r), (*b as usize) % n))
            .collect();
        let backward: Vec<_> = probes
            .iter()
            .rev()
            .map(|(r, b)| w2.block_truth(Round(*r), (*b as usize) % n))
            .collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            prop_assert_eq!(f, b);
        }
    }

    /// BGP outage windows silence blocks exactly inside their rounds.
    #[test]
    fn bgp_event_boundaries_exact(start_day in 1u8..80, len_days in 0u8..10) {
        let w = world_from(7, 2, vec![(start_day, len_days, 0)]);
        let start_round = Round::first_at_or_after(
            CAMPAIGN_START.plus_seconds(start_day as i64 * 86_400),
        );
        let end_round = Round::first_at_or_after(
            CAMPAIGN_START.plus_seconds((start_day as i64 + len_days as i64 + 1) * 86_400),
        );
        prop_assert!(w.block_down(start_round, 0));
        prop_assert!(!w.block_down(Round(start_round.0 - 1), 0));
        if end_round.0 < 1200 {
            prop_assert!(w.block_down(Round(end_round.0 - 1), 0));
            prop_assert!(!w.block_down(end_round, 0));
        }
    }

    /// The responsive count never exceeds the pool, and unrouted rounds
    /// are exactly zero.
    #[test]
    fn responsive_bounded_by_pool(
        seed in any::<u64>(),
        events in proptest::collection::vec((0u8..90, 0u8..10, 0u8..3), 0..5),
        r in 0u32..1200,
    ) {
        let w = world_from(seed, 4, events);
        for bi in 0..4 {
            let t = w.block_truth(Round(r), bi);
            prop_assert!(t.responsive <= t.pool as u32);
            if !t.routed {
                prop_assert_eq!(t.responsive, 0);
            }
            prop_assert!(t.response_prob >= 0.0 && t.response_prob <= 1.0);
            let bm = w.block_bitmap(Round(r), bi);
            prop_assert!(bm.count() <= t.pool as u32);
        }
    }

    /// Reroutes only ever increase RTT, never reduce it.
    #[test]
    fn reroute_monotone_rtt(start_day in 1u8..60, len_days in 1u8..20, r in 0u32..1200) {
        let base = world_from(3, 2, vec![]);
        let rerouted = world_from(3, 2, vec![(start_day, len_days, 2)]);
        let a = base.rtt_ns(Round(r), 0);
        let b = rerouted.rtt_ns(Round(r), 0);
        prop_assert!(b >= a, "reroute lowered rtt: {} -> {}", a, b);
    }
}

// ---------------------------------------------------------------------------
// Fault-injection properties: any intensity, the scanner survives and the
// books balance.
// ---------------------------------------------------------------------------

fn fault_targets() -> TargetSet {
    TargetSet::from_prefixes(&["10.1.0.0/24".parse::<Prefix>().unwrap()])
}

fn fault_loopback(hosts: &std::collections::HashSet<u8>, rtt_ns: u64) -> LoopbackTransport {
    let mut lo = LoopbackTransport::new();
    for &h in hosts {
        lo.add_host(Ipv4Addr::new(10, 1, 0, h), rtt_ns);
    }
    lo
}

fn arb_intensity() -> impl Strategy<Value = FaultIntensity> {
    (
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.3),
        (0u64..5_000_000, 0u64..500_000_000, 0u32..64),
    )
        .prop_map(
            |(
                (probe_loss, reply_loss, duplicate),
                (reorder, latency_spike, corrupt),
                (reorder_jitter_ns, latency_spike_ns, icmp_reply_budget),
            )| FaultIntensity {
                probe_loss,
                reply_loss,
                duplicate,
                reorder,
                reorder_jitter_ns,
                latency_spike,
                latency_spike_ns,
                corrupt,
                // Keep unsolicited below the corruption knob: this strategy
                // is reused by properties that compare responder sets.
                unsolicited: corrupt,
                icmp_reply_budget,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the fault intensity, a scan round completes without
    /// panicking, its accounting is conserved, and every responder it
    /// reports is a host that actually exists.
    #[test]
    fn faulty_scan_never_panics_and_conserves(
        intensity in arb_intensity(),
        seed in any::<u64>(),
        retries in 0u32..3,
        hosts in proptest::collection::hash_set(any::<u8>(), 0..40),
    ) {
        intensity.validate().expect("strategy yields valid intensities");
        let mut faulty = FaultyTransport::new(
            fault_loopback(&hosts, 25_000_000),
            WorldRng::new(seed),
            Round(3),
            intensity,
        );
        let scanner = Scanner::new(ScanConfig {
            rate_pps: 1_000_000,
            retries,
            ..ScanConfig::default()
        });
        let (obs, stats) = scanner.scan_round(Round(3), &fault_targets(), &mut faulty);
        prop_assert!(stats.is_conserved(), "{:?}", stats);
        prop_assert!(stats.valid <= stats.sent);
        prop_assert_eq!(obs.total_responsive(), stats.valid);
        for h in obs.blocks[0].responders.iter_hosts() {
            prop_assert!(hosts.contains(&h), "phantom responder {}", h);
        }
    }

    /// Faults only ever *remove* responders: the set observed through the
    /// faulty transport is a subset of the clean scan's responders.
    #[test]
    fn faults_never_add_responders(
        intensity in arb_intensity(),
        seed in any::<u64>(),
        hosts in proptest::collection::hash_set(any::<u8>(), 1..40),
    ) {
        let scanner = Scanner::new(ScanConfig {
            rate_pps: 1_000_000,
            ..ScanConfig::default()
        });
        let t = fault_targets();
        let mut clean = fault_loopback(&hosts, 25_000_000);
        let (clean_obs, _) = scanner.scan_round(Round(3), &t, &mut clean);
        let mut faulty = FaultyTransport::new(
            fault_loopback(&hosts, 25_000_000),
            WorldRng::new(seed),
            Round(3),
            intensity,
        );
        let (noisy_obs, _) = scanner.scan_round(Round(3), &t, &mut faulty);
        let kept = noisy_obs.blocks[0]
            .responders
            .intersection(&clean_obs.blocks[0].responders);
        prop_assert_eq!(kept.count(), noisy_obs.blocks[0].responders.count());
    }

    /// The decorator is deterministic under arbitrary intensities: the same
    /// seed reproduces bit-identical observations and fault statistics.
    #[test]
    fn faulty_transport_deterministic(
        intensity in arb_intensity(),
        seed in any::<u64>(),
        hosts in proptest::collection::hash_set(any::<u8>(), 1..40),
    ) {
        let scanner = Scanner::new(ScanConfig {
            rate_pps: 1_000_000,
            retries: 1,
            ..ScanConfig::default()
        });
        let t = fault_targets();
        let run = || {
            let mut faulty = FaultyTransport::new(
                fault_loopback(&hosts, 25_000_000),
                WorldRng::new(seed),
                Round(3),
                intensity,
            );
            let (obs, stats) = scanner.scan_round(Round(3), &t, &mut faulty);
            (obs, stats, faulty.stats)
        };
        let (obs_a, stats_a, fstats_a) = run();
        let (obs_b, stats_b, fstats_b) = run();
        prop_assert_eq!(obs_a, obs_b);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(fstats_a, fstats_b);
    }
}
