//! Property tests for journal recovery.
//!
//! The contract under test: for *any* sequence of appended records and
//! *any* single point of damage (truncation at an arbitrary byte offset,
//! or a bit flip at an arbitrary byte offset), reopening the journal
//! (a) never errors and never panics, (b) recovers exactly a prefix of
//! the appended records, byte-for-byte, and (c) never yields a phantom
//! record that was not appended.

use fbs_journal::Journal;
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fbs-journal-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}.wal",
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Writes `records` to a fresh journal and returns its path.
fn build_journal(tag: &str, records: &[Vec<u8>]) -> PathBuf {
    let path = fresh_path(tag);
    let mut journal = Journal::create(&path).unwrap();
    for record in records {
        journal.append(record).unwrap();
    }
    journal.sync().unwrap();
    path
}

/// Asserts `recovered` is a byte-exact prefix of `original`.
fn assert_prefix(recovered: &[Vec<u8>], original: &[Vec<u8>]) {
    assert!(
        recovered.len() <= original.len(),
        "phantom records: recovered {} of {} appended",
        recovered.len(),
        original.len()
    );
    for (i, (got, want)) in recovered.iter().zip(original).enumerate() {
        assert_eq!(got, want, "record {i} differs after recovery");
    }
}

proptest! {
    #[test]
    fn truncation_at_any_offset_recovers_a_prefix(
        records in vec(vec(any::<u8>(), 0..48usize), 0..16usize),
        cut_seed in any::<u64>(),
    ) {
        let path = build_journal("trunc", &records);
        let full = std::fs::read(&path).unwrap();
        let cut = (cut_seed % (full.len() as u64 + 1)) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        let (_, recovered, recovery) = Journal::open(&path).unwrap();
        assert_prefix(&recovered, &records);
        prop_assert_eq!(recovery.records, recovered.len() as u64);
        // Cutting inside the 8-byte magic quarantines; otherwise the file
        // is repaired in place and a reopen must be clean.
        if cut >= 8 {
            prop_assert!(recovery.quarantined.is_none());
            let (_, again, recovery2) = Journal::open(&path).unwrap();
            prop_assert!(recovery2.was_clean());
            prop_assert_eq!(again.len(), recovered.len());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_at_any_offset_recovers_a_prefix(
        records in vec(vec(any::<u8>(), 0..48usize), 1..16usize),
        offset_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let path = build_journal("flip", &records);
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = (offset_seed % bytes.len() as u64) as usize;
        bytes[offset] ^= 1u8 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovered, recovery) = Journal::open(&path).unwrap();
        assert_prefix(&recovered, &records);
        prop_assert_eq!(recovery.records, recovered.len() as u64);
        if offset >= 8 {
            // Damage past the magic: every record before the damaged frame
            // must survive. Find which record's frame the flip landed in.
            let mut frame_start = 8usize;
            let mut damaged_index = records.len();
            for (i, record) in records.iter().enumerate() {
                let frame_end = frame_start + 8 + record.len();
                if offset < frame_end {
                    damaged_index = i;
                    break;
                }
                frame_start = frame_end;
            }
            prop_assert!(
                recovered.len() >= damaged_index,
                "lost {} undamaged records before the flipped frame",
                damaged_index - recovered.len()
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn undamaged_journals_always_roundtrip(
        records in vec(vec(any::<u8>(), 0..128usize), 0..24usize),
    ) {
        let path = build_journal("clean", &records);
        let (_, recovered, recovery) = Journal::open(&path).unwrap();
        prop_assert!(recovery.was_clean());
        prop_assert_eq!(recovered, records);
        let _ = std::fs::remove_file(&path);
    }
}
