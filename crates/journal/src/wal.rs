//! Write-ahead round journal.
//!
//! ## File format (`FBSWAL01`)
//!
//! ```text
//! magic   8 bytes  b"FBSWAL01"   (format name + version)
//! record  repeated:
//!   len   u32 LE   payload length in bytes
//!   crc   u32 LE   CRC-32 (IEEE) of the payload
//!   payload len bytes
//! ```
//!
//! Appends are frame-at-a-time, so the only damage a crash can cause is a
//! torn final frame. [`Journal::open`] scans the record stream from the
//! start and stops at the first frame that is truncated, oversized, or
//! fails its CRC; everything after that point is discarded by physically
//! truncating the file, and scanning resumes from a clean tail. A file
//! whose *header* is damaged can't be trusted at all — it is renamed to
//! `<name>.quarantined` (preserved for forensics, never silently deleted)
//! and a fresh journal is started in its place.

use crate::crc32::crc32;
use fbs_types::{FbsError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Format magic: name + version, bumped on incompatible layout changes.
pub const WAL_MAGIC: &[u8; 8] = b"FBSWAL01";

/// Upper bound on a single record payload (1 GiB). A length prefix above
/// this is treated as corruption rather than an allocation request.
pub const MAX_RECORD_LEN: u32 = 1 << 30;

const FRAME_HEADER_LEN: usize = 8; // len u32 + crc u32

/// What [`Journal::open`] had to do to produce a clean journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalRecovery {
    /// Records recovered from the valid prefix.
    pub records: u64,
    /// Bytes of corrupt or torn tail discarded by truncation.
    pub dropped_bytes: u64,
    /// Path the damaged original was moved to, if the header itself was
    /// unusable and the whole file had to be quarantined.
    pub quarantined: Option<PathBuf>,
}

impl JournalRecovery {
    /// True when the file was already fully intact.
    pub fn was_clean(&self) -> bool {
        self.dropped_bytes == 0 && self.quarantined.is_none()
    }
}

/// Append-only CRC-checksummed record log.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    records: u64,
}

impl Journal {
    /// Creates a fresh journal at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        sync_parent_dir(&path);
        Ok(Journal {
            file,
            path,
            records: 0,
        })
    }

    /// Opens the journal at `path`, recovering whatever prefix is valid.
    ///
    /// Returns the journal (positioned for appending), the payloads of all
    /// recovered records in append order, and a [`JournalRecovery`]
    /// describing any repairs. A missing file is created fresh; a torn or
    /// bit-corrupted tail is truncated away; a file with a damaged header
    /// is quarantined and replaced. None of these cases is an error —
    /// `Err` is reserved for real I/O failures.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Vec<Vec<u8>>, JournalRecovery)> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            return Ok((Self::create(&path)?, Vec::new(), JournalRecovery::default()));
        }

        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            // Header damage: nothing in the file can be trusted. Move it
            // aside and start over.
            drop(file);
            let quarantine = quarantine_path(&path);
            std::fs::rename(&path, &quarantine)?;
            sync_parent_dir(&path);
            let journal = Self::create(&path)?;
            return Ok((
                journal,
                Vec::new(),
                JournalRecovery {
                    records: 0,
                    dropped_bytes: bytes.len() as u64,
                    quarantined: Some(quarantine),
                },
            ));
        }

        let mut payloads = Vec::new();
        let mut pos = WAL_MAGIC.len();
        loop {
            let rest = bytes.len() - pos;
            if rest == 0 {
                break; // clean end
            }
            if rest < FRAME_HEADER_LEN {
                break; // torn frame header
            }
            // fbs-lint: allow(panic-in-pipeline) fixed-width slice, rest >= FRAME_HEADER_LEN checked above
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4"));
            // fbs-lint: allow(panic-in-pipeline) fixed-width slice, rest >= FRAME_HEADER_LEN checked above
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("len 4"));
            if len > MAX_RECORD_LEN {
                break; // corrupt length prefix
            }
            let len = len as usize;
            if rest < FRAME_HEADER_LEN + len {
                break; // torn payload
            }
            let payload = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len];
            if crc32(payload) != crc {
                break; // bit corruption
            }
            payloads.push(payload.to_vec());
            pos += FRAME_HEADER_LEN + len;
        }

        let dropped = (bytes.len() - pos) as u64;
        if dropped > 0 {
            file.set_len(pos as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;

        let records = payloads.len() as u64;
        Ok((
            Journal {
                file,
                path,
                records,
            },
            payloads,
            JournalRecovery {
                records,
                dropped_bytes: dropped,
                quarantined: None,
            },
        ))
    }

    /// Appends one record. The frame is written in a single `write_all`, so
    /// a crash mid-append leaves at most one torn frame for recovery to
    /// truncate. Call [`Journal::sync`] to force it to stable storage.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(FbsError::Io {
                reason: format!(
                    "journal record of {} bytes exceeds the {} byte cap",
                    payload.len(),
                    MAX_RECORD_LEN
                ),
            });
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.records += 1;
        Ok(())
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Number of records in the journal (recovered + appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// `<name>.quarantined` next to the original.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".quarantined");
    PathBuf::from(name)
}

/// Best-effort fsync of the parent directory so renames/creates survive a
/// power loss. Not all platforms allow opening directories; failures are
/// ignored because the data itself is already CRC-protected.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fbs-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("rounds.wal");
        let mut j = Journal::create(&path).unwrap();
        let records: Vec<Vec<u8>> = (0u32..50)
            .map(|i| vec![i as u8; (i % 7) as usize + 1])
            .collect();
        for r in &records {
            j.append(r).unwrap();
        }
        j.sync().unwrap();
        drop(j);

        let (j, recovered, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recovered, records);
        assert!(recovery.was_clean());
        assert_eq!(j.records(), 50);
    }

    #[test]
    fn empty_and_missing_files_open_clean() {
        let dir = tmpdir("fresh");
        let path = dir.join("rounds.wal");
        let (j, recs, recovery) = Journal::open(&path).unwrap();
        assert!(recs.is_empty());
        assert!(recovery.was_clean());
        drop(j);
        // Reopen the (magic-only) file.
        let (_, recs, recovery) = Journal::open(&path).unwrap();
        assert!(recs.is_empty());
        assert!(recovery.was_clean());
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("rounds.wal");
        let mut j = Journal::create(&path).unwrap();
        for i in 0u8..10 {
            j.append(&[i; 16]).unwrap();
        }
        j.sync().unwrap();
        drop(j);

        // Tear the last frame: chop 5 bytes off the end.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (j, recs, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recs.len(), 9, "last record torn, first nine intact");
        assert_eq!(recovery.records, 9);
        assert!(recovery.dropped_bytes > 0);
        assert!(recovery.quarantined.is_none());
        drop(j);

        // The truncation is physical: a second open is clean.
        let (_, recs, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recs.len(), 9);
        assert!(recovery.was_clean());
    }

    #[test]
    fn bit_flip_truncates_from_damaged_record() {
        let dir = tmpdir("bitflip");
        let path = dir.join("rounds.wal");
        let mut j = Journal::create(&path).unwrap();
        for i in 0u8..10 {
            j.append(&[i; 16]).unwrap();
        }
        j.sync().unwrap();
        drop(j);

        // Flip one payload bit in the 6th record (frames are 8+16 bytes).
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = WAL_MAGIC.len() + 5 * (FRAME_HEADER_LEN + 16) + FRAME_HEADER_LEN + 3;
        bytes[offset] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recs, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recs.len(), 5, "records 0..5 survive, 5.. dropped");
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r, &vec![i as u8; 16]);
        }
        assert!(recovery.dropped_bytes > 0);
    }

    #[test]
    fn appending_after_recovery_continues_the_log() {
        let dir = tmpdir("heal");
        let path = dir.join("rounds.wal");
        let mut j = Journal::create(&path).unwrap();
        for i in 0u8..4 {
            j.append(&[i]).unwrap();
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();

        let (mut j, recs, _) = Journal::open(&path).unwrap();
        assert_eq!(recs.len(), 3);
        j.append(&[99]).unwrap();
        j.sync().unwrap();
        drop(j);

        let (_, recs, recovery) = Journal::open(&path).unwrap();
        assert!(recovery.was_clean());
        assert_eq!(recs, vec![vec![0], vec![1], vec![2], vec![99]]);
    }

    #[test]
    fn bad_magic_quarantines_the_file() {
        let dir = tmpdir("quarantine");
        let path = dir.join("rounds.wal");
        std::fs::write(&path, b"NOTAWAL!some garbage").unwrap();

        let (mut j, recs, recovery) = Journal::open(&path).unwrap();
        assert!(recs.is_empty());
        let qpath = recovery.quarantined.expect("quarantined");
        assert!(qpath.exists(), "damaged original preserved");
        assert_eq!(
            std::fs::read(&qpath).unwrap(),
            b"NOTAWAL!some garbage".to_vec()
        );
        // The fresh journal is usable.
        j.append(&[1, 2, 3]).unwrap();
        drop(j);
        let (_, recs, recovery) = Journal::open(&path).unwrap();
        assert!(recovery.was_clean());
        assert_eq!(recs, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn oversized_length_prefix_is_corruption_not_allocation() {
        let dir = tmpdir("hugelen");
        let path = dir.join("rounds.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&[7; 8]).unwrap();
        drop(j);
        // Append a frame header claiming a 3 GiB payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&(3u32 << 30).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let (_, recs, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recovery.dropped_bytes, 8);
    }
}
