//! Atomic, versioned state snapshots.
//!
//! ## File format (`FBSSNAP1`)
//!
//! ```text
//! magic    8 bytes  b"FBSSNAP1"  (format name + format version)
//! version  u32 LE   caller-defined payload schema version
//! len      u64 LE   payload length in bytes
//! crc      u32 LE   CRC-32 (IEEE) of the payload
//! payload  len bytes
//! ```
//!
//! Snapshots are replaced wholesale: [`write_snapshot`] assembles the file
//! in a temporary sibling, fsyncs it, then renames it over the target and
//! fsyncs the directory. A reader therefore sees either the previous
//! snapshot or the new one, never a half-written hybrid — any validation
//! failure in [`read_snapshot`] means storage damage, which the caller
//! should treat by quarantining the file and replaying its journal.

use crate::crc32::crc32;
use crate::wal::sync_parent_dir;
use fbs_types::{FbsError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Format magic for snapshot files.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"FBSSNAP1";

const HEADER_LEN: usize = 8 + 4 + 8 + 4;

/// Atomically writes `payload` (with schema `version`) to `path`.
pub fn write_snapshot(path: impl AsRef<Path>, version: u32, payload: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);

    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&version.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);

    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);

    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Reads and validates the snapshot at `path`.
///
/// Returns `Ok(None)` when no snapshot exists yet,
/// `Ok(Some((version, payload)))` for a valid one, and
/// [`FbsError::CorruptSnapshot`] when the header, length, or checksum does
/// not validate.
pub fn read_snapshot(path: impl AsRef<Path>) -> Result<Option<(u32, Vec<u8>)>> {
    let path = path.as_ref();
    if !path.exists() {
        return Ok(None);
    }
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;

    if bytes.len() < HEADER_LEN {
        return Err(FbsError::corrupt_snapshot(format!(
            "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(FbsError::corrupt_snapshot(format!(
            "bad magic {:02x?}",
            &bytes[..8]
        )));
    }
    // Slice-to-array conversions on ranges already guarded by the
    // HEADER_LEN length check above; the expects cannot fire.
    // fbs-lint: allow(panic-in-pipeline) fixed-width slice, length checked above
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("len 4"));
    // fbs-lint: allow(panic-in-pipeline) fixed-width slice, length checked above
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("len 8"));
    // fbs-lint: allow(panic-in-pipeline) fixed-width slice, length checked above
    let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("len 4"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(FbsError::corrupt_snapshot(format!(
            "header declares {len} payload bytes, file holds {}",
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(FbsError::corrupt_snapshot(
            "payload checksum mismatch".to_string(),
        ));
    }
    Ok(Some((version, payload.to_vec())))
}

/// Moves a damaged snapshot aside to `<name>.quarantined`, returning the
/// quarantine path. The caller then proceeds as if no snapshot existed.
pub fn quarantine_snapshot(path: impl AsRef<Path>) -> Result<PathBuf> {
    let path = path.as_ref();
    let mut name = path.as_os_str().to_os_string();
    name.push(".quarantined");
    let quarantine = PathBuf::from(name);
    std::fs::rename(path, &quarantine)?;
    sync_parent_dir(path);
    Ok(quarantine)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fbs-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("state.snap");
        assert_eq!(read_snapshot(&path).unwrap(), None);
        write_snapshot(&path, 3, b"detector state").unwrap();
        let (version, payload) = read_snapshot(&path).unwrap().expect("snapshot present");
        assert_eq!(version, 3);
        assert_eq!(payload, b"detector state");
        // No temp residue.
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmpdir("replace");
        let path = dir.join("state.snap");
        write_snapshot(&path, 1, b"old").unwrap();
        write_snapshot(&path, 2, b"new and longer").unwrap();
        let (version, payload) = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(version, 2);
        assert_eq!(payload, b"new and longer");
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("state.snap");
        write_snapshot(&path, 1, b"some payload bytes").unwrap();

        // Bit-flip in payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(FbsError::CorruptSnapshot { .. })
        ));

        // Truncation.
        write_snapshot(&path, 1, b"some payload bytes").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(FbsError::CorruptSnapshot { .. })
        ));

        // Bad magic.
        std::fs::write(
            &path,
            b"WRONGMAGandmore padding to pass the header length check",
        )
        .unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(FbsError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn quarantine_moves_the_file_aside() {
        let dir = tmpdir("aside");
        let path = dir.join("state.snap");
        std::fs::write(&path, b"garbage").unwrap();
        let qpath = quarantine_snapshot(&path).unwrap();
        assert!(!path.exists());
        assert!(qpath.exists());
        assert_eq!(read_snapshot(&path).unwrap(), None);
    }
}
