//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Journal records and snapshot payloads are checksummed with the same
//! CRC-32 variant used by zlib/gzip so the files can be cross-checked with
//! standard tooling (`python3 -c 'import zlib; print(zlib.crc32(data))'`).

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"round 42 observations".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip byte {i} bit {bit}");
            }
        }
    }
}
