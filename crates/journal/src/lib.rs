//! Crash-safe persistence for long-running campaigns.
//!
//! The reproduced paper's measurement system ran continuously for three
//! years; the durable record, not any single process, is the asset. This
//! crate provides the two storage primitives the campaign runner builds
//! on:
//!
//! - [`Journal`] — an append-only write-ahead log of per-round records,
//!   each length-prefixed and CRC-32 checksummed. Opening a journal
//!   recovers the longest valid prefix: torn or bit-corrupted tails are
//!   physically truncated away, and a file with a damaged header is
//!   quarantined (renamed to `<name>.quarantined`) rather than trusted or
//!   deleted.
//! - [`write_snapshot`] / [`read_snapshot`] — atomic whole-state
//!   snapshots (temp file + fsync + rename) with a versioned header, so a
//!   resume can skip replaying most of the journal.
//!
//! Both formats checksum with the zlib-compatible CRC-32 ([`crc32`]) and
//! carry explicit magic/version bytes so stale or foreign files fail fast.
//!
//! This crate is deliberately payload-version-agnostic: it moves opaque
//! bytes, and `fbs-core`'s checkpoint layer owns the schema. For
//! orientation, the payload versions that layer has shipped:
//!
//! | Version | Campaigns | Adds |
//! |---|---|---|
//! | 2 | legacy single-vantage | baseline layout |
//! | 3 | any vantage roster | per-vantage ledgers + disagreement |
//! | 4 | passive (IBR) signal on | per-AS predictor + radiation ledgers |
//! | 5 | supervised shard execution | per-round shard outcomes + ledger |
//!
//! Each version is additive and self-selecting: a campaign serializes as
//! the lowest version that can carry its features, so old checkpoint
//! directories stay bit-compatible and resume unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod snapshot;
pub mod wal;

pub use crc32::crc32;
pub use snapshot::{quarantine_snapshot, read_snapshot, write_snapshot, SNAPSHOT_MAGIC};
pub use wal::{Journal, JournalRecovery, MAX_RECORD_LEN, WAL_MAGIC};
