//! The assembled output of a campaign run.

use crate::classify::ClassificationOutcome;
use fbs_feeds::{FeedHealth, TaggedQuarantine};
use fbs_signals::{EntityId, IbrEvent, IbrRoundStatus, OutageEvent, SignalSeries};
use fbs_trinocular::ioda::IodaReport;
use fbs_types::codec::{ByteReader, ByteWriter, Persist};
use fbs_types::{
    Asn, BlockId, FeedKind, FeedStatus, MonthId, Oblast, Round, RoundQuality, VantageId,
};
use std::collections::BTreeMap;

/// Full per-round signal series of one tracked entity.
#[derive(Debug, Clone)]
pub struct EntitySeries {
    /// Routed /24 blocks (or 0/1 for a block entity).
    pub bgp: SignalSeries,
    /// Active eligible blocks (or 0/1).
    pub fbs: SignalSeries,
    /// Responsive addresses.
    pub ips: SignalSeries,
}

impl EntitySeries {
    pub(crate) fn new(start: Round) -> Self {
        EntitySeries {
            bgp: SignalSeries::new(start),
            fbs: SignalSeries::new(start),
            ips: SignalSeries::new(start),
        }
    }
}

impl Persist for EntitySeries {
    fn persist(&self, w: &mut ByteWriter) {
        self.bgp.persist(w);
        self.fbs.persist(w);
        self.ips.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        Ok(EntitySeries {
            bgp: SignalSeries::restore(r)?,
            fbs: SignalSeries::restore(r)?,
            ips: SignalSeries::restore(r)?,
        })
    }
}

/// Monthly RTT aggregate of one AS.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MonthlyRtt {
    /// Sum of block-level mean RTTs observed, nanoseconds.
    pub sum_ns: u64,
    /// Number of observations.
    pub count: u64,
}

impl MonthlyRtt {
    /// Mean RTT in milliseconds, `None` when no observations.
    pub fn mean_ms(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_ns as f64 / self.count as f64 / 1e6)
        }
    }
}

impl Persist for MonthlyRtt {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u64(self.sum_ns);
        w.put_u64(self.count);
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        Ok(MonthlyRtt {
            sum_ns: r.get_u64()?,
            count: r.get_u64()?,
        })
    }
}

/// Per-oblast, per-month aggregates over the oblast's *regional* blocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct OblastMonth {
    /// Sum over measured rounds of responsive addresses.
    pub responsive_sum: u64,
    /// Measured rounds this month.
    pub measured_rounds: u32,
    /// Sum over measured rounds of active eligible blocks.
    pub active_block_sum: u64,
    /// Regional blocks assigned to this oblast.
    pub regional_blocks: u32,
    /// Regional geolocated addresses (monthly snapshot).
    pub regional_ips: u64,
    /// Blocks meeting the FBS eligibility (E(b) ≥ 3).
    pub fbs_eligible: u32,
    /// Blocks meeting Trinocular eligibility (E(b) ≥ 15 ∧ A > 0.1).
    pub trin_eligible: u32,
    /// Trinocular-eligible blocks with likely-indeterminate belief (A < 0.3).
    pub trin_indeterminate: u32,
}

impl OblastMonth {
    /// Mean responsive addresses per measured round.
    pub fn mean_responsive(&self) -> f64 {
        if self.measured_rounds == 0 {
            0.0
        } else {
            self.responsive_sum as f64 / self.measured_rounds as f64
        }
    }

    /// Mean active blocks per measured round.
    pub fn mean_active_blocks(&self) -> f64 {
        if self.measured_rounds == 0 {
            0.0
        } else {
            self.active_block_sum as f64 / self.measured_rounds as f64
        }
    }
}

impl Persist for OblastMonth {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u64(self.responsive_sum);
        w.put_u32(self.measured_rounds);
        w.put_u64(self.active_block_sum);
        w.put_u32(self.regional_blocks);
        w.put_u64(self.regional_ips);
        w.put_u32(self.fbs_eligible);
        w.put_u32(self.trin_eligible);
        w.put_u32(self.trin_indeterminate);
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        Ok(OblastMonth {
            responsive_sum: r.get_u64()?,
            measured_rounds: r.get_u32()?,
            active_block_sum: r.get_u64()?,
            regional_blocks: r.get_u32()?,
            regional_ips: r.get_u64()?,
            fbs_eligible: r.get_u32()?,
            trin_eligible: r.get_u32()?,
            trin_indeterminate: r.get_u32()?,
        })
    }
}

/// The per-round, per-feed staleness ledger of a campaign.
///
/// One status per round per feed in [`FeedKind::ALL`] order; every vector
/// is empty when the feed layer is off (`feed_plan: None`), and exactly
/// campaign-length when it is on. A round's status is what the pipeline
/// *settled on* after its carry-forward decision: `Fresh` when the round
/// was served by an accepted delivery of the feed's current cadence
/// period, `Stale(age)` when carried data `age` cadence periods old
/// served it, `Missing` when the feed has never delivered at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeedLedger {
    /// Per-feed status vectors, indexed by [`FeedKind::index`].
    pub statuses: [Vec<FeedStatus>; 3],
}

impl FeedLedger {
    /// Whether the ledger recorded anything (feed layer on).
    pub fn is_empty(&self) -> bool {
        self.statuses.iter().all(|v| v.is_empty())
    }

    /// One feed's full status history.
    pub fn of(&self, kind: FeedKind) -> &[FeedStatus] {
        &self.statuses[kind.index()]
    }

    /// The status of one feed at one round (`None` out of range or when
    /// the feed layer was off).
    pub fn status_of(&self, kind: FeedKind, round: Round) -> Option<FeedStatus> {
        self.statuses[kind.index()].get(round.0 as usize).copied()
    }

    /// Rounds where `kind`'s status satisfies the predicate.
    pub fn rounds_where(
        &self,
        kind: FeedKind,
        mut pred: impl FnMut(FeedStatus) -> bool,
    ) -> Vec<Round> {
        self.statuses[kind.index()]
            .iter()
            .enumerate()
            .filter(|(_, s)| pred(**s))
            .map(|(r, _)| Round(r as u32))
            .collect()
    }

    /// Rounds where `kind` was not served fresh.
    pub fn degraded_rounds_of(&self, kind: FeedKind) -> Vec<Round> {
        self.rounds_where(kind, |s| !s.is_fresh())
    }
}

impl Persist for FeedLedger {
    fn persist(&self, w: &mut ByteWriter) {
        for v in &self.statuses {
            v.persist(w);
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        Ok(FeedLedger {
            statuses: [
                Vec::<FeedStatus>::restore(r)?,
                Vec::<FeedStatus>::restore(r)?,
                Vec::<FeedStatus>::restore(r)?,
            ],
        })
    }
}

/// One vantage point's per-round quality and throughput ledger.
///
/// Multi-vantage campaigns keep one ledger per roster entry, updated
/// *every* round — including rounds the vantage was masked out of the
/// quorum — so a vantage blackout is visible in the report exactly where
/// it happened rather than inferred from fused gaps. The signal-to-noise
/// view ([`VantageLedger::snr`]) follows the paper's Fig. 27 reading:
/// mean responsive addresses over the noise around that mean.
#[derive(Debug, Clone, PartialEq)]
pub struct VantageLedger {
    /// Roster position (stable across the run).
    pub id: VantageId,
    /// The vantage's name (its fault-RNG domain key).
    pub name: String,
    /// Per-round *effective* quality, indexed by round number: the
    /// vantage's own fault-plan verdict, forced to
    /// [`RoundQuality::Unusable`] on rounds it sat offline.
    pub quality: Vec<RoundQuality>,
    /// Rounds the vantage was offline outright.
    pub missing_rounds: Vec<Round>,
    /// Per-round total responsive addresses the vantage observed across
    /// all blocks (`0` on masked rounds).
    pub responsive_total: Vec<u64>,
    /// Block-rounds where this vantage's reachability vote disagreed with
    /// the quorum verdict — a persistent dissenter is a sick path.
    pub dissent_block_rounds: u64,
}

impl VantageLedger {
    pub(crate) fn new(id: VantageId, name: String) -> Self {
        VantageLedger {
            id,
            name,
            quality: Vec::new(),
            missing_rounds: Vec::new(),
            responsive_total: Vec::new(),
            dissent_block_rounds: 0,
        }
    }

    /// Rounds this vantage cast quorum votes in.
    pub fn usable_rounds(&self) -> usize {
        self.quality.iter().filter(|q| q.is_usable()).count()
    }

    /// Rounds measured through measurable injected loss.
    pub fn degraded_rounds(&self) -> usize {
        self.quality
            .iter()
            .filter(|q| **q == RoundQuality::Degraded)
            .count()
    }

    /// Rounds masked out of the quorum (offline or catastrophic loss).
    pub fn unusable_rounds(&self) -> usize {
        self.quality
            .iter()
            .filter(|q| **q == RoundQuality::Unusable)
            .count()
    }

    /// Signal-to-noise ratio of the vantage's responsive-address series
    /// over its usable rounds: mean divided by standard deviation (the
    /// Fig. 27 sense — how steady the vantage's view of the targets is).
    /// `None` with fewer than two usable rounds or zero variance.
    pub fn snr(&self) -> Option<f64> {
        let usable: Vec<f64> = self
            .quality
            .iter()
            .zip(&self.responsive_total)
            .filter(|(q, _)| q.is_usable())
            .map(|(_, t)| *t as f64)
            .collect();
        if usable.len() < 2 {
            return None;
        }
        // fbs-lint: allow(float-reduction-order) sequential sum over a Vec built in round order
        let mean = usable.iter().sum::<f64>() / usable.len() as f64;
        let var =
            // fbs-lint: allow(float-reduction-order) sequential sum over a Vec built in round order
            usable.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (usable.len() - 1) as f64;
        let sd = var.sqrt();
        (sd > 0.0).then(|| mean / sd)
    }
}

impl Persist for VantageLedger {
    fn persist(&self, w: &mut ByteWriter) {
        self.id.persist(w);
        self.name.persist(w);
        self.quality.persist(w);
        self.missing_rounds.persist(w);
        self.responsive_total.persist(w);
        w.put_u64(self.dissent_block_rounds);
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        Ok(VantageLedger {
            id: VantageId::restore(r)?,
            name: String::restore(r)?,
            quality: Vec::<RoundQuality>::restore(r)?,
            missing_rounds: Vec::<Round>::restore(r)?,
            responsive_total: Vec::<u64>::restore(r)?,
            dissent_block_rounds: r.get_u64()?,
        })
    }
}

/// One AS's passive background-radiation ledger.
///
/// IBR campaigns keep one ledger per AS, updated *every* round — including
/// rounds where every active vantage was `Unusable` — because the darknet
/// listens regardless of whether the scanner can transmit. `volume` is the
/// per-round aggregate IBR packet volume attributed to the AS (zero while
/// the collector was dark), `status` records whether the collector itself
/// observed the round, and `events` holds the seasonal predictor's
/// detections, closed out at campaign end.
#[derive(Debug, Clone, PartialEq)]
pub struct IbrLedger {
    /// The AS this ledger aggregates.
    pub asn: Asn,
    /// Per-round IBR volume, indexed by round number (`0` on dark rounds).
    pub volume: Vec<u64>,
    /// Per-round collector status, indexed by round number.
    pub status: Vec<IbrRoundStatus>,
    /// Passive outage detections of the seasonal predictor.
    pub events: Vec<IbrEvent>,
}

impl IbrLedger {
    pub(crate) fn new(asn: Asn) -> Self {
        IbrLedger {
            asn,
            volume: Vec::new(),
            status: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Rounds the darknet collector actually observed.
    pub fn observed_rounds(&self) -> usize {
        self.status
            .iter()
            .filter(|s| **s == IbrRoundStatus::Observed)
            .count()
    }

    /// Rounds the darknet collector itself was dark.
    pub fn dark_rounds(&self) -> usize {
        self.status
            .iter()
            .filter(|s| **s == IbrRoundStatus::Dark)
            .count()
    }

    /// Whether `round` fell inside any detected passive outage.
    pub fn in_outage(&self, round: Round) -> bool {
        self.events.iter().any(|e| e.contains(round))
    }

    /// Signal-to-noise ratio of the observed volume series (the Fig. 27
    /// sense: mean over the noise around that mean). `None` with fewer
    /// than two observed rounds or zero variance.
    pub fn snr(&self) -> Option<f64> {
        let observed: Vec<f64> = self
            .status
            .iter()
            .zip(&self.volume)
            .filter(|(s, _)| **s == IbrRoundStatus::Observed)
            .map(|(_, v)| *v as f64)
            .collect();
        if observed.len() < 2 {
            return None;
        }
        // fbs-lint: allow(float-reduction-order) sequential sum over a Vec built in round order
        let mean = observed.iter().sum::<f64>() / observed.len() as f64;
        let var = observed
            .iter()
            .map(|v| (v - mean) * (v - mean))
            // fbs-lint: allow(float-reduction-order) sequential sum over a Vec built in round order
            .sum::<f64>()
            / (observed.len() - 1) as f64;
        let sd = var.sqrt();
        (sd > 0.0).then(|| mean / sd)
    }
}

impl Persist for IbrLedger {
    fn persist(&self, w: &mut ByteWriter) {
        self.asn.persist(w);
        self.volume.persist(w);
        self.status.persist(w);
        self.events.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        let ledger = IbrLedger {
            asn: Asn::restore(r)?,
            volume: Vec::<u64>::restore(r)?,
            status: Vec::<IbrRoundStatus>::restore(r)?,
            events: Vec::<IbrEvent>::restore(r)?,
        };
        if ledger.volume.len() != ledger.status.len() {
            return Err(fbs_types::FbsError::Io {
                reason: format!(
                    "ibr ledger of AS{} has {} volumes but {} statuses",
                    ledger.asn.0,
                    ledger.volume.len(),
                    ledger.status.len()
                ),
            });
        }
        Ok(ledger)
    }
}

/// One round's shard-supervision outcome counts.
///
/// Supervised campaigns record one summary per round; the counts are
/// derived from the journaled per-shard outcomes, so a resumed campaign
/// replays the same ledger byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRoundSummary {
    /// The round the summary describes.
    pub round: Round,
    /// Shards that completed on their first attempt.
    pub completed: u32,
    /// Shards that completed only after at least one retry.
    pub retried: u32,
    /// Total panicking attempts across all shards (isolated, retried).
    pub panicked: u32,
    /// Total attempts the deadline watchdog abandoned.
    pub timed_out: u32,
    /// Shards that exhausted their retry budget — their blocks were
    /// marked missing and the round downgraded.
    pub lost: u32,
}

impl Persist for ShardRoundSummary {
    fn persist(&self, w: &mut ByteWriter) {
        self.round.persist(w);
        w.put_u32(self.completed);
        w.put_u32(self.retried);
        w.put_u32(self.panicked);
        w.put_u32(self.timed_out);
        w.put_u32(self.lost);
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        Ok(ShardRoundSummary {
            round: Round::restore(r)?,
            completed: r.get_u32()?,
            retried: r.get_u32()?,
            panicked: r.get_u32()?,
            timed_out: r.get_u32()?,
            lost: r.get_u32()?,
        })
    }
}

/// The campaign-wide shard-supervision ledger (present only when a shard
/// fault plan is configured).
#[derive(Clone)]
pub struct ShardLedger {
    /// Shards in the campaign's deterministic AS-aligned partition.
    pub shards: u32,
    /// One outcome summary per round, in round order.
    pub rounds: Vec<ShardRoundSummary>,
    /// Cumulative wall time each shard slot held a worker, nanoseconds.
    /// Diagnostic only: never persisted, and excluded from `Debug` so
    /// output comparisons across thread counts stay byte-identical.
    pub wall_ns: Vec<u64>,
}

impl ShardLedger {
    /// Total shard-rounds lost after exhausting retries.
    pub fn total_lost(&self) -> u64 {
        self.rounds.iter().map(|s| s.lost as u64).sum()
    }

    /// Total shards that needed at least one retry to complete.
    pub fn total_retried(&self) -> u64 {
        self.rounds.iter().map(|s| s.retried as u64).sum()
    }

    /// Total panicking attempts isolated by the supervisor.
    pub fn total_panicked(&self) -> u64 {
        self.rounds.iter().map(|s| s.panicked as u64).sum()
    }

    /// Total attempts abandoned by the deadline watchdog.
    pub fn total_timed_out(&self) -> u64 {
        self.rounds.iter().map(|s| s.timed_out as u64).sum()
    }

    /// Rounds in which at least one shard was lost.
    pub fn rounds_with_loss(&self) -> usize {
        self.rounds.iter().filter(|s| s.lost > 0).count()
    }
}

impl std::fmt::Debug for ShardLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `wall_ns` is wall-clock data and deliberately omitted: the
        // determinism tests compare report Debug strings across thread
        // counts, and supervision timing must never leak into them.
        f.debug_struct("ShardLedger")
            .field("shards", &self.shards)
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

/// How often and how the vantages disagreed over a campaign.
///
/// All counters stay zero in single-vantage campaigns (there is nobody to
/// disagree with).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DisagreementSummary {
    /// Rounds in which at least one block was disputed or suppressed.
    pub rounds_with_disagreement: u32,
    /// Block-rounds reachable from some usable vantages but not all — the
    /// routing-damage signature a single vantage cannot see.
    pub some_not_all_block_rounds: u64,
    /// Block-rounds where a minority reachable claim was overridden by the
    /// quorum (the graceful-degradation counter: how often one vantage's
    /// view was *not* allowed to fabricate reachability on its own).
    pub quorum_suppressed_block_rounds: u64,
}

impl Persist for DisagreementSummary {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.rounds_with_disagreement);
        w.put_u64(self.some_not_all_block_rounds);
        w.put_u64(self.quorum_suppressed_block_rounds);
    }
    fn restore(r: &mut ByteReader<'_>) -> fbs_types::Result<Self> {
        Ok(DisagreementSummary {
            rounds_with_disagreement: r.get_u32()?,
            some_not_all_block_rounds: r.get_u64()?,
            quorum_suppressed_block_rounds: r.get_u64()?,
        })
    }
}

/// Everything a campaign run produces.
#[derive(Debug)]
pub struct CampaignReport {
    /// Rounds simulated.
    pub rounds: u32,
    /// Months covered.
    pub months: Vec<MonthId>,
    /// Outage events per AS (all blocks of the AS).
    pub as_events: BTreeMap<Asn, Vec<OutageEvent>>,
    /// Outage events per oblast (regional blocks only).
    pub region_events: BTreeMap<Oblast, Vec<OutageEvent>>,
    /// Outage events of individually tracked blocks.
    pub block_events: BTreeMap<BlockId, Vec<OutageEvent>>,
    /// The IODA baseline's report, when the baseline ran.
    pub ioda: Option<IodaReport>,
    /// Regional classification detail.
    pub classification: ClassificationOutcome,
    /// Full signal series of tracked entities.
    pub tracked: BTreeMap<EntityId, EntitySeries>,
    /// Monthly RTT aggregates of tracked ASes.
    pub rtt_monthly: BTreeMap<(Asn, MonthId), MonthlyRtt>,
    /// Per-oblast monthly aggregates.
    pub oblast_monthly: BTreeMap<(Oblast, MonthId), OblastMonth>,
    /// Same eligibility tallies over blocks *not* regional anywhere.
    pub non_regional_monthly: BTreeMap<MonthId, OblastMonth>,
    /// AS sizes in /24 blocks (for coverage CDFs).
    pub as_sizes: BTreeMap<Asn, usize>,
    /// Rounds with no measurement (vantage offline).
    pub missing_rounds: Vec<Round>,
    /// Per-round measurement quality (indexed by round number): `Ok` on a
    /// clean scan, `Degraded` under measurable injected loss, `Unusable`
    /// when the round carried no usable measurement (vantage offline or
    /// catastrophic loss).
    pub round_quality: Vec<RoundQuality>,
    /// Per-round per-feed staleness ledger (empty when the feed layer is
    /// off).
    pub feed_ledger: FeedLedger,
    /// Summary health per feed in [`FeedKind::ALL`] order (empty when the
    /// feed layer is off).
    pub feed_health: Vec<FeedHealth>,
    /// Every non-empty quarantine a feed delivery produced, in round
    /// order, for the quarantine report writer.
    pub feed_quarantines: Vec<TaggedQuarantine>,
    /// Per-vantage quality/throughput ledgers in roster order (empty in
    /// single-vantage campaigns).
    pub vantages: Vec<VantageLedger>,
    /// How often the vantages disagreed (all zeros in single-vantage
    /// campaigns).
    pub disagreement: DisagreementSummary,
    /// Per-AS passive background-radiation ledgers in AS order (empty when
    /// the IBR layer is off).
    pub ibr: Vec<IbrLedger>,
    /// The shard-supervision ledger (`None` when no shard fault plan is
    /// configured — unsupervised campaigns journal no shard outcomes).
    pub shard: Option<ShardLedger>,
}

impl CampaignReport {
    /// Total AS-level outage events.
    pub fn total_as_outages(&self) -> usize {
        self.as_events.values().map(|v| v.len()).sum()
    }

    /// ASes with at least one detected outage.
    pub fn ases_with_outages(&self) -> usize {
        self.as_events.values().filter(|v| !v.is_empty()).count()
    }

    /// All AS events flattened.
    pub fn all_as_events(&self) -> Vec<OutageEvent> {
        self.as_events.values().flatten().copied().collect()
    }

    /// Events of one oblast (empty slice when none).
    pub fn region_events_of(&self, oblast: Oblast) -> &[OutageEvent] {
        self.region_events
            .get(&oblast)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Mean responsive addresses across an oblast's regional blocks over a
    /// calendar year.
    pub fn yearly_mean_responsive(&self, oblast: Oblast, year: i32) -> f64 {
        let months: Vec<&OblastMonth> = self
            .oblast_monthly
            .iter()
            .filter(|((o, m), _)| *o == oblast && m.year() == year)
            .map(|(_, v)| v)
            .collect();
        if months.is_empty() {
            return 0.0;
        }
        months.iter().map(|m| m.mean_responsive()).sum::<f64>() / months.len() as f64
    }

    /// The tracked series of an entity, if tracked.
    pub fn series(&self, entity: EntityId) -> Option<&EntitySeries> {
        self.tracked.get(&entity)
    }

    /// The quality verdict of one round (`Ok` if out of range).
    pub fn quality_of(&self, round: Round) -> RoundQuality {
        self.round_quality
            .get(round.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Number of rounds scanned through measurable loss.
    pub fn degraded_rounds(&self) -> usize {
        self.round_quality
            .iter()
            .filter(|q| **q == RoundQuality::Degraded)
            .count()
    }

    /// Number of rounds carrying no usable measurement.
    pub fn unusable_rounds(&self) -> usize {
        self.round_quality
            .iter()
            .filter(|q| **q == RoundQuality::Unusable)
            .count()
    }

    /// The summary health ledger of one feed (`None` when the feed layer
    /// was off).
    pub fn feed_health_of(&self, kind: FeedKind) -> Option<&FeedHealth> {
        self.feed_health.iter().find(|h| h.kind == kind)
    }

    /// The quarantine report text for every feed delivery that lost
    /// records, ready for [`fbs_feeds::quarantine::write_report`]-style
    /// consumption.
    pub fn feed_quarantine_report(&self) -> String {
        fbs_feeds::render_report(&self.feed_quarantines)
    }

    /// One vantage's ledger by name (`None` in single-vantage campaigns
    /// or for an unknown name).
    pub fn vantage_ledger(&self, name: &str) -> Option<&VantageLedger> {
        self.vantages.iter().find(|v| v.name == name)
    }

    /// One AS's passive-radiation ledger (`None` when the IBR layer was
    /// off or the AS is unknown).
    pub fn ibr_ledger(&self, asn: Asn) -> Option<&IbrLedger> {
        self.ibr.iter().find(|l| l.asn == asn)
    }

    /// Total passive outage detections across all ASes.
    pub fn total_ibr_outages(&self) -> usize {
        self.ibr.iter().map(|l| l.events.len()).sum()
    }
}
