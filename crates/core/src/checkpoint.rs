//! Durable campaign execution: round records, snapshots, and the store.
//!
//! A checkpoint directory holds two files:
//!
//! * `rounds.wal` — the write-ahead round journal ([`fbs_journal::Journal`]).
//!   One record per campaign round, appended *after* the round has been
//!   applied to the in-memory pipeline, holding everything the measurement
//!   path produced: the vantage's online flag, the round's
//!   [`RoundQuality`] verdict, and the per-block observations (responsive
//!   count, RTT, routed flag). Values derived deterministically from the
//!   world — trinocular availability, probe-panel staleness, eligibility —
//!   are *not* journaled; replay recomputes them, which keeps records
//!   small and resume bit-identical.
//! * `state.snap` — an atomic snapshot of the full
//!   [`PipelineState`](crate::pipeline) written every
//!   [`CheckpointPolicy::snapshot_every`] rounds, so resuming replays at
//!   most one snapshot interval of journal records instead of the whole
//!   campaign.
//!
//! Damage handling: the journal self-heals by truncating to the last
//! CRC-valid record; a snapshot that fails validation is moved to
//! `state.snap.quarantined` and the journal is replayed from round 0 (the
//! journal is never compacted, precisely so that it alone can rebuild the
//! full state).

use crate::pipeline::PipelineState;
use fbs_feeds::FeedQuarantine;
use fbs_journal::{quarantine_snapshot, read_snapshot, write_snapshot, Journal, JournalRecovery};
use fbs_types::codec::{ByteReader, ByteWriter, Persist};
use fbs_types::{FbsError, Result, Round, RoundQuality};
use std::path::{Path, PathBuf};

/// Schema version of both the journal record payloads and the snapshot
/// payload. Bumped on any change to [`RoundRecord`] or `PipelineState`
/// encoding; files with another version are rejected as corrupt rather
/// than misread.
///
/// Version history: 1 — initial crash-safe campaigns; 2 — feed-delivery
/// observations ([`FeedObs`]) and the per-block `routed_known` bit; 3 —
/// multi-vantage campaigns (per-vantage [`VantageObs`] in round records,
/// per-vantage quality ledgers in the snapshot); 4 — the passive
/// background-radiation signal (per-AS [`IbrObs`] in round records,
/// per-AS seasonal predictors and IBR ledgers in the snapshot); 5 —
/// supervised sharded execution (per-shard [`ShardObs`] outcomes in round
/// records, per-round shard summaries in the snapshot).
///
/// A single-vantage campaign (empty roster) still writes
/// [`LEGACY_STATE_VERSION`] files, byte-identical to what it always wrote;
/// version 3 is only emitted when the roster is non-empty,
/// [`IBR_STATE_VERSION`] only when the passive signal is enabled, and
/// [`SHARD_STATE_VERSION`] only when shard supervision is enabled
/// (`shard_plan: Some`), so pre-existing checkpoints stay readable and
/// writable without any migration.
pub const STATE_VERSION: u32 = 3;

/// The pre-multi-vantage schema version, still both read and written (it
/// is *the* on-disk format for single-vantage campaigns).
pub const LEGACY_STATE_VERSION: u32 = 2;

/// The passive-signal schema version, written only by campaigns with IBR
/// enabled (`ibr: Some`). Unlike version 3 it carries both the
/// single-vantage `blocks` and the multi-vantage `vantages` layouts, so
/// it composes with either scanning mode.
pub const IBR_STATE_VERSION: u32 = 4;

/// The supervised-shard schema version, written only by campaigns with a
/// shard-fault plan (`shard_plan: Some`). It carries every section of the
/// earlier layouts — `blocks`, `vantages`, and an *optional* darknet
/// observation behind a presence flag — plus the per-shard supervision
/// outcomes, so it composes with any scanning/passive mode.
pub const SHARD_STATE_VERSION: u32 = 5;

/// Journal file name inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "rounds.wal";
/// Snapshot file name inside a checkpoint directory.
pub const SNAPSHOT_FILE: &str = "state.snap";

/// When and how durably checkpoints are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot the full pipeline state every this many rounds
    /// (`0` disables snapshots; the journal alone still allows resume).
    pub snapshot_every: u32,
    /// Fsync the journal after every appended round. Disabling trades the
    /// last round's durability for throughput.
    pub fsync: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        // One snapshot per simulated week (84 two-hour rounds): recovery
        // replays at most a week of journal, and snapshot I/O stays well
        // under one percent of round processing. See EXPERIMENTS.md for
        // the cadence trade-off.
        CheckpointPolicy {
            snapshot_every: 84,
            fsync: true,
        }
    }
}

/// What one round's measurement produced — the journal record payload.
///
/// Offline or unusable rounds carry an empty `blocks` vector: the skip is
/// itself the observation.
///
/// In multi-vantage campaigns `vantages` holds one [`VantageObs`] per
/// roster entry (in roster order), `blocks` stays empty (the fused view is
/// recomputed deterministically in `apply_round`, never journaled), and
/// the top-level `quality` is the *fused* round quality — the best among
/// usable vantages. Single-vantage records leave `vantages` empty and are
/// encoded in the legacy version-2 layout, byte-identical to before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RoundRecord {
    /// The round this record describes.
    pub round: Round,
    /// Whether the vantage point was online.
    pub online: bool,
    /// The fault-plan quality verdict for the round (fused over usable
    /// vantages in multi-vantage campaigns).
    pub quality: RoundQuality,
    /// Per-block observations, indexed like `World::blocks`; empty when
    /// the round was skipped, and always empty in multi-vantage records.
    pub blocks: Vec<BlockObs>,
    /// Feed-delivery observations in [`fbs_types::FeedKind::ALL`] order.
    /// Empty when the feed layer is disabled (`feed_plan: None`), exactly
    /// three entries when it is on. Feeds are fetched even on rounds the
    /// vantage sat offline — the mirrors do not care about our scanner.
    /// Feeds are shared infrastructure, fetched once, not per vantage.
    pub feeds: Vec<FeedObs>,
    /// Per-vantage observations in roster order; empty in single-vantage
    /// campaigns.
    pub vantages: Vec<VantageObs>,
    /// The darknet collector's view of the round: per-AS background
    /// radiation, or the collector's own darkness. `None` when the passive
    /// signal is disabled — only then do the pre-IBR layouts apply.
    pub ibr: Option<IbrObs>,
    /// Per-shard supervision outcomes for the round, in roster (slot)
    /// order. `None` when shard supervision is off — only then do the
    /// pre-shard layouts apply. Journaling outcomes (not timings) is what
    /// makes a killed-and-resumed campaign replay a degraded round
    /// byte-identically: replay reads which shards were lost instead of
    /// re-running the supervisor.
    pub shards: Option<ShardObs>,
}

/// The shard supervisor's verdicts for one round, one entry per shard in
/// slot order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ShardObs {
    /// Per-shard outcomes, indexed by shard slot.
    pub outcomes: Vec<ShardOutcomeObs>,
}

/// How one shard's supervised execution ended.
///
/// Counters are per-round, per-shard: `panics` and `timeouts` count the
/// *failed attempts* that preceded the final verdict, so a shard that
/// panicked once and then succeeded records `Completed { attempt: 1,
/// panics: 1, timeouts: 0 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardOutcomeObs {
    /// The shard produced its chunk on attempt `attempt` (0 = first try).
    Completed {
        /// The attempt index that succeeded.
        attempt: u32,
        /// Attempts that ended in a caught panic.
        panics: u32,
        /// Attempts the deadline watchdog struck down.
        timeouts: u32,
    },
    /// Every attempt in the retry budget failed; the shard's blocks are
    /// missing this round and the round quality is downgraded.
    Lost {
        /// Attempts that ended in a caught panic.
        panics: u32,
        /// Attempts the deadline watchdog struck down.
        timeouts: u32,
    },
}

impl ShardOutcomeObs {
    /// Whether the shard produced its chunk.
    pub fn completed(&self) -> bool {
        matches!(self, ShardOutcomeObs::Completed { .. })
    }
}

impl Persist for ShardObs {
    fn persist(&self, w: &mut ByteWriter) {
        self.outcomes.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(ShardObs {
            outcomes: Vec::<ShardOutcomeObs>::restore(r)?,
        })
    }
}

impl Persist for ShardOutcomeObs {
    fn persist(&self, w: &mut ByteWriter) {
        match self {
            ShardOutcomeObs::Completed {
                attempt,
                panics,
                timeouts,
            } => {
                w.put_u8(0);
                w.put_u32(*attempt);
                w.put_u32(*panics);
                w.put_u32(*timeouts);
            }
            ShardOutcomeObs::Lost { panics, timeouts } => {
                w.put_u8(1);
                w.put_u32(*panics);
                w.put_u32(*timeouts);
            }
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(ShardOutcomeObs::Completed {
                attempt: r.get_u32()?,
                panics: r.get_u32()?,
                timeouts: r.get_u32()?,
            }),
            1 => Ok(ShardOutcomeObs::Lost {
                panics: r.get_u32()?,
                timeouts: r.get_u32()?,
            }),
            other => Err(FbsError::Io {
                reason: format!("unknown shard outcome tag {other}"),
            }),
        }
    }
}

/// One round of passive background radiation as the darknet collector saw
/// it. Unlike active observations this is measured on *every* round — the
/// darknet does not care whether our scanner is online.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct IbrObs {
    /// The collector itself was dark: `volumes` is empty and the predictor
    /// freezes rather than reading the silence as an outage.
    pub dark: bool,
    /// Unsolicited packet volume per AS, in campaign AS order; empty when
    /// `dark`.
    pub volumes: Vec<u64>,
}

impl Persist for IbrObs {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_bool(self.dark);
        self.volumes.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let dark = r.get_bool()?;
        let volumes = Vec::<u64>::restore(r)?;
        if dark && !volumes.is_empty() {
            return Err(FbsError::Io {
                reason: "dark IBR observation carries volumes".to_string(),
            });
        }
        Ok(IbrObs { dark, volumes })
    }
}

/// One vantage point's view of one round in a multi-vantage campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct VantageObs {
    /// Whether the vantage was online this round.
    pub online: bool,
    /// The vantage's own fault-plan quality verdict for the round.
    pub quality: RoundQuality,
    /// The vantage's per-block observations; empty when the vantage was
    /// offline or its round was [`RoundQuality::Unusable`] (it is masked
    /// out of the quorum, so it measures nothing).
    pub blocks: Vec<BlockObs>,
}

impl Persist for VantageObs {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_bool(self.online);
        self.quality.persist(w);
        self.blocks.persist(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(VantageObs {
            online: r.get_bool()?,
            quality: RoundQuality::restore(r)?,
            blocks: Vec::<BlockObs>::restore(r)?,
        })
    }
}

/// One block's measured values after the faulty measurement path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockObs {
    /// Responding addresses that survived loss/thinning.
    pub responsive: u32,
    /// Observed round-trip time, nanoseconds (spikes included).
    pub rtt_ns: u64,
    /// Whether the block was BGP-routed.
    pub routed: bool,
    /// Whether this round's BGP feed actually delivered knowledge of the
    /// block's routing state. `false` means the route record was lost to
    /// quarantine (or the whole dump was rejected or absent): the pipeline
    /// must carry the last known routed bit forward instead of trusting
    /// `routed`. Always `true` when the feed layer is off.
    pub routed_known: bool,
}

impl Persist for BlockObs {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.responsive);
        w.put_u64(self.rtt_ns);
        w.put_bool(self.routed);
        w.put_bool(self.routed_known);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(BlockObs {
            responsive: r.get_u32()?,
            rtt_ns: r.get_u64()?,
            routed: r.get_bool()?,
            routed_known: r.get_bool()?,
        })
    }
}

/// What one round's delivery attempt(s) for one feed produced.
///
/// The journal keeps the full quarantine detail so crash replay reproduces
/// the staleness ledger and the quarantine report byte-for-byte without
/// re-fetching anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FeedObs {
    /// The feed was not due this round (monthly / yearly cadence).
    NotDue,
    /// A delivery arrived and passed tolerance; `quarantine` may still
    /// carry individually lost records.
    Accepted {
        /// Extra fetch attempts consumed before the delivery landed.
        retries: u32,
        /// What the lossy parse set aside.
        quarantine: FeedQuarantine,
    },
    /// A delivery arrived but exceeded tolerance; carried forward.
    Rejected {
        /// Extra fetch attempts consumed before the delivery landed.
        retries: u32,
        /// The evidence for the rejection.
        quarantine: FeedQuarantine,
    },
    /// No delivery at all after the retry budget.
    Absent {
        /// Extra fetch attempts consumed (the whole budget).
        retries: u32,
    },
}

impl Persist for FeedObs {
    fn persist(&self, w: &mut ByteWriter) {
        match self {
            FeedObs::NotDue => w.put_u8(0),
            FeedObs::Accepted {
                retries,
                quarantine,
            } => {
                w.put_u8(1);
                w.put_u32(*retries);
                quarantine.persist(w);
            }
            FeedObs::Rejected {
                retries,
                quarantine,
            } => {
                w.put_u8(2);
                w.put_u32(*retries);
                quarantine.persist(w);
            }
            FeedObs::Absent { retries } => {
                w.put_u8(3);
                w.put_u32(*retries);
            }
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(FeedObs::NotDue),
            1 => Ok(FeedObs::Accepted {
                retries: r.get_u32()?,
                quarantine: FeedQuarantine::restore(r)?,
            }),
            2 => Ok(FeedObs::Rejected {
                retries: r.get_u32()?,
                quarantine: FeedQuarantine::restore(r)?,
            }),
            3 => Ok(FeedObs::Absent {
                retries: r.get_u32()?,
            }),
            other => Err(FbsError::Io {
                reason: format!("unknown feed observation tag {other}"),
            }),
        }
    }
}

impl Persist for RoundRecord {
    fn persist(&self, w: &mut ByteWriter) {
        // One field sequence for all four layouts, with the version gating
        // which sections appear: version 5 (shard supervision on) carries
        // every section, with the darknet observation behind a presence
        // flag; version 4 (passive signal on) carries both scanning
        // layouts plus the darknet observation; version 2 is the legacy
        // single-vantage layout byte-for-byte; version 3 swaps the block
        // section for the vantage roster.
        let version = self.layout_version();
        w.put_u32(version);
        self.round.persist(w);
        w.put_bool(self.online);
        self.quality.persist(w);
        if version != STATE_VERSION {
            self.blocks.persist(w);
        }
        self.feeds.persist(w);
        if version != LEGACY_STATE_VERSION {
            self.vantages.persist(w);
        }
        if version == SHARD_STATE_VERSION {
            w.put_bool(self.ibr.is_some());
        }
        if let Some(ibr) = &self.ibr {
            ibr.persist(w);
        }
        if let Some(shards) = &self.shards {
            shards.persist(w);
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self> {
        let version = r.get_u32()?;
        match version {
            LEGACY_STATE_VERSION => Ok(RoundRecord {
                round: Round::restore(r)?,
                online: r.get_bool()?,
                quality: RoundQuality::restore(r)?,
                blocks: Vec::<BlockObs>::restore(r)?,
                feeds: Vec::<FeedObs>::restore(r)?,
                vantages: Vec::new(),
                ibr: None,
                shards: None,
            }),
            STATE_VERSION => {
                let round = Round::restore(r)?;
                let online = r.get_bool()?;
                let quality = RoundQuality::restore(r)?;
                let feeds = Vec::<FeedObs>::restore(r)?;
                let vantages = Vec::<VantageObs>::restore(r)?;
                if vantages.is_empty() {
                    return Err(FbsError::Io {
                        reason: format!(
                            "version-{STATE_VERSION} round record with an empty vantage roster"
                        ),
                    });
                }
                Ok(RoundRecord {
                    round,
                    online,
                    quality,
                    blocks: Vec::new(),
                    feeds,
                    vantages,
                    ibr: None,
                    shards: None,
                })
            }
            IBR_STATE_VERSION => Ok(RoundRecord {
                round: Round::restore(r)?,
                online: r.get_bool()?,
                quality: RoundQuality::restore(r)?,
                blocks: Vec::<BlockObs>::restore(r)?,
                feeds: Vec::<FeedObs>::restore(r)?,
                vantages: Vec::<VantageObs>::restore(r)?,
                ibr: Some(IbrObs::restore(r)?),
                shards: None,
            }),
            SHARD_STATE_VERSION => {
                let round = Round::restore(r)?;
                let online = r.get_bool()?;
                let quality = RoundQuality::restore(r)?;
                let blocks = Vec::<BlockObs>::restore(r)?;
                let feeds = Vec::<FeedObs>::restore(r)?;
                let vantages = Vec::<VantageObs>::restore(r)?;
                let ibr = if r.get_bool()? {
                    Some(IbrObs::restore(r)?)
                } else {
                    None
                };
                let shards = ShardObs::restore(r)?;
                if shards.outcomes.is_empty() {
                    return Err(FbsError::Io {
                        reason: format!(
                            "version-{SHARD_STATE_VERSION} round record with no shard outcomes"
                        ),
                    });
                }
                Ok(RoundRecord {
                    round,
                    online,
                    quality,
                    blocks,
                    feeds,
                    vantages,
                    ibr,
                    shards: Some(shards),
                })
            }
            other => Err(FbsError::Io {
                reason: format!(
                    "round record version {other}, expected {LEGACY_STATE_VERSION}, \
                     {STATE_VERSION}, {IBR_STATE_VERSION} or {SHARD_STATE_VERSION}"
                ),
            }),
        }
    }
}

impl RoundRecord {
    /// The journal layout this record persists as: version 5 whenever
    /// shard supervision rides along, version 4 whenever the passive
    /// observation does (without shards), else the legacy single-vantage
    /// version 2 (no roster) or the multi-vantage version 3.
    fn layout_version(&self) -> u32 {
        if self.shards.is_some() {
            SHARD_STATE_VERSION
        } else if self.ibr.is_some() {
            IBR_STATE_VERSION
        } else if self.vantages.is_empty() {
            LEGACY_STATE_VERSION
        } else {
            STATE_VERSION
        }
    }

    /// Serializes the record to journal payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.persist(&mut w);
        w.into_bytes()
    }

    /// Deserializes a journal payload, requiring full consumption.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let record = Self::restore(&mut r)?;
        r.expect_exhausted()?;
        Ok(record)
    }
}

/// What opening a checkpoint directory found and repaired.
#[derive(Debug, Clone, Default)]
pub struct ResumeDiagnostics {
    /// Journal tail recovery (truncation / quarantine of `rounds.wal`).
    pub journal: JournalRecovery,
    /// Whether a valid snapshot was loaded.
    pub snapshot_loaded: bool,
    /// Where a damaged snapshot was moved, if one was quarantined.
    pub snapshot_quarantined: Option<PathBuf>,
    /// Journal records replayed on top of the snapshot (or from scratch).
    pub replayed_rounds: u32,
    /// Journal records re-measured to heal a journal that lagged behind
    /// the snapshot (after its corrupt tail was truncated).
    pub healed_rounds: u32,
    /// The schema version of a structurally valid snapshot that was
    /// quarantined because no decoder accepts it (future or foreign).
    pub snapshot_foreign_version: Option<u32>,
}

/// What [`CheckpointStore::open`] recovers from a checkpoint directory:
/// the store itself, the snapshot schema version and payload if a valid
/// one was present, the recovered journal record payloads, and the
/// recovery diagnostics.
pub(crate) type OpenedCheckpoint = (
    CheckpointStore,
    Option<(u32, Vec<u8>)>,
    Vec<Vec<u8>>,
    ResumeDiagnostics,
);

/// The open checkpoint directory a running campaign appends to.
pub(crate) struct CheckpointStore {
    journal: Journal,
    snapshot_path: PathBuf,
    policy: CheckpointPolicy,
}

impl CheckpointStore {
    /// Starts a fresh checkpoint directory, truncating any prior journal
    /// and removing any prior snapshot.
    pub fn fresh(dir: &Path, policy: CheckpointPolicy) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            std::fs::remove_file(&snapshot_path)?;
        }
        Ok(CheckpointStore {
            journal: Journal::create(dir.join(JOURNAL_FILE))?,
            snapshot_path,
            policy,
        })
    }

    /// Opens an existing checkpoint directory (creating it if absent),
    /// recovering the journal and validating the snapshot.
    ///
    /// Returns the store, the snapshot payload if a valid one was present
    /// (already version-checked), the recovered journal record payloads,
    /// and diagnostics. A corrupt snapshot is quarantined, not fatal.
    pub fn open(dir: &Path, policy: CheckpointPolicy) -> Result<OpenedCheckpoint> {
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let mut diagnostics = ResumeDiagnostics::default();

        let snapshot_payload = match read_snapshot(&snapshot_path) {
            Ok(None) => None,
            Ok(Some((version, payload)))
                if version == STATE_VERSION
                    || version == LEGACY_STATE_VERSION
                    || version == IBR_STATE_VERSION
                    || version == SHARD_STATE_VERSION =>
            {
                diagnostics.snapshot_loaded = true;
                Some((version, payload))
            }
            Ok(Some((version, _))) => {
                // A future or foreign schema: unreadable, same as damage,
                // but the version is kept so resume reporting can say
                // *which* schema stranded the snapshot.
                diagnostics.snapshot_foreign_version = Some(version);
                diagnostics.snapshot_quarantined = Some(quarantine_snapshot(&snapshot_path)?);
                None
            }
            Err(FbsError::CorruptSnapshot { .. }) => {
                diagnostics.snapshot_quarantined = Some(quarantine_snapshot(&snapshot_path)?);
                None
            }
            Err(e) => return Err(e),
        };

        let (journal, records, recovery) = Journal::open(dir.join(JOURNAL_FILE))?;
        diagnostics.journal = recovery;

        Ok((
            CheckpointStore {
                journal,
                snapshot_path,
                policy,
            },
            snapshot_payload,
            records,
            diagnostics,
        ))
    }

    /// Appends one round record, fsyncing per policy.
    pub fn append(&mut self, record: &RoundRecord) -> Result<()> {
        self.journal.append(&record.encode())?;
        if self.policy.fsync {
            self.journal.sync()?;
        }
        Ok(())
    }

    /// Writes a snapshot if the policy says this round boundary gets one.
    pub fn maybe_snapshot(&mut self, completed_rounds: u32, state: &PipelineState) -> Result<()> {
        if self.policy.snapshot_every == 0
            || !completed_rounds.is_multiple_of(self.policy.snapshot_every)
        {
            return Ok(());
        }
        self.write_snapshot_now(state)
    }

    /// Moves the snapshot file aside as `state.snap.quarantined`, used
    /// when the payload was structurally valid but failed logic-level
    /// restoration (schema drift, wrong world). Returns the new path, or
    /// `None` when no snapshot file exists.
    pub fn quarantine_snapshot_file(&self) -> Result<Option<PathBuf>> {
        if self.snapshot_path.exists() {
            Ok(Some(quarantine_snapshot(&self.snapshot_path)?))
        } else {
            Ok(None)
        }
    }

    /// Unconditionally snapshots the current state, in the schema version
    /// the state's vantage mode dictates (legacy for single-vantage).
    pub fn write_snapshot_now(&mut self, state: &PipelineState) -> Result<()> {
        let mut w = ByteWriter::new();
        state.persist_into(&mut w);
        write_snapshot(&self.snapshot_path, state.schema_version(), &w.into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_record_roundtrips() {
        let record = RoundRecord {
            round: Round(42),
            online: true,
            quality: RoundQuality::Degraded,
            blocks: vec![
                BlockObs {
                    responsive: 118,
                    rtt_ns: 40_120_000,
                    routed: true,
                    routed_known: true,
                },
                BlockObs {
                    responsive: 0,
                    rtt_ns: 0,
                    routed: false,
                    routed_known: false,
                },
            ],
            feeds: Vec::new(),
            vantages: Vec::new(),
            ibr: None,
            shards: None,
        };
        let back = RoundRecord::decode(&record.encode()).unwrap();
        assert_eq!(back, record);
        // The single-vantage encoding is pinned to the legacy version byte:
        // old readers and writers keep interoperating with no migration.
        assert_eq!(record.encode()[0] as u32, LEGACY_STATE_VERSION);

        let skipped = RoundRecord {
            round: Round(7),
            online: false,
            quality: RoundQuality::Unusable,
            blocks: Vec::new(),
            feeds: Vec::new(),
            vantages: Vec::new(),
            ibr: None,
            shards: None,
        };
        assert_eq!(RoundRecord::decode(&skipped.encode()).unwrap(), skipped);
    }

    #[test]
    fn multi_vantage_record_roundtrips_as_version_3() {
        let obs = |responsive: u32| BlockObs {
            responsive,
            rtt_ns: 41_000_000,
            routed: true,
            routed_known: true,
        };
        let record = RoundRecord {
            round: Round(12),
            online: true,
            quality: RoundQuality::Ok,
            blocks: Vec::new(),
            feeds: Vec::new(),
            vantages: vec![
                VantageObs {
                    online: true,
                    quality: RoundQuality::Ok,
                    blocks: vec![obs(30), obs(0)],
                },
                VantageObs {
                    online: true,
                    quality: RoundQuality::Unusable,
                    blocks: Vec::new(),
                },
                VantageObs {
                    online: false,
                    quality: RoundQuality::Ok,
                    blocks: Vec::new(),
                },
            ],
            ibr: None,
            shards: None,
        };
        assert_eq!(record.encode()[0] as u32, STATE_VERSION);
        assert_eq!(RoundRecord::decode(&record.encode()).unwrap(), record);
        // A version-3 record must carry a roster; an empty one is damage.
        let empty = RoundRecord {
            vantages: Vec::new(),
            ..record.clone()
        };
        let mut bytes = empty.encode();
        bytes[0] = STATE_VERSION as u8;
        assert!(RoundRecord::decode(&bytes).is_err());
    }

    #[test]
    fn round_record_with_feed_observations_roundtrips() {
        let quarantine = FeedQuarantine::measure(
            "10.0.0.0/24|65000\ngarbage\n",
            1,
            vec![fbs_types::QuarantinedRecord::new(
                2,
                "missing '|'",
                "garbage",
            )],
        );
        let record = RoundRecord {
            round: Round(9),
            online: true,
            quality: RoundQuality::Ok,
            blocks: vec![BlockObs {
                responsive: 3,
                rtt_ns: 1,
                routed: true,
                routed_known: false,
            }],
            feeds: vec![
                FeedObs::Accepted {
                    retries: 1,
                    quarantine: quarantine.clone(),
                },
                FeedObs::NotDue,
                FeedObs::Rejected {
                    retries: 0,
                    quarantine,
                },
            ],
            vantages: Vec::new(),
            ibr: None,
            shards: None,
        };
        assert_eq!(RoundRecord::decode(&record.encode()).unwrap(), record);
        let absent = RoundRecord {
            feeds: vec![FeedObs::Absent { retries: 2 }; 3],
            ..record
        };
        assert_eq!(RoundRecord::decode(&absent.encode()).unwrap(), absent);
    }

    #[test]
    fn ibr_record_roundtrips_as_version_4() {
        // Version 4 composes with the single-vantage layout…
        let single = RoundRecord {
            round: Round(42),
            online: true,
            quality: RoundQuality::Ok,
            blocks: vec![BlockObs {
                responsive: 9,
                rtt_ns: 40_000_000,
                routed: true,
                routed_known: true,
            }],
            feeds: Vec::new(),
            vantages: Vec::new(),
            ibr: Some(IbrObs {
                dark: false,
                volumes: vec![120_000, 0, 7],
            }),
            shards: None,
        };
        assert_eq!(single.encode()[0] as u32, IBR_STATE_VERSION);
        assert_eq!(RoundRecord::decode(&single.encode()).unwrap(), single);
        // …and with a vantage roster, and with a dark collector.
        let rostered = RoundRecord {
            blocks: Vec::new(),
            vantages: vec![VantageObs {
                online: true,
                quality: RoundQuality::Degraded,
                blocks: vec![],
            }],
            ibr: Some(IbrObs {
                dark: true,
                volumes: Vec::new(),
            }),
            ..single.clone()
        };
        assert_eq!(rostered.encode()[0] as u32, IBR_STATE_VERSION);
        assert_eq!(RoundRecord::decode(&rostered.encode()).unwrap(), rostered);
        // A dark observation claiming volumes is structural damage.
        let mut w = ByteWriter::new();
        w.put_bool(true);
        vec![5u64].persist(&mut w);
        assert!(IbrObs::restore(&mut ByteReader::new(&w.into_bytes())).is_err());
    }

    #[test]
    fn shard_record_roundtrips_as_version_5() {
        let outcomes = ShardObs {
            outcomes: vec![
                ShardOutcomeObs::Completed {
                    attempt: 0,
                    panics: 0,
                    timeouts: 0,
                },
                ShardOutcomeObs::Completed {
                    attempt: 2,
                    panics: 1,
                    timeouts: 1,
                },
                ShardOutcomeObs::Lost {
                    panics: 3,
                    timeouts: 0,
                },
            ],
        };
        assert!(outcomes.outcomes[0].completed());
        assert!(!outcomes.outcomes[2].completed());
        // Version 5 composes with the single-vantage layout, no darknet…
        let single = RoundRecord {
            round: Round(90),
            online: true,
            quality: RoundQuality::Degraded,
            blocks: vec![BlockObs {
                responsive: 7,
                rtt_ns: 41_000_000,
                routed: true,
                routed_known: true,
            }],
            feeds: Vec::new(),
            vantages: Vec::new(),
            ibr: None,
            shards: Some(outcomes.clone()),
        };
        assert_eq!(single.encode()[0] as u32, SHARD_STATE_VERSION);
        assert_eq!(RoundRecord::decode(&single.encode()).unwrap(), single);
        // …and with a roster plus a darknet observation behind the flag.
        let full = RoundRecord {
            blocks: Vec::new(),
            vantages: vec![VantageObs {
                online: true,
                quality: RoundQuality::Ok,
                blocks: vec![],
            }],
            ibr: Some(IbrObs {
                dark: false,
                volumes: vec![11, 0],
            }),
            ..single.clone()
        };
        assert_eq!(full.encode()[0] as u32, SHARD_STATE_VERSION);
        assert_eq!(RoundRecord::decode(&full.encode()).unwrap(), full);
        // A version-5 record must carry shard outcomes; none is damage.
        let mut w = ByteWriter::new();
        let hollow = RoundRecord {
            shards: Some(ShardObs {
                outcomes: Vec::new(),
            }),
            ..single.clone()
        };
        hollow.persist(&mut w);
        assert!(RoundRecord::decode(&w.into_bytes()).is_err());
        // An unknown outcome tag is damage.
        let mut w = ByteWriter::new();
        w.put_u8(9);
        assert!(ShardOutcomeObs::restore(&mut ByteReader::new(&w.into_bytes())).is_err());
    }

    #[test]
    fn version_drift_is_rejected() {
        let record = RoundRecord {
            round: Round(0),
            online: true,
            quality: RoundQuality::Ok,
            blocks: Vec::new(),
            feeds: Vec::new(),
            vantages: Vec::new(),
            ibr: None,
            shards: None,
        };
        let mut bytes = record.encode();
        bytes[0] = 99; // version byte
        assert!(RoundRecord::decode(&bytes).is_err());
        // A version-1 record (pre-feed-layer schema) is version drift too.
        let mut bytes = record.encode();
        bytes[0] = 1;
        assert!(RoundRecord::decode(&bytes).is_err());
        // Trailing garbage after a valid record is also rejected.
        let mut bytes = record.encode();
        bytes.push(0);
        assert!(RoundRecord::decode(&bytes).is_err());
    }

    #[test]
    fn round_record_version_probe_is_exhaustive() {
        // Foreign tags fail *at the probe*, carrying the tag in the error
        // so an operator can see which schema stranded the journal.
        for foreign in [0u32, 1, 6, u32::MAX] {
            let mut w = ByteWriter::new();
            w.put_u32(foreign);
            let err = RoundRecord::decode(&w.into_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("round record version"),
                "tag {foreign}: unexpected error shape: {msg}"
            );
            assert!(
                msg.contains(&foreign.to_string()),
                "tag {foreign} missing from error: {msg}"
            );
        }
        // The four live tags pass the probe: a truncated payload fails in
        // the section decoders, never as version drift.
        for live in [
            LEGACY_STATE_VERSION,
            STATE_VERSION,
            IBR_STATE_VERSION,
            SHARD_STATE_VERSION,
        ] {
            let mut w = ByteWriter::new();
            w.put_u32(live);
            let err = RoundRecord::decode(&w.into_bytes()).unwrap_err();
            assert!(
                !err.to_string().contains("round record version"),
                "live tag {live} bounced off the version probe: {err}"
            );
        }
    }

    #[test]
    fn snapshot_version_acceptance_is_exhaustive_at_open() {
        let base = std::env::temp_dir().join(format!("fbs-ckpt-vers-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let policy = CheckpointPolicy {
            snapshot_every: 8,
            fsync: false,
        };
        for v in [
            LEGACY_STATE_VERSION,
            STATE_VERSION,
            IBR_STATE_VERSION,
            SHARD_STATE_VERSION,
        ] {
            let dir = base.join(format!("accept-{v}"));
            std::fs::create_dir_all(&dir).unwrap();
            write_snapshot(dir.join(SNAPSHOT_FILE), v, b"payload").unwrap();
            let (_store, snapshot, records, diag) = CheckpointStore::open(&dir, policy).unwrap();
            assert_eq!(snapshot, Some((v, b"payload".to_vec())));
            assert!(records.is_empty());
            assert!(diag.snapshot_loaded, "v{v} snapshot must load");
            assert_eq!(diag.snapshot_foreign_version, None);
            assert!(diag.snapshot_quarantined.is_none());
        }
        // A structurally valid snapshot at any other version is
        // quarantined, and the diagnostics name the foreign schema.
        for v in [0u32, 1, 6, u32::MAX] {
            let dir = base.join(format!("reject-{v}"));
            std::fs::create_dir_all(&dir).unwrap();
            write_snapshot(dir.join(SNAPSHOT_FILE), v, b"payload").unwrap();
            let (_store, snapshot, _records, diag) = CheckpointStore::open(&dir, policy).unwrap();
            assert_eq!(snapshot, None, "v{v} must not load");
            assert!(!diag.snapshot_loaded);
            assert_eq!(diag.snapshot_foreign_version, Some(v));
            let quarantined = diag
                .snapshot_quarantined
                .expect("foreign snapshot quarantined");
            assert!(quarantined.exists());
            assert!(!dir.join(SNAPSHOT_FILE).exists());
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    /// The canonical record persisted into `fixtures/wire/v<N>/`: one
    /// fixed observation set, with the sections each version carries.
    fn wire_fixture_record(version: u32) -> RoundRecord {
        let obs = |responsive: u32, rtt_ns: u64| BlockObs {
            responsive,
            rtt_ns,
            routed: true,
            routed_known: true,
        };
        let quarantine = FeedQuarantine::measure(
            "10.0.0.0/24|65000\ngarbage\n",
            1,
            vec![fbs_types::QuarantinedRecord::new(
                2,
                "missing '|'",
                "garbage",
            )],
        );
        let vantages = vec![
            VantageObs {
                online: true,
                quality: RoundQuality::Ok,
                blocks: vec![obs(30, 41_000_000), obs(0, 0)],
            },
            VantageObs {
                online: false,
                quality: RoundQuality::Unusable,
                blocks: Vec::new(),
            },
        ];
        let mut record = RoundRecord {
            round: Round(42),
            online: true,
            quality: RoundQuality::Degraded,
            blocks: vec![obs(118, 40_120_000), obs(0, 0)],
            feeds: vec![
                FeedObs::Accepted {
                    retries: 1,
                    quarantine: quarantine.clone(),
                },
                FeedObs::NotDue,
                FeedObs::Rejected {
                    retries: 0,
                    quarantine,
                },
                FeedObs::Absent { retries: 2 },
            ],
            vantages: Vec::new(),
            ibr: None,
            shards: None,
        };
        let ibr = IbrObs {
            dark: false,
            volumes: vec![11, 0, 7],
        };
        let shards = ShardObs {
            outcomes: vec![
                ShardOutcomeObs::Completed {
                    attempt: 1,
                    panics: 1,
                    timeouts: 0,
                },
                ShardOutcomeObs::Lost {
                    panics: 0,
                    timeouts: 3,
                },
            ],
        };
        match version {
            LEGACY_STATE_VERSION => {}
            STATE_VERSION => {
                record.blocks = Vec::new();
                record.vantages = vantages;
            }
            IBR_STATE_VERSION => {
                record.vantages = vantages;
                record.ibr = Some(ibr);
            }
            SHARD_STATE_VERSION => {
                record.vantages = vantages;
                record.ibr = Some(ibr);
                record.shards = Some(shards);
            }
            other => panic!("no wire fixture layout for version {other}"),
        }
        record
    }

    #[test]
    fn golden_wire_fixtures_round_trip_byte_for_byte() {
        // `FBS_WRITE_WIRE_FIXTURES=1 cargo test -p fbs-core` regenerates
        // the committed blobs; a plain run pins the bytes exactly, so any
        // encoder change that touches a frozen layout fails here even if
        // encode/decode still agree with each other.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/wire");
        let write = std::env::var("FBS_WRITE_WIRE_FIXTURES").is_ok();
        for version in [
            LEGACY_STATE_VERSION,
            STATE_VERSION,
            IBR_STATE_VERSION,
            SHARD_STATE_VERSION,
        ] {
            let record = wire_fixture_record(version);
            let encoded = record.encode();
            assert_eq!(
                u32::from(encoded[0]),
                version,
                "layout_version drifted for the v{version} fixture record"
            );
            let vdir = dir.join(format!("v{version}"));
            let record_path = vdir.join("round_record.bin");
            let snap_path = vdir.join("state.snap");
            if write {
                std::fs::create_dir_all(&vdir).unwrap();
                std::fs::write(&record_path, &encoded).unwrap();
                write_snapshot(&snap_path, version, &encoded).unwrap();
            }
            let golden = std::fs::read(&record_path).unwrap_or_else(|e| {
                panic!(
                    "{}: {e} (regenerate with FBS_WRITE_WIRE_FIXTURES=1)",
                    record_path.display()
                )
            });
            assert_eq!(
                golden, encoded,
                "v{version} golden journal bytes drifted from the encoder"
            );
            assert_eq!(
                RoundRecord::decode(&golden).unwrap(),
                record,
                "v{version} golden decode drifted"
            );
            // The snapshot container round-trips the same payload under
            // the same version tag.
            let (snap_version, payload) = read_snapshot(&snap_path)
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: {e} (regenerate with FBS_WRITE_WIRE_FIXTURES=1)",
                        snap_path.display()
                    )
                })
                .expect("snapshot fixture present");
            assert_eq!(snap_version, version);
            assert_eq!(payload, encoded);
        }
    }
}
